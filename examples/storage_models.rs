//! The §2.1 walk-through: one query, many storage layouts.
//!
//! Rebuilds the paper's bibliographic running example over the Hybrid
//! relational store, the Edge relation, structural-ID collections, tag and
//! path partitioning, the unfragmented blob store, a composite-key index
//! and a full-text index — and runs the paper's plans `QEP1`–`QEP13`
//! against each, showing that results agree while plan shapes differ
//! wildly (the flexibility half of physical data independence).
//!
//! ```text
//! cargo run --example storage_models
//! ```

use uload::prelude::*;

fn main() {
    let doc = generate::bib_document();
    let sec_doc = generate::bib_document_with_sections();
    let s = Summary::of_document(&doc);
    let s_sec = Summary::of_document(&sec_doc);

    println!("query q: for $x in //book return <info>{{$x/author}}{{$x/title}}</info>\n");
    for q in [
        qep::qep1(&doc),
        qep::qep3(&doc),
        qep::qep4(&doc),
        qep::qep5(&doc),
        qep::qep6(&doc),
        qep::qep7(&doc, &s),
    ] {
        show(q, &doc);
    }

    println!("\nquery q′: //book//section — fragmented vs blob storage\n");
    for q in [qep::qep8(&sec_doc, &s_sec), qep::qep9(&sec_doc, &s_sec)] {
        show(q, &sec_doc);
    }

    println!("\nquery q″: 1999 books titled \"Data on the Web\" — scans vs index\n");
    for q in [qep::qep10(&doc, &s), qep::qep11(&doc, &s)] {
        show(q, &doc);
    }

    println!("\nquery q‴: titles containing \"Web\" — string matching vs full-text index\n");
    for q in [qep::qep12(&doc, &s), qep::qep13(&doc, &s)] {
        show(q, &doc);
    }

    // the XAM model library: the same layouts, described declaratively
    println!("\nXAM descriptions of published storage schemes (§2.3):");
    for (name, xam) in catalog::edge_model() {
        println!("-- {name}:\n{xam}");
    }
    let (name, xam) = catalog::t_index("book", &["title"], "Data on the Web");
    println!("-- {name}:\n{xam}");
}

fn show(q: qep::Qep, doc: &Document) {
    let ev = Evaluator::with_document(&q.catalog, doc);
    let rel = ev.eval(&q.plan).expect("plan must run");
    println!("{}\n  plan ({} ops): {}", q.name, q.operators(), q.plan);
    println!("  → {} rows", rel.len());
    for t in rel.tuples.iter().take(4) {
        println!("    {t}");
    }
    if rel.len() > 4 {
        println!("    …");
    }
}
