//! The §5.2 motivating example on an XMark-like auction document.
//!
//! Two materialized views:
//! * `V1` — items with their *nested, optional* `listitem` descendants
//!   (structural IDs and serialized content) — the paper's V1;
//! * `V2` — items paired with their name values — the paper's V2.
//!
//! The example shows the three rewriting ingredients of §5.2 in action:
//! summary-based reasoning (dropping redundant ancestors, bridging path
//! gaps), navigation into stored content for nodes the views lack
//! (keywords), and structural identifiers joining views that share no
//! common stored node.
//!
//! ```text
//! cargo run --example auction_views
//! ```

use uload::prelude::*;

fn main() -> Result<()> {
    let doc = generate::xmark(3, 2024);
    let summary = Summary::of_document(&doc);
    println!(
        "XMark-like document: {} nodes, summary {} nodes",
        doc.len(),
        summary.len()
    );

    let mut engine = Uload::builder()
        .document(&doc)
        .config(EngineConfig::default())
        .build()?;
    // V1: the nested view of Figure 5.2(c)
    engine.add_view_text("V1", "//item[id:s]{ //n? li:listitem[id:s,cont] }", &doc)?;
    // V2: item IDs with name values
    engine.add_view_text("V2", "//item[id:s]{ /n? nm:name[val] }", &doc)?;
    println!("\nview definitions:");
    for (name, xam) in engine.store().definitions() {
        println!(
            "-- {name} ({} tuples):\n{xam}",
            engine.store().relation(name).unwrap().len()
        );
    }

    // the paper's query: item names paired with their grouped listitems
    let query = r#"for $x in doc("XMark.xml")//item return
                   <res>{$x/name/text()},
                     for $y in $x//listitem return <li>{$y}</li>
                   </res>"#;

    // 1. the extracted pattern spans the nested FLWR (Chapter 3)
    let parsed = Uload::parse_query(query)?;
    let ex = Uload::extract_patterns(&parsed)?;
    println!("\nextracted {} maximal pattern(s):", ex.patterns.len());
    for p in &ex.patterns {
        println!("{p}");
    }

    // 2. per-pattern rewriting over V1/V2 (Chapter 5)
    for p in &ex.patterns {
        let rws = engine.rewrite_pattern(p);
        println!("rewritings found: {}", rws.len());
        for rw in rws.iter().take(3) {
            println!("  views {:?}, {} ops: {}", rw.views_used, rw.size, rw.plan);
        }
    }

    // 3. answer from the views and cross-check against direct evaluation
    let (from_views, used) = engine.answer(query, &doc)?;
    let direct = Uload::execute_direct(query, &doc)?.into_strings();
    assert_eq!(from_views, direct, "view-based and direct answers differ");
    println!(
        "\n{} results from views {:?}; first:\n{}",
        from_views.len(),
        used.iter()
            .map(|r| r.views_used.clone())
            .collect::<Vec<_>>(),
        &from_views[0][..from_views[0].len().min(160)]
    );

    // 4. the ID-property point of §5.2: two *flat* views with no common
    //    stored node can only be combined through structural identifiers
    let flat_views = vec![
        ("F_items".to_string(), parse_xam("//item[id:s]")?),
        ("F_names".to_string(), parse_xam("//name[id:s,val]")?),
    ];
    let q_both = parse_xam("//item[id:s]{ /name[id:s,val] }")?;
    let (with_ids, _) = rewrite_with_engine(
        &q_both,
        &flat_views,
        &summary,
        RewriteConfig::default(),
        &EngineOptions::default(),
    );
    let combined = with_ids.iter().filter(|r| r.views_used.len() == 2).count();
    let cfg = RewriteConfig {
        use_structural_ids: false,
        allow_unions: false,
        ..Default::default()
    };
    let (without_ids, _) = rewrite_with_engine(
        &q_both,
        &flat_views,
        &summary,
        cfg,
        &EngineOptions::default(),
    );
    let combined_no = without_ids
        .iter()
        .filter(|r| {
            r.views_used.contains(&"F_items".to_string())
                && r.views_used.contains(&"F_names".to_string())
        })
        .count();
    println!(
        "\n//item[id]/name[id,val] over F_items + F_names:\n  \
         two-view rewritings with structural IDs: {combined}\n  \
         two-view rewritings without:             {combined_no}"
    );
    assert!(combined > 0 && combined_no == 0);
    println!("(structural identifiers enable joining views that share no stored node — §5.2)");
    Ok(())
}
