//! Quickstart: parse XML, build a path summary, describe storage with
//! XAMs, and answer an XQuery — both directly and rewritten over
//! materialized views.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use uload::prelude::*;

fn main() -> Result<()> {
    // 1. an XML document (any text works; here the paper's bib example)
    let doc = parse_document(
        r#"<library>
             <book year="1999">
               <title>Data on the Web</title>
               <author>Abiteboul</author><author>Suciu</author>
             </book>
             <book><title>The Syntactic Web</title><author>Tom Lerners-Bee</author></book>
             <phdthesis year="2004">
               <title>The Web: next generation</title><author>Jim Smith</author>
             </phdthesis>
           </library>"#,
    )?;
    println!("document: {} nodes", doc.len());

    // 2. its path summary (a strong DataGuide with 1/+ edge constraints)
    let summary = Summary::of_document(&doc);
    println!("\npath summary ({} nodes):\n{summary}", summary.len());

    // 3. a XAM describes what a storage structure holds: here, books with
    //    their structural IDs and nested title values
    let xam = parse_xam("//book[id:s]{ /title[val], /? y:@year[val] }")?;
    println!("a XAM (storage description):\n{xam}");
    let rel = Uload::evaluate_xam(&xam, &doc)?;
    println!("its content over the document ({} tuples):", rel.len());
    for t in &rel.tuples {
        println!("  {t}");
    }

    // 4. run an XQuery directly (tag-derived collections as the store)
    let query = r#"for $b in doc("bib.xml")//book
                   where $b/@year = "1999"
                   return <hit>{$b/title}</hit>"#;
    let direct = Uload::execute_direct(query, &doc)?;
    println!(
        "\ndirect evaluation of\n  {query}\n→ {} item(s), plan fingerprint {:016x}",
        direct.items.len(),
        direct.plan_fingerprint
    );
    let out = direct.into_strings();
    println!("→ {out:?}");

    // 5. the same query answered purely from materialized views: register
    //    views, and the rewriter plans over them (physical data
    //    independence: changing the storage = changing the XAM set)
    let mut engine = Uload::builder()
        .document(&doc)
        .config(EngineConfig::default())
        .build()?;
    engine.add_view_text(
        "v_books",
        r#"//book[id:s]{ /n? t:title[cont], /s @year[val="1999"] }"#,
        &doc,
    )?;
    let (answers, rewritings) = engine.answer(
        r#"for $b in doc("bib.xml")//book where $b/@year = "1999" return <hit>{$b/title}</hit>"#,
        &doc,
    )?;
    println!("\nview-based evaluation → {answers:?}");
    for rw in &rewritings {
        println!("  used views {:?}, plan: {}", rw.views_used, rw.plan);
    }
    assert_eq!(out, answers);
    println!("\ndirect and view-based answers agree ✓");

    // 5b. the same answers as a *stream*: `Uload::query` returns a
    //     cursor that pulls batches through the pipelined executor on
    //     demand — iterate a prefix and drop it, and the rows never
    //     looked at are never computed (LIMIT-style early termination)
    let mut stream = engine.query(
        r#"for $b in doc("bib.xml")//book where $b/@year = "1999" return <hit>{$b/title}</hit>"#,
        &doc,
    )?;
    let first = stream.next().transpose()?;
    println!(
        "streamed first item: {first:?} (batch size {}, peak resident tuples {})",
        stream.batch_size(),
        stream.peak_resident_tuples()
    );
    stream.close();

    // 6. the engine scales up: worker threads + a shared canonical-model
    //    cache, same answers (the parallel merge order is deterministic)
    let mut par = Uload::builder()
        .document(&doc)
        .threads(4)
        .cache_capacity(1024)
        .build()?;
    par.add_view_text(
        "v_books",
        r#"//book[id:s]{ /n? t:title[cont], /s @year[val="1999"] }"#,
        &doc,
    )?;
    let (par_answers, _) = par.answer(
        r#"for $b in doc("bib.xml")//book where $b/@year = "1999" return <hit>{$b/title}</hit>"#,
        &doc,
    )?;
    assert_eq!(answers, par_answers);
    if let Some(stats) = par.cache_stats() {
        println!("parallel engine agrees; cache: {stats:?}");
    }
    Ok(())
}
