//! Containment and minimization under summary constraints (Chapter 4).
//!
//! Walks through canonical models, positive/negative containment with the
//! early exit, decorated and optional patterns, union containment, and
//! the Figure 4.12 minimization example where the globally smallest
//! pattern uses a label absent from the input.
//!
//! ```text
//! cargo run --example containment_demo
//! ```

use uload::prelude::*;

/// `p ⊆_S q` through the unified entry point.
fn contained(p: &Xam, q: &Xam, s: &Summary) -> bool {
    contain(p, q, s, &ContainOptions::default()).contained
}

fn main() -> Result<()> {
    let doc = parse_document(
        "<site><regions><item><name>gold watch</name><description><parlist>\
         <listitem><keyword>rare</keyword></listitem></parlist></description>\
         </item></regions><people><person><name>Ann</name></person></people></site>",
    )?;
    let s = Summary::of_document(&doc);
    println!("summary ({} nodes):\n{s}", s.len());

    // canonical models
    let p = parse_xam("//name[id:s]")?;
    let (model, stats) = canonical_model(&p, &s);
    println!(
        "mod_S(//name) has {} canonical trees (from {} embeddings):",
        stats.size, stats.embeddings
    );
    for t in &model {
        let paths: Vec<String> = t
            .return_tuple
            .iter()
            .map(|r| r.map(|n| s.path_of(n)).unwrap_or("⊥".into()))
            .collect();
        println!("  return tuple on paths {paths:?}");
    }

    // containment with summary constraints
    let item_name = parse_xam("//item{ /name[id:s] }")?;
    let any_name = parse_xam("//name[id:s]")?;
    println!(
        "\n//item/name ⊆_S //name : {}",
        contained(&item_name, &any_name, &s)
    );
    println!(
        "//name ⊆_S //item/name : {} (people also have names!)",
        contained(&any_name, &item_name, &s)
    );
    let person_name = parse_xam("//person{ /name[id:s] }")?;
    println!(
        "//name ⊆_S //item/name ∪ //person/name : {}",
        contained_in_union(&any_name, &[&item_name, &person_name], &s)
    );

    // early exit on negatives
    let pos = contain(&item_name, &item_name, &s, &ContainOptions::default());
    let neg = contain(&any_name, &item_name, &s, &ContainOptions::default());
    println!(
        "\npositive test built {} canonical trees; negative stopped after {}",
        pos.trees_checked, neg.trees_checked
    );

    // decorated patterns
    let kw3 = parse_xam("//keyword[id:s,val=3]")?;
    let kw_pos = parse_xam("//keyword[id:s,val>0]")?;
    println!(
        "\n[val=3] ⊆ [val>0] : {} ; converse: {}",
        contained(&kw3, &kw_pos, &s),
        contained(&kw_pos, &kw3, &s)
    );

    // summary-driven equivalence: every keyword is under a listitem here
    let kw = parse_xam("//keyword[id:s]")?;
    let li_kw = parse_xam("//listitem{ //keyword[id:s] }")?;
    println!(
        "//keyword ≡_S //listitem//keyword : {}",
        equivalent(&kw, &li_kw, &s)
    );

    // minimization (Figure 4.12 flavour)
    let doc2 = parse_document("<a><f><d><e>x</e></d></f><d><g><e>y</e></g></d></a>")?;
    let s2 = Summary::of_document(&doc2);
    let t = parse_xam("//a{ //f{ //d{ //e[id:s] } } }")?;
    println!("\nminimizing //a//f//d//e under the Figure 4.12-style summary:");
    for m in minimize_by_contraction(&t, &s2) {
        println!("contraction fixpoint ({} nodes):\n{m}", m.pattern_size());
    }
    for m in minimize_global(&t, &s2) {
        println!("global minimum ({} nodes):\n{m}", m.pattern_size());
    }
    Ok(())
}
