//! A simple cost model for rewriting plans.
//!
//! The paper ranks rewritings by operator count ("a minimal plan", §5.3);
//! a real optimizer also weighs the data volumes behind the scans. This
//! module estimates plan cost from the materialized views' actual sizes
//! (available in the catalog) with textbook per-operator formulas, and the
//! pipeline uses it to pick among verified rewritings. Estimates feed on
//! the same statistics a path summary supports (§4.2.1).

use algebra::{Catalog, JoinKind, LogicalPlan};

/// What the executor will actually have available when a plan runs. The
/// cost model must never prefer a plan on the strength of a disabled
/// access method, so the pipeline derives this from `EngineConfig` and
/// passes it to every estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCaps {
    /// XB-tree skip indexes are available (`use_skip_index`): twig merges
    /// may assume fence-guided seeking over non-joinable runs.
    pub seekable: bool,
    /// Columnar pre/post/depth kernels are available (`columnar_kernels`):
    /// merges advance in lane-wide batches, and the packed pre column is
    /// seekable by construction even without an XB-tree.
    pub columnar: bool,
}

impl ExecCaps {
    pub fn new(seekable: bool, columnar: bool) -> Self {
        Self { seekable, columnar }
    }

    /// Caps for a scalar executor with every access method off. Used by
    /// tests and as the conservative floor.
    pub fn scalar() -> Self {
        Self {
            seekable: false,
            columnar: false,
        }
    }

    /// Whether twig merges may price in seeking: either an explicit
    /// XB-tree, or the columnar layout whose sorted pre column supports
    /// galloped seeks with no extra structure.
    fn can_seek(self) -> bool {
        self.seekable || self.columnar
    }
}

/// Batched columnar sweeps retire compares lane-at-a-time with no
/// data-dependent branches; the measured per-element constant on dense
/// merges sits well under the scalar loop's. The discount is deliberately
/// modest so the planner never picks a larger plan purely on kernel
/// width.
const COLUMNAR_SWEEP_DISCOUNT: f64 = 0.5;

/// Estimated (cost, output-rows) of a plan over a catalog of materialized
/// relations. Unknown relations count as size 1000. `caps` says which
/// access methods the executor will actually have (see [`ExecCaps`]);
/// only then may twig costs assume seeking or batched sweeps.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog, caps: ExecCaps) -> (f64, f64) {
    use LogicalPlan::*;
    match plan {
        Scan { relation } => {
            let rows = catalog.get(relation).map(|r| r.len()).unwrap_or(1000) as f64;
            (rows, rows)
        }
        Select { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r, r * 0.33)
        }
        Project {
            input, distinct, ..
        } => {
            let (c, r) = estimate(input, catalog, caps);
            // duplicate elimination pays a comparison sweep
            (c + if *distinct { r * r.log2().max(1.0) } else { r }, r)
        }
        Product { left, right } => {
            let (cl, rl) = estimate(left, catalog, caps);
            let (cr, rr) = estimate(right, catalog, caps);
            (cl + cr + rl * rr, rl * rr)
        }
        Join {
            left, right, kind, ..
        } => {
            let (cl, rl) = estimate(left, catalog, caps);
            let (cr, rr) = estimate(right, catalog, caps);
            let out = match kind {
                JoinKind::Semi => rl * 0.5,
                JoinKind::Nest | JoinKind::NestOuter => rl,
                _ => (rl * rr * 0.1).max(rl.min(rr)),
            };
            // nested-loop value join
            (cl + cr + rl * rr, out)
        }
        StructJoin {
            left, right, kind, ..
        } => {
            let (cl, rl) = estimate(left, catalog, caps);
            let (cr, rr) = estimate(right, catalog, caps);
            let out = match kind {
                JoinKind::Semi => rl * 0.5,
                JoinKind::Nest | JoinKind::NestOuter => rl,
                JoinKind::LeftOuter => rl.max(rr),
                JoinKind::Inner => rr.max(rl * 0.5),
            };
            // StackTree: sort + merge
            let sort = (rl + rr) * (rl + rr).log2().max(1.0);
            (cl + cr + sort, out)
        }
        TwigJoin { root, steps } => {
            // Holistic TwigStack: one multi-way merge over all streams,
            // no intermediate pair lists between the binary joins. Cost
            // is the sum of the input costs plus a single merge sweep of
            // the combined stream length; output folds the binary Inner
            // formula step by step (same answer, none of the cascade's
            // per-level sort-merge charges).
            let (mut cost, mut out) = estimate(root, catalog, caps);
            let mut total_rows = out;
            let mut min_rows = out;
            for s in steps {
                let (cs, rs) = estimate(&s.input, catalog, caps);
                cost += cs;
                total_rows += rs;
                min_rows = min_rows.min(rs);
                out = rs.max(out * 0.5);
            }
            let log = total_rows.log2().max(1.0);
            // Columnar kernels batch the sweep: lane-wide branch-free
            // compares retire elements at a fraction of the scalar
            // per-element constant, which matters exactly in the dense
            // case where seeking cannot help.
            let sweep_factor = if caps.columnar {
                COLUMNAR_SWEEP_DISCOUNT
            } else {
                1.0
            };
            let linear_merge = total_rows * log * sweep_factor;
            let merge = if caps.can_seek() {
                // Skip-aware selectivity: with XB-tree seek indexes (or
                // the columnar pre column, seekable by construction) the
                // merge touches roughly the most selective stream plus
                // the output — everything else is seeked over at a
                // fence-descent (log) charge per touched element and
                // stream. On skewed twigs this term undercuts the linear
                // sweep, which is exactly when the twig-vs-cascade arm
                // should prefer seeking. With both access methods off
                // the kernel really does the full scalar sweep, so the
                // discount must not apply.
                let seek_merge = (min_rows + out) * log * (steps.len() as f64 + 1.0);
                linear_merge.min(seek_merge)
            } else {
                linear_merge
            };
            (cost + merge, out)
        }
        Union { left, right } => {
            let (cl, rl) = estimate(left, catalog, caps);
            let (cr, rr) = estimate(right, catalog, caps);
            (cl + cr, rl + rr)
        }
        Difference { left, right } => {
            let (cl, rl) = estimate(left, catalog, caps);
            let (cr, rr) = estimate(right, catalog, caps);
            (cl + cr + rl * rr, rl)
        }
        GroupBy { input, .. } | Sort { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r * r.log2().max(1.0), r)
        }
        Unnest { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r, r * 3.0)
        }
        NestAll { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r, 1.0)
        }
        XmlTemplate { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r, r)
        }
        Navigate { input, mode, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            let out = match mode {
                algebra::NavMode::Exists => r * 0.5,
                _ => r * 2.0,
            };
            // document navigation per input tuple
            (c + r * 4.0, out)
        }
        DeriveAncestorId { input, .. } | Fetch { input, .. } => {
            let (c, r) = estimate(input, catalog, caps);
            (c + r * 2.0, r)
        }
        Rename { input, .. } | CastSchema { input, .. } => estimate(input, catalog, caps),
    }
}

/// The scalar plan cost used for ranking.
pub fn plan_cost(plan: &LogicalPlan, catalog: &Catalog, caps: ExecCaps) -> f64 {
    estimate(plan, catalog, caps).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{Relation, Schema, Tuple, Value};

    const ALL: ExecCaps = ExecCaps {
        seekable: true,
        columnar: true,
    };

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk = |n: usize| {
            Relation::new(
                Schema::atoms(&["ID"]),
                (0..n)
                    .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
                    .collect(),
            )
        };
        c.insert("small", mk(10));
        c.insert("big", mk(10_000));
        c
    }

    #[test]
    fn scans_cost_their_size() {
        let c = catalog();
        assert!(
            plan_cost(&LogicalPlan::scan("small"), &c, ALL)
                < plan_cost(&LogicalPlan::scan("big"), &c, ALL)
        );
        // unknown relations get a default
        assert!(plan_cost(&LogicalPlan::scan("nope"), &c, ALL) > 0.0);
    }

    #[test]
    fn index_backed_plan_beats_full_scan_join() {
        let c = catalog();
        let via_small = LogicalPlan::scan("small").select(algebra::Predicate::True);
        let via_big = LogicalPlan::scan("big").join(
            LogicalPlan::scan("big"),
            algebra::Predicate::True,
            algebra::JoinKind::Inner,
        );
        assert!(plan_cost(&via_small, &c, ALL) < plan_cost(&via_big, &c, ALL));
    }

    #[test]
    fn twig_estimate_beats_binary_cascade() {
        let c = catalog();
        // a depth-4 chain over the big relation: cascade pays a
        // sort-merge at every level, the twig pays one global merge
        let chain = |fused: bool| {
            let mut plan = LogicalPlan::scan("big").rename(&["a"]);
            for (i, col) in ["b", "c", "d"].iter().enumerate() {
                plan = plan.struct_join(
                    LogicalPlan::scan("big").rename(&[*col]),
                    if i == 0 { "a" } else { "b" },
                    *col,
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                );
            }
            if fused {
                algebra::fuse_struct_joins(&plan)
            } else {
                plan
            }
        };
        let cascade = chain(false);
        let twig = chain(true);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        for seekable in [true, false] {
            for columnar in [true, false] {
                let caps = ExecCaps::new(seekable, columnar);
                assert!(
                    plan_cost(&twig, &c, caps) < plan_cost(&cascade, &c, caps),
                    "{caps:?}: twig {} vs cascade {}",
                    plan_cost(&twig, &c, caps),
                    plan_cost(&cascade, &c, caps)
                );
            }
        }
    }

    #[test]
    fn selective_stream_makes_twig_cheaper() {
        // same twig shape, one leaf swapped from `big` to `small`: the
        // skip-aware term must reward the seekable, selective variant
        let c = catalog();
        let twig = |leaf: &str| {
            let plan = LogicalPlan::scan("big")
                .rename(&["a"])
                .struct_join(
                    LogicalPlan::scan("big").rename(&["b"]),
                    "a",
                    "b",
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                )
                .struct_join(
                    LogicalPlan::scan(leaf).rename(&["c"]),
                    "b",
                    "c",
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                );
            algebra::fuse_struct_joins(&plan)
        };
        assert!(
            plan_cost(&twig("small"), &c, ALL) < plan_cost(&twig("big"), &c, ALL),
            "selective twig {} vs uniform twig {}",
            plan_cost(&twig("small"), &c, ALL),
            plan_cost(&twig("big"), &c, ALL)
        );
    }

    #[test]
    fn seek_discount_gated_on_skip_index_knob() {
        // a selective twig gets the seek_merge discount only when the
        // executor will actually have skip indexes; with the knob off
        // the estimate must charge the full linear merge sweep
        let c = catalog();
        let plan = LogicalPlan::scan("big")
            .rename(&["a"])
            .struct_join(
                LogicalPlan::scan("big").rename(&["b"]),
                "a",
                "b",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("small").rename(&["c"]),
                "b",
                "c",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            );
        let twig = algebra::fuse_struct_joins(&plan);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        let seekable = plan_cost(&twig, &c, ExecCaps::new(true, false));
        let linear = plan_cost(&twig, &c, ExecCaps::scalar());
        assert!(
            seekable < linear,
            "discount must vanish with seeks off: {seekable} vs {linear}"
        );
        // the columnar pre column is seekable by construction, so the
        // seek discount survives use_skip_index being off
        let columnar_only = plan_cost(&twig, &c, ExecCaps::new(false, true));
        assert!(
            columnar_only < linear,
            "columnar caps must keep the seek discount: {columnar_only} vs {linear}"
        );
        // non-twig plans are priced identically under every cap set
        assert_eq!(
            plan_cost(&plan, &c, ALL),
            plan_cost(&plan, &c, ExecCaps::scalar()),
            "cascade cost must not depend on the knobs"
        );
    }

    #[test]
    fn semijoins_cheaper_output_than_joins() {
        let c = catalog();
        let semi = LogicalPlan::scan("big").struct_join(
            LogicalPlan::scan("small"),
            "ID",
            "ID",
            algebra::Axis::Child,
            algebra::JoinKind::Semi,
        );
        let (_, semi_rows) = estimate(&semi, &c, ALL);
        let inner = LogicalPlan::scan("big").struct_join(
            LogicalPlan::scan("small"),
            "ID",
            "ID",
            algebra::Axis::Child,
            algebra::JoinKind::Inner,
        );
        let (_, inner_rows) = estimate(&inner, &c, ALL);
        assert!(semi_rows <= inner_rows);
    }

    #[test]
    fn columnar_discounts_the_dense_sweep() {
        // a uniform (dense) twig gets no help from seeking — the merge
        // touches everything — but the batched columnar sweep still
        // undercuts the scalar one
        let c = catalog();
        let mut plan = LogicalPlan::scan("big").rename(&["a"]);
        for (i, col) in ["b", "c"].iter().enumerate() {
            plan = plan.struct_join(
                LogicalPlan::scan("big").rename(&[*col]),
                if i == 0 { "a" } else { "b" },
                *col,
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            );
        }
        let twig = algebra::fuse_struct_joins(&plan);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        let scalar = plan_cost(&twig, &c, ExecCaps::scalar());
        let columnar = plan_cost(&twig, &c, ExecCaps::new(false, true));
        assert!(
            columnar < scalar,
            "dense twig must get the batched-sweep discount: {columnar} vs {scalar}"
        );
    }
}
