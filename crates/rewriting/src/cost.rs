//! The cost model for rewriting plans, with cardinality feedback.
//!
//! The paper ranks rewritings by operator count ("a minimal plan", §5.3);
//! a real optimizer also weighs the data volumes behind the scans. This
//! module estimates plan cost from the materialized views' actual sizes
//! (available in the catalog) with textbook per-operator formulas, and the
//! pipeline uses it to pick among verified rewritings. Estimates feed on
//! the same statistics a path summary supports (§4.2.1).
//!
//! Since PR 9 the model is a struct, [`CostModel`], and the estimate is
//! typed ([`Estimate`]): besides the catalog it can consume the measured
//! cardinalities a profiled run left in [`obs::StatsStore`]. When the
//! store holds observations for `(document version, plan fingerprint,
//! node)`, the node's row estimate blends the measured mean over the
//! catalog figure with a confidence weight that grows with the number of
//! observations; nodes (or whole document versions) the store has never
//! seen fall back to the pure catalog estimate, so planning for unseen
//! data stays deterministic and byte-identical to the feedback-free
//! model.

use algebra::{Catalog, JoinKind, LogicalPlan};
use obs::StatsStore;

/// What the executor will actually have available when a plan runs. The
/// cost model must never prefer a plan on the strength of a disabled
/// access method, so the pipeline derives this from `EngineConfig` and
/// passes it to every estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCaps {
    /// XB-tree skip indexes are available (`use_skip_index`): twig merges
    /// may assume fence-guided seeking over non-joinable runs.
    pub seekable: bool,
    /// Columnar pre/post/depth kernels are available (`columnar_kernels`):
    /// merges advance in lane-wide batches, and the packed pre column is
    /// seekable by construction even without an XB-tree.
    pub columnar: bool,
}

impl ExecCaps {
    pub fn new(seekable: bool, columnar: bool) -> Self {
        Self { seekable, columnar }
    }

    /// Caps for a scalar executor with every access method off. Used by
    /// tests and as the conservative floor.
    pub fn scalar() -> Self {
        Self {
            seekable: false,
            columnar: false,
        }
    }

    /// Whether twig merges may price in seeking: either an explicit
    /// XB-tree, or the columnar layout whose sorted pre column supports
    /// galloped seeks with no extra structure.
    fn can_seek(self) -> bool {
        self.seekable || self.columnar
    }
}

/// Batched columnar sweeps retire compares lane-at-a-time with no
/// data-dependent branches; the measured per-element constant on dense
/// merges sits well under the scalar loop's. The discount is deliberately
/// modest so the planner never picks a larger plan purely on kernel
/// width.
const COLUMNAR_SWEEP_DISCOUNT: f64 = 0.5;

/// Laplace-style smoothing constant of the feedback blend: with `n`
/// observations the measured mean gets weight `n / (n + K)`, so one
/// observation already moves the estimate but never fully overrides the
/// catalog, and repeated confirmation converges toward the measurement.
const FEEDBACK_SMOOTHING: f64 = 2.0;

/// Where a node's row estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// Pure catalog arithmetic — no measured observations consulted.
    Catalog,
    /// Blended with measured cardinalities from the [`StatsStore`].
    Feedback,
}

/// A typed cost estimate: output cardinality, abstract cost units, and
/// the provenance of the row figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows (blended with measurements when available).
    pub rows: f64,
    /// Estimated cost in abstract units (comparisons touched).
    pub cost: f64,
    /// Whether `rows` consumed measured feedback.
    pub source: EstimateSource,
    /// Feedback weight in `[0, 1)`: `0.0` for pure catalog estimates,
    /// approaching `1.0` as observations accumulate.
    pub confidence: f64,
}

/// One node of an estimated plan tree (the payload of `EXPLAIN`):
/// operator label, its [`Estimate`], and the children in
/// `child_plans()` order.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateNode {
    /// Operator label (`LogicalPlan::node_label`).
    pub op: String,
    /// This node's estimate.
    pub estimate: Estimate,
    pub children: Vec<EstimateNode>,
}

impl EstimateNode {
    /// Nodes in this subtree whose estimate consumed feedback.
    pub fn feedback_nodes(&self) -> usize {
        let own = usize::from(self.estimate.source == EstimateSource::Feedback);
        own + self
            .children
            .iter()
            .map(EstimateNode::feedback_nodes)
            .sum::<usize>()
    }

    /// Total nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(EstimateNode::node_count)
            .sum::<usize>()
    }
}

#[derive(Debug, Clone, Copy)]
struct FeedbackContext<'a> {
    stats: &'a StatsStore,
    doc_version: u64,
    plan_fp: u64,
}

/// The cost model: a catalog of materialized relation sizes, the
/// executor's access-method capabilities, and (optionally) the
/// cardinality feedback recorded by profiled runs.
///
/// Unknown relations count as size 1000. `caps` says which access
/// methods the executor will actually have (see [`ExecCaps`]); only then
/// may twig costs assume seeking or batched sweeps. Without feedback
/// ([`CostModel::new`]) the arithmetic is exactly the historical static
/// model; [`CostModel::with_feedback`] keys the store lookup by the
/// `(document version, plan fingerprint)` the observations were recorded
/// under, matching node indices by the same pre-order walk
/// `StatsStore::record_profile` uses.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    caps: ExecCaps,
    feedback: Option<FeedbackContext<'a>>,
}

impl<'a> CostModel<'a> {
    /// A feedback-free model: pure catalog estimates.
    pub fn new(catalog: &'a Catalog, caps: ExecCaps) -> CostModel<'a> {
        CostModel {
            catalog,
            caps,
            feedback: None,
        }
    }

    /// Attach measured-cardinality feedback: node estimates blend the
    /// store's observations recorded under `(doc_version, plan_fp)`.
    pub fn with_feedback(
        mut self,
        stats: &'a StatsStore,
        doc_version: u64,
        plan_fp: u64,
    ) -> CostModel<'a> {
        self.feedback = Some(FeedbackContext {
            stats,
            doc_version,
            plan_fp,
        });
        self
    }

    /// The root estimate of `plan`.
    pub fn estimate(&self, plan: &LogicalPlan) -> Estimate {
        self.estimate_tree(plan).estimate
    }

    /// The scalar plan cost used for ranking.
    pub fn cost(&self, plan: &LogicalPlan) -> f64 {
        self.estimate(plan).cost
    }

    /// The full per-node estimate tree (the `EXPLAIN` payload).
    pub fn estimate_tree(&self, plan: &LogicalPlan) -> EstimateNode {
        let mut idx = 0u32;
        self.node(plan, &mut idx)
    }

    /// Estimate one node: pre-order index assignment (matching
    /// `StatsStore::record_profile`), recurse into `child_plans()`,
    /// combine with the per-operator formula, then blend in feedback.
    fn node(&self, plan: &LogicalPlan, idx: &mut u32) -> EstimateNode {
        let my_idx = *idx;
        *idx += 1;
        let children: Vec<EstimateNode> = plan
            .child_plans()
            .into_iter()
            .map(|c| self.node(c, idx))
            .collect();
        let (cost, rows) = self.combine(plan, &children);
        let (rows, source, confidence) = self.blend(my_idx, rows);
        EstimateNode {
            op: plan.node_label(),
            estimate: Estimate {
                rows,
                cost,
                source,
                confidence,
            },
            children,
        }
    }

    /// Blend the catalog row estimate with the store's measured mean,
    /// weighted by observation count. Catalog passthrough when the store
    /// has never seen this `(version, fingerprint, node)`.
    fn blend(&self, node_idx: u32, est_rows: f64) -> (f64, EstimateSource, f64) {
        if let Some(fb) = &self.feedback {
            if let Some(stats) = fb.stats.node(fb.doc_version, fb.plan_fp, node_idx) {
                if stats.observations > 0 {
                    let n = stats.observations as f64;
                    let w = n / (n + FEEDBACK_SMOOTHING);
                    let rows = w * stats.mean_actual_rows() + (1.0 - w) * est_rows;
                    return (rows, EstimateSource::Feedback, w);
                }
            }
        }
        (est_rows, EstimateSource::Catalog, 0.0)
    }

    /// Per-operator (cost, rows) from the already-estimated children —
    /// the historical formulas, fed the children's (possibly blended)
    /// cardinalities so measured selectivities propagate upward.
    fn combine(&self, plan: &LogicalPlan, children: &[EstimateNode]) -> (f64, f64) {
        use LogicalPlan::*;
        let ch = |i: usize| {
            let e = &children[i].estimate;
            (e.cost, e.rows)
        };
        match plan {
            Scan { relation } => {
                let rows = self.catalog.get(relation).map(|r| r.len()).unwrap_or(1000) as f64;
                (rows, rows)
            }
            Select { .. } => {
                let (c, r) = ch(0);
                (c + r, r * 0.33)
            }
            Project { distinct, .. } => {
                let (c, r) = ch(0);
                // duplicate elimination pays a comparison sweep
                (c + if *distinct { r * r.log2().max(1.0) } else { r }, r)
            }
            Product { .. } => {
                let (cl, rl) = ch(0);
                let (cr, rr) = ch(1);
                (cl + cr + rl * rr, rl * rr)
            }
            Join { kind, .. } => {
                let (cl, rl) = ch(0);
                let (cr, rr) = ch(1);
                let out = match kind {
                    JoinKind::Semi => rl * 0.5,
                    JoinKind::Nest | JoinKind::NestOuter => rl,
                    _ => (rl * rr * 0.1).max(rl.min(rr)),
                };
                // nested-loop value join
                (cl + cr + rl * rr, out)
            }
            StructJoin { kind, .. } => {
                let (cl, rl) = ch(0);
                let (cr, rr) = ch(1);
                let out = match kind {
                    JoinKind::Semi => rl * 0.5,
                    JoinKind::Nest | JoinKind::NestOuter => rl,
                    JoinKind::LeftOuter => rl.max(rr),
                    JoinKind::Inner => rr.max(rl * 0.5),
                };
                // StackTree: sort + merge
                let sort = (rl + rr) * (rl + rr).log2().max(1.0);
                (cl + cr + sort, out)
            }
            TwigJoin { steps, .. } => {
                // Holistic TwigStack: one multi-way merge over all streams,
                // no intermediate pair lists between the binary joins. Cost
                // is the sum of the input costs plus a single merge sweep of
                // the combined stream length; output folds the binary Inner
                // formula step by step (same answer, none of the cascade's
                // per-level sort-merge charges).
                let (mut cost, mut out) = ch(0);
                let mut total_rows = out;
                let mut min_rows = out;
                for i in 0..steps.len() {
                    let (cs, rs) = ch(1 + i);
                    cost += cs;
                    total_rows += rs;
                    min_rows = min_rows.min(rs);
                    out = rs.max(out * 0.5);
                }
                let log = total_rows.log2().max(1.0);
                // Columnar kernels batch the sweep: lane-wide branch-free
                // compares retire elements at a fraction of the scalar
                // per-element constant, which matters exactly in the dense
                // case where seeking cannot help.
                let sweep_factor = if self.caps.columnar {
                    COLUMNAR_SWEEP_DISCOUNT
                } else {
                    1.0
                };
                let linear_merge = total_rows * log * sweep_factor;
                let merge = if self.caps.can_seek() {
                    // Skip-aware selectivity: with XB-tree seek indexes (or
                    // the columnar pre column, seekable by construction) the
                    // merge touches roughly the most selective stream plus
                    // the output — everything else is seeked over at a
                    // fence-descent (log) charge per touched element and
                    // stream. On skewed twigs this term undercuts the linear
                    // sweep, which is exactly when the twig-vs-cascade arm
                    // should prefer seeking. With both access methods off
                    // the kernel really does the full scalar sweep, so the
                    // discount must not apply.
                    let seek_merge = (min_rows + out) * log * (steps.len() as f64 + 1.0);
                    linear_merge.min(seek_merge)
                } else {
                    linear_merge
                };
                (cost + merge, out)
            }
            Union { .. } => {
                let (cl, rl) = ch(0);
                let (cr, rr) = ch(1);
                (cl + cr, rl + rr)
            }
            Difference { .. } => {
                let (cl, rl) = ch(0);
                let (cr, rr) = ch(1);
                (cl + cr + rl * rr, rl)
            }
            GroupBy { .. } | Sort { .. } => {
                let (c, r) = ch(0);
                (c + r * r.log2().max(1.0), r)
            }
            Unnest { .. } => {
                let (c, r) = ch(0);
                (c + r, r * 3.0)
            }
            NestAll { .. } => {
                let (c, r) = ch(0);
                (c + r, 1.0)
            }
            XmlTemplate { .. } => {
                let (c, r) = ch(0);
                (c + r, r)
            }
            Navigate { mode, .. } => {
                let (c, r) = ch(0);
                let out = match mode {
                    algebra::NavMode::Exists => r * 0.5,
                    _ => r * 2.0,
                };
                // document navigation per input tuple
                (c + r * 4.0, out)
            }
            DeriveAncestorId { .. } | Fetch { .. } => {
                let (c, r) = ch(0);
                (c + r * 2.0, r)
            }
            // Pure schema adapters: pass the child's figures through
            // unchanged. (They still hold a pre-order index of their own,
            // matching the profiled plan tree.)
            Rename { .. } | CastSchema { .. } => ch(0),
        }
    }
}

/// Estimated (cost, output-rows) of a plan over a catalog of materialized
/// relations.
#[deprecated(
    since = "0.2.0",
    note = "use `CostModel::new(catalog, caps).estimate(plan)` (optionally `.with_feedback(..)`)"
)]
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog, caps: ExecCaps) -> (f64, f64) {
    let e = CostModel::new(catalog, caps).estimate(plan);
    (e.cost, e.rows)
}

/// The scalar plan cost used for ranking.
#[deprecated(
    since = "0.2.0",
    note = "use `CostModel::new(catalog, caps).cost(plan)` (optionally `.with_feedback(..)`)"
)]
pub fn plan_cost(plan: &LogicalPlan, catalog: &Catalog, caps: ExecCaps) -> f64 {
    CostModel::new(catalog, caps).cost(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{Relation, Schema, Tuple, Value};
    use obs::{ExecMetrics, PlanNodeProfile, QueryProfile};

    const ALL: ExecCaps = ExecCaps {
        seekable: true,
        columnar: true,
    };

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk = |n: usize| {
            Relation::new(
                Schema::atoms(&["ID"]),
                (0..n)
                    .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
                    .collect(),
            )
        };
        c.insert("small", mk(10));
        c.insert("big", mk(10_000));
        c
    }

    fn plan_cost(plan: &LogicalPlan, c: &Catalog, caps: ExecCaps) -> f64 {
        CostModel::new(c, caps).cost(plan)
    }

    fn rows_of(plan: &LogicalPlan, c: &Catalog, caps: ExecCaps) -> f64 {
        CostModel::new(c, caps).estimate(plan).rows
    }

    /// A profile tree mirroring `plan`'s shape where every node reports
    /// `actual` measured rows.
    fn uniform_profile(plan: &LogicalPlan, actual: u64) -> PlanNodeProfile {
        PlanNodeProfile {
            op: plan.node_label(),
            est_cost: 0.0,
            est_rows: 0.0,
            actual_rows: actual,
            time_ns: 1,
            metrics: ExecMetrics::default(),
            mispredicted: false,
            children: plan
                .child_plans()
                .into_iter()
                .map(|c| uniform_profile(c, actual))
                .collect(),
        }
    }

    fn query_profile(plan: PlanNodeProfile) -> QueryProfile {
        QueryProfile {
            query: "q".to_string(),
            phases: Vec::new(),
            plan,
            cache: None,
            arm: None,
            streamed: None,
            total_ns: 1,
        }
    }

    #[test]
    fn scans_cost_their_size() {
        let c = catalog();
        assert!(
            plan_cost(&LogicalPlan::scan("small"), &c, ALL)
                < plan_cost(&LogicalPlan::scan("big"), &c, ALL)
        );
        // unknown relations get a default
        assert!(plan_cost(&LogicalPlan::scan("nope"), &c, ALL) > 0.0);
    }

    #[test]
    fn index_backed_plan_beats_full_scan_join() {
        let c = catalog();
        let via_small = LogicalPlan::scan("small").select(algebra::Predicate::True);
        let via_big = LogicalPlan::scan("big").join(
            LogicalPlan::scan("big"),
            algebra::Predicate::True,
            algebra::JoinKind::Inner,
        );
        assert!(plan_cost(&via_small, &c, ALL) < plan_cost(&via_big, &c, ALL));
    }

    #[test]
    fn twig_estimate_beats_binary_cascade() {
        let c = catalog();
        // a depth-4 chain over the big relation: cascade pays a
        // sort-merge at every level, the twig pays one global merge
        let chain = |fused: bool| {
            let mut plan = LogicalPlan::scan("big").rename(&["a"]);
            for (i, col) in ["b", "c", "d"].iter().enumerate() {
                plan = plan.struct_join(
                    LogicalPlan::scan("big").rename(&[*col]),
                    if i == 0 { "a" } else { "b" },
                    *col,
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                );
            }
            if fused {
                algebra::fuse_struct_joins(&plan)
            } else {
                plan
            }
        };
        let cascade = chain(false);
        let twig = chain(true);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        for seekable in [true, false] {
            for columnar in [true, false] {
                let caps = ExecCaps::new(seekable, columnar);
                assert!(
                    plan_cost(&twig, &c, caps) < plan_cost(&cascade, &c, caps),
                    "{caps:?}: twig {} vs cascade {}",
                    plan_cost(&twig, &c, caps),
                    plan_cost(&cascade, &c, caps)
                );
            }
        }
    }

    #[test]
    fn selective_stream_makes_twig_cheaper() {
        // same twig shape, one leaf swapped from `big` to `small`: the
        // skip-aware term must reward the seekable, selective variant
        let c = catalog();
        let twig = |leaf: &str| {
            let plan = LogicalPlan::scan("big")
                .rename(&["a"])
                .struct_join(
                    LogicalPlan::scan("big").rename(&["b"]),
                    "a",
                    "b",
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                )
                .struct_join(
                    LogicalPlan::scan(leaf).rename(&["c"]),
                    "b",
                    "c",
                    algebra::Axis::Descendant,
                    algebra::JoinKind::Inner,
                );
            algebra::fuse_struct_joins(&plan)
        };
        assert!(
            plan_cost(&twig("small"), &c, ALL) < plan_cost(&twig("big"), &c, ALL),
            "selective twig {} vs uniform twig {}",
            plan_cost(&twig("small"), &c, ALL),
            plan_cost(&twig("big"), &c, ALL)
        );
    }

    #[test]
    fn seek_discount_gated_on_skip_index_knob() {
        // a selective twig gets the seek_merge discount only when the
        // executor will actually have skip indexes; with the knob off
        // the estimate must charge the full linear merge sweep
        let c = catalog();
        let plan = LogicalPlan::scan("big")
            .rename(&["a"])
            .struct_join(
                LogicalPlan::scan("big").rename(&["b"]),
                "a",
                "b",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("small").rename(&["c"]),
                "b",
                "c",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            );
        let twig = algebra::fuse_struct_joins(&plan);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        let seekable = plan_cost(&twig, &c, ExecCaps::new(true, false));
        let linear = plan_cost(&twig, &c, ExecCaps::scalar());
        assert!(
            seekable < linear,
            "discount must vanish with seeks off: {seekable} vs {linear}"
        );
        // the columnar pre column is seekable by construction, so the
        // seek discount survives use_skip_index being off
        let columnar_only = plan_cost(&twig, &c, ExecCaps::new(false, true));
        assert!(
            columnar_only < linear,
            "columnar caps must keep the seek discount: {columnar_only} vs {linear}"
        );
        // non-twig plans are priced identically under every cap set
        assert_eq!(
            plan_cost(&plan, &c, ALL),
            plan_cost(&plan, &c, ExecCaps::scalar()),
            "cascade cost must not depend on the knobs"
        );
    }

    #[test]
    fn semijoins_cheaper_output_than_joins() {
        let c = catalog();
        let semi = LogicalPlan::scan("big").struct_join(
            LogicalPlan::scan("small"),
            "ID",
            "ID",
            algebra::Axis::Child,
            algebra::JoinKind::Semi,
        );
        let semi_rows = rows_of(&semi, &c, ALL);
        let inner = LogicalPlan::scan("big").struct_join(
            LogicalPlan::scan("small"),
            "ID",
            "ID",
            algebra::Axis::Child,
            algebra::JoinKind::Inner,
        );
        let inner_rows = rows_of(&inner, &c, ALL);
        assert!(semi_rows <= inner_rows);
    }

    #[test]
    fn columnar_discounts_the_dense_sweep() {
        // a uniform (dense) twig gets no help from seeking — the merge
        // touches everything — but the batched columnar sweep still
        // undercuts the scalar one
        let c = catalog();
        let mut plan = LogicalPlan::scan("big").rename(&["a"]);
        for (i, col) in ["b", "c"].iter().enumerate() {
            plan = plan.struct_join(
                LogicalPlan::scan("big").rename(&[*col]),
                if i == 0 { "a" } else { "b" },
                *col,
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            );
        }
        let twig = algebra::fuse_struct_joins(&plan);
        assert!(matches!(twig, LogicalPlan::TwigJoin { .. }));
        let scalar = plan_cost(&twig, &c, ExecCaps::scalar());
        let columnar = plan_cost(&twig, &c, ExecCaps::new(false, true));
        assert!(
            columnar < scalar,
            "dense twig must get the batched-sweep discount: {columnar} vs {scalar}"
        );
    }

    #[test]
    fn deprecated_shims_match_the_model() {
        let c = catalog();
        let plan = LogicalPlan::scan("big").select(algebra::Predicate::True);
        #[allow(deprecated)]
        let (shim_cost, shim_rows) = super::estimate(&plan, &c, ALL);
        let e = CostModel::new(&c, ALL).estimate(&plan);
        assert_eq!(shim_cost, e.cost);
        assert_eq!(shim_rows, e.rows);
        #[allow(deprecated)]
        let shim_pc = super::plan_cost(&plan, &c, ALL);
        assert_eq!(shim_pc, e.cost);
        assert_eq!(e.source, EstimateSource::Catalog);
        assert_eq!(e.confidence, 0.0);
    }

    #[test]
    fn feedback_blends_measured_rows_with_growing_confidence() {
        let c = catalog();
        let plan = LogicalPlan::scan("big").select(algebra::Predicate::True);
        let fp = 0xfeedu64;
        let stats = obs::StatsStore::new();

        // catalog says Select outputs 10_000 * 0.33; the runs measure 10
        let catalog_est = CostModel::new(&c, ALL).estimate(&plan);
        stats.record_profile(7, fp, &query_profile(uniform_profile(&plan, 10)));
        let one = CostModel::new(&c, ALL)
            .with_feedback(&stats, 7, fp)
            .estimate(&plan);
        assert_eq!(one.source, EstimateSource::Feedback);
        assert!(one.confidence > 0.0 && one.confidence < 1.0);
        assert!(
            one.rows < catalog_est.rows && one.rows > 10.0,
            "blend must sit between measurement and catalog: {} vs ({}, {})",
            one.rows,
            catalog_est.rows,
            10.0
        );

        // more observations → more weight on the measurement
        for _ in 0..9 {
            stats.record_profile(7, fp, &query_profile(uniform_profile(&plan, 10)));
        }
        let ten = CostModel::new(&c, ALL)
            .with_feedback(&stats, 7, fp)
            .estimate(&plan);
        assert!(ten.confidence > one.confidence);
        assert!(ten.rows < one.rows, "{} !< {}", ten.rows, one.rows);

        // an unseen document version falls back to pure catalog figures
        let unseen = CostModel::new(&c, ALL)
            .with_feedback(&stats, 8, fp)
            .estimate(&plan);
        assert_eq!(unseen, catalog_est);
        // as does an unseen fingerprint
        let other_fp = CostModel::new(&c, ALL)
            .with_feedback(&stats, 7, fp ^ 1)
            .estimate(&plan);
        assert_eq!(other_fp, catalog_est);
    }

    #[test]
    fn feedback_rescores_the_twig_vs_cascade_arm() {
        // A 2-step twig the static model prices above a cheap plan; once
        // feedback reveals the streams are tiny, the twig arm's cost
        // must drop below its static figure.
        let c = catalog();
        let plan = LogicalPlan::scan("big")
            .rename(&["a"])
            .struct_join(
                LogicalPlan::scan("big").rename(&["b"]),
                "a",
                "b",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("big").rename(&["c"]),
                "b",
                "c",
                algebra::Axis::Descendant,
                algebra::JoinKind::Inner,
            );
        let twig = algebra::fuse_struct_joins(&plan);
        let fp = 0xabcdu64;
        let stats = obs::StatsStore::new();
        for _ in 0..8 {
            stats.record_profile(3, fp, &query_profile(uniform_profile(&twig, 5)));
        }
        let cold = CostModel::new(&c, ALL).cost(&twig);
        let warm = CostModel::new(&c, ALL)
            .with_feedback(&stats, 3, fp)
            .cost(&twig);
        assert!(
            warm < cold,
            "measured-tiny streams must cut the twig cost: {warm} vs {cold}"
        );
    }

    #[test]
    fn estimate_tree_indexes_match_the_profile_walk() {
        // Rename is a pure adapter but still holds a pre-order slot, so
        // the tree must line up node-for-node with the profiled plan.
        let c = catalog();
        let plan = LogicalPlan::scan("small")
            .rename(&["x"])
            .select(algebra::Predicate::True);
        let tree = CostModel::new(&c, ALL).estimate_tree(&plan);
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.op, plan.node_label());
        assert_eq!(tree.children[0].children[0].op, "Scan(small)");

        // feedback recorded at pre-order idx 2 (the scan) must land on
        // the scan node of the tree, not the adapters
        let stats = obs::StatsStore::new();
        let fp = 0x77u64;
        stats.record_profile(1, fp, &query_profile(uniform_profile(&plan, 4)));
        let warm = CostModel::new(&c, ALL)
            .with_feedback(&stats, 1, fp)
            .estimate_tree(&plan);
        assert_eq!(warm.feedback_nodes(), 3);
        let scan = &warm.children[0].children[0];
        assert_eq!(scan.estimate.source, EstimateSource::Feedback);
        assert!(scan.estimate.rows < 10.0, "blend toward the measured 4");
    }
}
