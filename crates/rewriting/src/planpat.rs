//! Equivalent plan–pattern pairs (§5.5).
//!
//! The rewriting search manipulates algebraic plans over view scans, but
//! `S`-equivalence is tested on patterns. A [`PlanPattern`] keeps the two
//! in lockstep: every plan-building operation (scan a view, filter a
//! value, navigate to a missing node, join two plans structurally or on
//! node identity, derive an ancestor ID) simultaneously updates the plan
//! and computes the `S`-equivalent pattern `p_e` — "computing the pattern
//! equivalent to a join plan" (§5.5.2). The pair also tracks which plan
//! column carries each pattern node's ID/Val/Cont, so the final rewriting
//! can be projected onto the query's outputs.

use std::collections::HashMap;

use algebra::{
    Axis, CmpOp, FetchWhat, JoinKind, LogicalPlan, NavMode, Operand, Path, Predicate, Value,
};
use xam_core::ast::{EdgeSem, Formula, FormulaConst, IdKind, Xam, XamEdge, XamNode, XamNodeId};

/// Plan columns carrying a pattern node's stored items.
#[derive(Debug, Clone, Default)]
pub struct NodeCols {
    pub id: Option<String>,
    pub val: Option<String>,
    pub cont: Option<String>,
    pub tag: Option<String>,
    /// ID class of the `id` column, if any.
    pub id_kind: Option<IdKind>,
}

/// A plan paired with its `S`-equivalent pattern.
#[derive(Debug, Clone)]
pub struct PlanPattern {
    pub plan: LogicalPlan,
    pub pattern: Xam,
    /// Pattern node → its plan columns.
    pub cols: HashMap<XamNodeId, NodeCols>,
    pub views_used: Vec<String>,
    fresh: u32,
}

impl PlanPattern {
    /// Start from a view scan. `prefix` uniquifies column names so that
    /// multiple views can later be joined. Only flat views (no nested
    /// edges) are supported for joins; single-view rewritings may be
    /// nested and then must skip the rename (`prefix = None`).
    pub fn from_view(name: &str, xam: &Xam, prefix: Option<&str>) -> PlanPattern {
        let out_cols = xam_core::semantics::output_columns(xam);
        let mut plan = LogicalPlan::scan(name);
        let mut rename_map: HashMap<String, String> = HashMap::new();
        if let Some(pfx) = prefix {
            // top-level column names in schema order
            let mut top_names: Vec<String> = Vec::new();
            for c in &out_cols {
                let head = c.path.split('.').next().unwrap().to_string();
                if !top_names.contains(&head) {
                    top_names.push(head);
                }
            }
            let new_names: Vec<String> = top_names.iter().map(|n| format!("{pfx}{n}")).collect();
            for (old, new) in top_names.iter().zip(&new_names) {
                rename_map.insert(old.clone(), new.clone());
            }
            plan = plan.rename(&new_names.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        }
        let rename_path = |p: &str| -> String {
            match p.split_once('.') {
                Some((head, rest)) => match rename_map.get(head) {
                    Some(new) => format!("{new}.{rest}"),
                    None => p.to_string(),
                },
                None => rename_map.get(p).cloned().unwrap_or_else(|| p.to_string()),
            }
        };
        let mut cols: HashMap<XamNodeId, NodeCols> = HashMap::new();
        for c in &out_cols {
            let entry = cols.entry(c.node).or_default();
            let path = rename_path(&c.path);
            match c.attr {
                xam_core::semantics::StoredAttr::Id => {
                    entry.id = Some(path);
                    entry.id_kind = xam.node(c.node).stores_id;
                }
                xam_core::semantics::StoredAttr::Val => entry.val = Some(path),
                xam_core::semantics::StoredAttr::Cont => entry.cont = Some(path),
                xam_core::semantics::StoredAttr::Tag => entry.tag = Some(path),
            }
        }
        PlanPattern {
            plan,
            pattern: xam.clone(),
            cols,
            views_used: vec![name.to_string()],
            fresh: 0,
        }
    }

    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("c_{base}{}", self.fresh)
    }

    /// Strengthen a node's value predicate: `σ` on its Val column (or a
    /// fetched value when only the ID is stored). Returns `false` when
    /// neither a Val nor an ID column exists.
    pub fn filter_value(&mut self, node: XamNodeId, f: &Formula) -> bool {
        let col = match self.value_column(node) {
            Some(c) => c,
            None => return false,
        };
        self.plan = std::mem::replace(&mut self.plan, LogicalPlan::scan(""))
            .select(formula_predicate(&col, f));
        let n = self.pattern.node_mut(node);
        let prev = std::mem::replace(&mut n.value_predicate, Formula::True);
        n.value_predicate = prev.and(f.clone());
        true
    }

    /// The Val column of a node, fetching it from the document when only
    /// the ID is stored (the fetch requires a flat ID column).
    pub fn value_column(&mut self, node: XamNodeId) -> Option<String> {
        let entry = self.cols.get(&node)?;
        if let Some(v) = &entry.val {
            return Some(v.clone());
        }
        let id = entry.id.clone()?;
        if id.contains('.') {
            return None;
        }
        let name = self.fresh_name("val");
        self.plan = LogicalPlan::Fetch {
            input: Box::new(std::mem::replace(&mut self.plan, LogicalPlan::scan(""))),
            id_attr: Path::new(id),
            what: FetchWhat::Val,
            as_name: name.clone(),
        };
        self.cols.get_mut(&node).unwrap().val = Some(name.clone());
        Some(name)
    }

    /// The Cont column of a node, fetching when needed.
    pub fn content_column(&mut self, node: XamNodeId) -> Option<String> {
        let entry = self.cols.get(&node)?;
        if let Some(c) = &entry.cont {
            return Some(c.clone());
        }
        let id = entry.id.clone()?;
        if id.contains('.') {
            return None;
        }
        let name = self.fresh_name("cont");
        self.plan = LogicalPlan::Fetch {
            input: Box::new(std::mem::replace(&mut self.plan, LogicalPlan::scan(""))),
            id_attr: Path::new(id),
            what: FetchWhat::Cont,
            as_name: name.clone(),
        };
        self.cols.get_mut(&node).unwrap().cont = Some(name.clone());
        Some(name)
    }

    /// Navigate from `from`'s ID column to a new child/descendant node —
    /// the compensation for query nodes absent from the view (the paper's
    /// "extract the keyword elements by navigating inside the content of
    /// listitem nodes", §5.2). Returns the new pattern node, or `None`
    /// when `from` has no usable flat ID column.
    pub fn navigate(
        &mut self,
        from: XamNodeId,
        axis: Axis,
        label: Option<&str>,
        is_attribute: bool,
        mode: NavMode,
    ) -> Option<XamNodeId> {
        let id = self.cols.get(&from)?.id.clone()?;
        if id.contains('.') {
            return None;
        }
        let base = label.unwrap_or("star");
        let prefix = self.fresh_name(base);
        let nav_label = match (label, is_attribute) {
            (Some(l), true) => format!("@{l}"),
            (Some(l), false) => l.to_string(),
            (None, _) => "*".to_string(),
        };
        self.plan = LogicalPlan::Navigate {
            input: Box::new(std::mem::replace(&mut self.plan, LogicalPlan::scan(""))),
            from_attr: Path::new(id),
            axis,
            label: nav_label,
            as_prefix: prefix.clone(),
            mode,
        };
        // pattern side: a new child node
        let mut node = XamNode::star(prefix.clone());
        node.tag_predicate = label.map(|l| l.to_string());
        node.is_attribute = is_attribute;
        node.edge = XamEdge {
            axis,
            sem: match mode {
                NavMode::Exists => EdgeSem::Semi,
                NavMode::Outer => EdgeSem::Outer,
                NavMode::Flat => EdgeSem::Join,
            },
        };
        let new = self.pattern.add_child(from, node);
        if mode != NavMode::Exists {
            self.cols.insert(
                new,
                NodeCols {
                    id: Some(format!("{prefix}_ID")),
                    val: Some(format!("{prefix}_Val")),
                    cont: Some(format!("{prefix}_Cont")),
                    tag: None,
                    id_kind: Some(IdKind::Structural),
                },
            );
        }
        Some(new)
    }

    /// Derive the ID of the `levels`-up ancestor of `node` (legal only for
    /// `p`-class navigational IDs, §4.4): adds a column and a fresh
    /// pattern node **above** is not needed — the caller attaches the
    /// derived column to an existing pattern node via `set_id_column`.
    pub fn derive_ancestor_id(&mut self, node: XamNodeId, levels: u16) -> Option<String> {
        let entry = self.cols.get(&node)?;
        if entry.id_kind != Some(IdKind::Parent) {
            return None;
        }
        let id = entry.id.clone()?;
        if id.contains('.') {
            return None;
        }
        let name = self.fresh_name("anc");
        self.plan = LogicalPlan::DeriveAncestorId {
            input: Box::new(std::mem::replace(&mut self.plan, LogicalPlan::scan(""))),
            attr: Path::new(id),
            levels,
            as_name: name.clone(),
        };
        Some(name)
    }

    /// Record that a pattern node's ID is available in a plan column
    /// (e.g. one produced by [`Self::derive_ancestor_id`]).
    pub fn set_id_column(&mut self, node: XamNodeId, col: String, kind: IdKind) {
        let e = self.cols.entry(node).or_default();
        e.id = Some(col);
        e.id_kind = Some(kind);
    }

    /// Join with another plan-pattern on **node identity**: `self`'s
    /// `my_node` and `other`'s root-child `other_root` denote the same
    /// document node (ID-equality join). `other`'s root constraints merge
    /// into `my_node`; its subtrees graft below. Works for any ID class —
    /// equality only needs identity (§5.1's `⋈=` operator).
    pub fn equality_join(mut self, other: PlanPattern, my_node: XamNodeId) -> Option<PlanPattern> {
        let my_id = self.cols.get(&my_node)?.id.clone()?;
        let other_root = *other.pattern.children(XamNodeId::TOP).first()?;
        let other_id = other.cols.get(&other_root)?.id.clone()?;
        if my_id.contains('.') || other_id.contains('.') {
            return None;
        }
        let plan = self.plan.join(
            other.plan,
            Predicate::col_cmp(my_id, CmpOp::Eq, other_id),
            JoinKind::Inner,
        );
        self.plan = plan;
        // pattern merge: unify other_root with my_node
        let node_map = graft(&mut self.pattern, my_node, &other.pattern, other_root, None)?;
        // merge column maps
        for (on, oc) in other.cols {
            let target = node_map[&on];
            let e = self.cols.entry(target).or_default();
            if e.id.is_none() {
                e.id = oc.id;
                e.id_kind = oc.id_kind;
            }
            if e.val.is_none() {
                e.val = oc.val;
            }
            if e.cont.is_none() {
                e.cont = oc.cont;
            }
            if e.tag.is_none() {
                e.tag = oc.tag;
            }
        }
        self.views_used.extend(other.views_used);
        Some(self)
    }

    /// Structural join: `self`'s `my_node` is the parent/ancestor of
    /// `other`'s root-child. Requires *structural* IDs on both sides —
    /// without them the views "cannot be simply joined" (§5.2).
    pub fn structural_join(
        mut self,
        other: PlanPattern,
        my_node: XamNodeId,
        axis: Axis,
    ) -> Option<PlanPattern> {
        let my = self.cols.get(&my_node)?;
        if !my.id_kind?.is_structural() {
            return None;
        }
        let my_id = my.id.clone()?;
        let other_root = *other.pattern.children(XamNodeId::TOP).first()?;
        let oc = other.cols.get(&other_root)?;
        if !oc.id_kind?.is_structural() {
            return None;
        }
        let other_id = oc.id.clone()?;
        if my_id.contains('.') || other_id.contains('.') {
            return None;
        }
        let plan = LogicalPlan::StructJoin {
            left: Box::new(self.plan),
            right: Box::new(other.plan),
            left_attr: Path::new(my_id),
            right_attr: Path::new(other_id),
            axis,
            kind: JoinKind::Inner,
            nest_as: None,
        };
        self.plan = plan;
        let node_map = graft(
            &mut self.pattern,
            my_node,
            &other.pattern,
            other_root,
            Some(axis),
        )?;
        for (on, oc) in other.cols {
            let target = node_map[&on];
            let e = self.cols.entry(target).or_default();
            if e.id.is_none() {
                e.id = oc.id;
                e.id_kind = oc.id_kind;
            }
            if e.val.is_none() {
                e.val = oc.val;
            }
            if e.cont.is_none() {
                e.cont = oc.cont;
            }
        }
        self.views_used.extend(other.views_used);
        Some(self)
    }
}

/// Graft `other`'s tree into `pat`. With `axis = None`, `other_root` is
/// *unified* with `at` (ID equality): its tag/value constraints merge into
/// `at`, its children attach below `at`. With `axis = Some(a)`,
/// `other_root` becomes a new child of `at` along that axis (structural
/// join). Returns the mapping other-node → pat-node.
fn graft(
    pat: &mut Xam,
    at: XamNodeId,
    other: &Xam,
    other_root: XamNodeId,
    axis: Option<Axis>,
) -> Option<HashMap<XamNodeId, XamNodeId>> {
    let mut map: HashMap<XamNodeId, XamNodeId> = HashMap::new();
    match axis {
        None => {
            // unify: tags must be compatible
            let o = other.node(other_root);
            {
                let a = pat.node_mut(at);
                match (&a.tag_predicate, &o.tag_predicate) {
                    (Some(x), Some(y)) if x != y => return None,
                    (None, Some(y)) => a.tag_predicate = Some(y.clone()),
                    _ => {}
                }
                let prev = std::mem::replace(&mut a.value_predicate, Formula::True);
                a.value_predicate = prev.and(o.value_predicate.clone());
                if a.stores_id.is_none() {
                    a.stores_id = o.stores_id;
                }
                a.stores_val |= o.stores_val;
                a.stores_cont |= o.stores_cont;
                a.stores_tag |= o.stores_tag;
            }
            map.insert(other_root, at);
        }
        Some(a) => {
            let mut node = other.node(other_root).clone();
            node.children = Vec::new();
            node.edge = XamEdge {
                axis: a,
                sem: node.edge.sem,
            };
            let new = pat.add_child(at, node);
            map.insert(other_root, new);
        }
    }
    // copy the rest of other's subtree
    fn rec(pat: &mut Xam, other: &Xam, on: XamNodeId, map: &mut HashMap<XamNodeId, XamNodeId>) {
        for &c in other.children(on) {
            let mut node = other.node(c).clone();
            node.children = Vec::new();
            let new = pat.add_child(map[&on], node);
            map.insert(c, new);
            rec(pat, other, c, map);
        }
    }
    rec(pat, other, other_root, &mut map);
    Some(map)
}

/// Compile a value formula into a plan predicate over a column.
pub fn formula_predicate(col: &str, f: &Formula) -> Predicate {
    match f {
        Formula::True => Predicate::True,
        Formula::False => Predicate::Not(Box::new(Predicate::True)),
        Formula::Cmp(op, c) => {
            let v = match c {
                FormulaConst::Int(i) => Value::Int(*i),
                FormulaConst::Str(s) => Value::str(s),
            };
            Predicate::Cmp(Operand::Col(Path::new(col)), *op, Operand::Const(v))
        }
        Formula::And(a, b) => Predicate::And(
            Box::new(formula_predicate(col, a)),
            Box::new(formula_predicate(col, b)),
        ),
        Formula::Or(a, b) => Predicate::Or(
            Box::new(formula_predicate(col, a)),
            Box::new(formula_predicate(col, b)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xam_core::parse_xam;

    #[test]
    fn from_view_maps_columns() {
        let v = parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let pp = PlanPattern::from_view("v1", &v, Some("a_"));
        let book = v.children(XamNodeId::TOP)[0];
        let title = v.children(book)[0];
        assert_eq!(pp.cols[&book].id.as_deref(), Some("a_book1_ID"));
        assert_eq!(pp.cols[&title].val.as_deref(), Some("a_title2_Val"));
        assert_eq!(pp.cols[&book].id_kind, Some(IdKind::Structural));
    }

    #[test]
    fn navigate_extends_pattern_and_plan() {
        let v = parse_xam("//item[id:s]").unwrap();
        let mut pp = PlanPattern::from_view("v", &v, None);
        let item = XamNodeId(1);
        let kw = pp
            .navigate(
                item,
                Axis::Descendant,
                Some("keyword"),
                false,
                NavMode::Outer,
            )
            .unwrap();
        assert_eq!(pp.pattern.pattern_size(), 2);
        assert_eq!(pp.pattern.node(kw).edge.sem, EdgeSem::Outer);
        assert!(pp.cols[&kw].id.is_some());
        assert!(format!("{}", pp.plan).contains("nav"));
    }

    #[test]
    fn structural_join_requires_structural_ids() {
        let v1 = parse_xam("//item[id:s]").unwrap();
        let v2s = parse_xam("//name[id:s,val]").unwrap();
        let v2i = parse_xam("//name[id:i,val]").unwrap();
        let item = XamNodeId(1);
        let pp1 = PlanPattern::from_view("v1", &v1, Some("l_"));
        let pp2 = PlanPattern::from_view("v2", &v2s, Some("r_"));
        let joined = pp1.clone().structural_join(pp2, item, Axis::Child);
        assert!(joined.is_some());
        let j = joined.unwrap();
        assert_eq!(j.pattern.pattern_size(), 2);
        assert_eq!(j.views_used, vec!["v1", "v2"]);
        // simple IDs refuse the structural join
        let pp2i = PlanPattern::from_view("v2", &v2i, Some("r_"));
        assert!(pp1.structural_join(pp2i, item, Axis::Child).is_none());
    }

    #[test]
    fn equality_join_unifies_roots() {
        let v1 = parse_xam("//item[id:i]{ /name[val] }").unwrap();
        let v2 = parse_xam("//item[id:i]{ //keyword[val] }").unwrap();
        let item = XamNodeId(1);
        let pp1 = PlanPattern::from_view("v1", &v1, Some("l_"));
        let pp2 = PlanPattern::from_view("v2", &v2, Some("r_"));
        let j = pp1.equality_join(pp2, item).unwrap();
        // item unified: pattern has item, name, keyword
        assert_eq!(j.pattern.pattern_size(), 3);
    }

    #[test]
    fn equality_join_tag_conflict_fails() {
        let v1 = parse_xam("//item[id:i]").unwrap();
        let v2 = parse_xam("//person[id:i]").unwrap();
        let pp1 = PlanPattern::from_view("v1", &v1, Some("l_"));
        let pp2 = PlanPattern::from_view("v2", &v2, Some("r_"));
        assert!(pp1.equality_join(pp2, XamNodeId(1)).is_none());
    }

    #[test]
    fn filter_value_strengthens_formula() {
        let v = parse_xam("//year[id:s,val]").unwrap();
        let mut pp = PlanPattern::from_view("v", &v, None);
        assert!(pp.filter_value(XamNodeId(1), &Formula::eq_str("1999")));
        assert_eq!(
            pp.pattern.node(XamNodeId(1)).value_predicate,
            Formula::eq_str("1999")
        );
    }

    #[test]
    fn fetch_value_when_only_id_stored() {
        let v = parse_xam("//year[id:s]").unwrap();
        let mut pp = PlanPattern::from_view("v", &v, None);
        let col = pp.value_column(XamNodeId(1)).unwrap();
        assert!(col.starts_with("c_val"));
        assert!(format!("{}", pp.plan).contains("fetch"));
    }

    #[test]
    fn derive_ancestor_only_for_parent_ids() {
        let vp = parse_xam("//parlist[id:p]").unwrap();
        let vs = parse_xam("//parlist[id:s]").unwrap();
        let mut pp = PlanPattern::from_view("v", &vp, None);
        assert!(pp.derive_ancestor_id(XamNodeId(1), 1).is_some());
        let mut pp = PlanPattern::from_view("v", &vs, None);
        assert!(pp.derive_ancestor_id(XamNodeId(1), 1).is_none());
    }
}
