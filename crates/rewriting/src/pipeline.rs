//! The end-to-end ULoad pipeline (Figure 5.1): XQuery in, XML out,
//! evaluated **entirely over materialized views**.
//!
//! [`Uload`] holds a document's summary and a [`storage::MaterializedStore`]
//! of XAM views. [`Uload::answer`] parses a query, extracts its maximal
//! patterns, rewrites each against the view set, substitutes the
//! rewritings into the combined plan (products, value-join post-filters,
//! tagging template) and executes. If some pattern has no rewriting, the
//! query is not answerable from the views and an error is returned —
//! rewritings are *total* (§5.1).
//!
//! Engines are assembled with [`Uload::builder`]; [`EngineConfig`]
//! selects worker threads and the shared containment cache, both of
//! which change only wall-clock time, never results.

use std::sync::Arc;

use algebra::{Evaluator, LogicalPlan};
use containment::{CacheStats, CanonicalCache};
use summary::Summary;
use uload_error::{Error, Result};
use xam_core::Xam;
use xmltree::Document;

use crate::rewrite::{rewrite_with_engine, EngineOptions, RewriteConfig, Rewriting};

/// Former error type of the pipeline; the engine now reports through the
/// unified [`uload_error::Error`].
#[deprecated(
    since = "0.2.0",
    note = "use `uload_error::Error` (re-exported as `uload::Error`)"
)]
pub type UloadError = Error;

/// Engine-wide execution knobs, threaded through [`Uload`] to every
/// containment and rewriting call.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for canonical-model enumeration and candidate
    /// verification. `0` and `1` both mean sequential. Results are
    /// deterministic at any thread count (worker outputs are merged in
    /// stable candidate order).
    pub threads: usize,
    /// Capacity of the shared [`CanonicalCache`] (verdict entries);
    /// `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Fuse structural-join cascades into holistic `TwigJoin` operators
    /// before execution and evaluate them with the TwigStack algorithm.
    /// Off, every twig falls back to the binary StackTree cascade.
    pub use_twigstack: bool,
    /// The rewriting search bounds (§5.3's generate-and-test knobs).
    pub rewrite: RewriteConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            cache_capacity: 4096,
            use_twigstack: true,
            rewrite: RewriteConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Sanity-check the knobs (the builder calls this).
    pub fn validate(&self) -> Result<()> {
        if self.threads > 1024 {
            return Err(Error::Config(format!(
                "threads = {} exceeds the 1024 worker limit",
                self.threads
            )));
        }
        if self.rewrite.max_views == 0 {
            return Err(Error::Config("rewrite.max_views must be at least 1".into()));
        }
        if self.rewrite.max_mappings == 0 {
            return Err(Error::Config(
                "rewrite.max_mappings must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`Uload`]: `Uload::builder().document(&doc).build()?`.
pub struct UloadBuilder<'d> {
    doc: Option<&'d Document>,
    config: EngineConfig,
}

impl<'d> UloadBuilder<'d> {
    /// The document whose summary the engine is set up over (required).
    pub fn document(mut self, doc: &'d Document) -> Self {
        self.doc = Some(doc);
        self
    }

    /// Replace the whole configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads (shortcut for mutating [`EngineConfig::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Cache capacity; `0` disables the shared cache.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Toggle holistic twig-join planning and execution.
    pub fn use_twigstack(mut self, on: bool) -> Self {
        self.config.use_twigstack = on;
        self
    }

    /// The rewriting search bounds.
    pub fn rewrite_config(mut self, rewrite: RewriteConfig) -> Self {
        self.config.rewrite = rewrite;
        self
    }

    /// Validate the configuration and assemble the engine.
    pub fn build(self) -> Result<Uload> {
        let doc = self
            .doc
            .ok_or_else(|| Error::Config("UloadBuilder: no document was provided".into()))?;
        self.config.validate()?;
        Ok(Uload::assemble(doc, self.config))
    }
}

/// The ULoad prototype: a summary-aware, view-backed XQuery processor.
pub struct Uload {
    summary: Summary,
    summary_fp: u64,
    store: storage::MaterializedStore,
    config: EngineConfig,
    cache: Option<Arc<CanonicalCache>>,
}

impl Uload {
    /// Start building an engine: `Uload::builder().document(&doc).build()?`.
    pub fn builder<'d>() -> UloadBuilder<'d> {
        UloadBuilder {
            doc: None,
            config: EngineConfig::default(),
        }
    }

    fn assemble(doc: &Document, config: EngineConfig) -> Uload {
        let summary = Summary::of_document(doc);
        let summary_fp = containment::cache::summary_fingerprint(&summary);
        let cache = if config.cache_capacity > 0 {
            Some(Arc::new(CanonicalCache::new(config.cache_capacity)))
        } else {
            None
        };
        Uload {
            summary,
            summary_fp,
            store: storage::MaterializedStore::new(),
            config,
            cache,
        }
    }

    /// Set up over a document with default configuration.
    #[deprecated(since = "0.2.0", note = "use `Uload::builder().document(doc).build()`")]
    pub fn new(doc: &Document) -> Uload {
        Uload::assemble(doc, EngineConfig::default())
    }

    #[deprecated(
        since = "0.2.0",
        note = "configure through `Uload::builder().config(...)` before building"
    )]
    pub fn config_mut(&mut self) -> &mut RewriteConfig {
        &mut self.config.rewrite
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    pub fn store(&self) -> &storage::MaterializedStore {
        &self.store
    }

    /// Effectiveness counters of the shared cache (`None` when caching
    /// is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(CanonicalCache::stats)
    }

    /// The execution context handed to the rewriting/containment layers.
    fn engine_options(&self) -> EngineOptions<'_> {
        EngineOptions {
            threads: self.config.threads,
            cache: self.cache.as_deref(),
            summary_fp: Some(self.summary_fp),
        }
    }

    /// Materialize a view over the document and add it to the set — the
    /// only step needed to change the physical design (no optimizer code).
    pub fn add_view(&mut self, name: impl Into<String>, xam: Xam, doc: &Document) -> Result<()> {
        self.store
            .add_view(name, xam, doc)
            .map_err(|e| Error::Storage(e.to_string()))
    }

    /// Parse a textual XAM and add it as a view.
    pub fn add_view_text(
        &mut self,
        name: impl Into<String>,
        text: &str,
        doc: &Document,
    ) -> Result<()> {
        let xam = xam_core::parse_xam(text).map_err(|e| Error::Parse(e.to_string()))?;
        self.add_view(name, xam, doc)
    }

    /// Rewrite one pattern against the current views, ranked by the
    /// estimated cost over the *actual* view sizes (cheapest first); ties
    /// fall back to the paper's operator-count minimality.
    pub fn rewrite_pattern(&self, q: &Xam) -> Vec<Rewriting> {
        let (mut rws, _) = rewrite_with_engine(
            q,
            self.store.definitions(),
            &self.summary,
            self.config.rewrite,
            &self.engine_options(),
        );
        rws.sort_by(|a, b| {
            let ca = crate::cost::plan_cost(&a.plan, self.store.catalog());
            let cb = crate::cost::plan_cost(&b.plan, self.store.catalog());
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.size.cmp(&b.size))
        });
        rws
    }

    /// Answer a query from the views: returns one serialized XML string
    /// per result, plus the per-pattern rewritings used.
    pub fn answer(&self, query: &str, doc: &Document) -> Result<(Vec<String>, Vec<Rewriting>)> {
        let q = xquery::parse_query(query).map_err(|e| Error::Parse(e.to_string()))?;
        let ex = xquery::extract_patterns(&q).map_err(|e| Error::Translate(e.to_string()))?;
        let mut plans: Vec<LogicalPlan> = Vec::new();
        let mut used: Vec<Rewriting> = Vec::new();
        for (i, pat) in ex.patterns.iter().enumerate() {
            if !containment::satisfiable(pat, &self.summary) {
                return Err(Error::UnsatisfiablePattern(pat.to_string()));
            }
            let rws = self.rewrite_pattern(pat);
            match rws.into_iter().next() {
                Some(rw) => {
                    plans.push(rw.plan.clone());
                    used.push(rw);
                }
                None => {
                    return Err(Error::NoRewriting {
                        pattern_index: i,
                        pattern: pat.to_string(),
                    })
                }
            }
        }
        let mut plan = xquery::translate::combine_plans(&ex, plans);
        let mut ev = Evaluator::with_document(self.store.catalog(), doc);
        if self.config.use_twigstack {
            plan = algebra::fuse_struct_joins(&plan);
        } else {
            ev.config.use_twigstack = false;
        }
        let rel = ev.eval(&plan).map_err(|e| Error::Eval(e.to_string()))?;
        let out = rel
            .tuples
            .iter()
            .map(|t| t.get(0).as_str().unwrap_or("").to_string())
            .collect();
        Ok((out, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::{bib_sample, xmark};

    fn engine(doc: &Document) -> Uload {
        Uload::builder().document(doc).build().unwrap()
    }

    #[test]
    fn answers_from_exact_views() {
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v_books", "//book[id:s]{ /n? title1:title[cont] }", &doc)
            .unwrap();
        // the query pattern extracted from this FLWR is exactly the view
        let (out, used) = u
            .answer(r#"for $b in doc("d")//book return <r>{$b/title}</r>"#, &doc)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("<title>Data on the Web</title>"), "{out:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].views_used, vec!["v_books"]);
    }

    #[test]
    fn fails_without_covering_views() {
        let doc = bib_sample();
        let u = engine(&doc);
        let err = u.answer(r#"doc("d")//book/title"#, &doc);
        assert!(matches!(err, Err(Error::NoRewriting { .. })));
    }

    #[test]
    fn builder_validates_config() {
        let doc = bib_sample();
        assert!(matches!(Uload::builder().build(), Err(Error::Config(_))));
        let bad = EngineConfig {
            threads: 5000,
            ..Default::default()
        };
        assert!(matches!(
            Uload::builder().document(&doc).config(bad).build(),
            Err(Error::Config(_))
        ));
        let ok = Uload::builder()
            .document(&doc)
            .threads(4)
            .cache_capacity(128)
            .build()
            .unwrap();
        assert_eq!(ok.config().threads, 4);
        assert!(ok.cache_stats().is_some());
        let uncached = Uload::builder()
            .document(&doc)
            .cache_capacity(0)
            .build()
            .unwrap();
        assert!(uncached.cache_stats().is_none());
    }

    #[test]
    fn parallel_cached_engine_answers_like_default() {
        let doc = bib_sample();
        let q = r#"for $b in doc("d")//book return <r>{$b/title}</r>"#;
        let view = "//book[id:s]{ /n? title1:title[cont] }";
        let mut base = engine(&doc);
        base.add_view_text("v", view, &doc).unwrap();
        let (out_base, _) = base.answer(q, &doc).unwrap();
        let mut par = Uload::builder()
            .document(&doc)
            .threads(4)
            .cache_capacity(1024)
            .build()
            .unwrap();
        par.add_view_text("v", view, &doc).unwrap();
        let (out_par, _) = par.answer(q, &doc).unwrap();
        assert_eq!(out_base, out_par);
        // the engine actually exercised its cache
        let stats = par.cache_stats().unwrap();
        assert!(stats.hits + stats.misses > 0, "{stats:?}");
    }

    #[test]
    fn twigstack_toggle_preserves_answers() {
        // same query, twig planning on vs. off: identical output
        let doc = xmark(2, 13);
        let q = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
        let view = "//item[id:s]{ /n? name1:name[val] }";
        let run = |on: bool| {
            let mut u = Uload::builder()
                .document(&doc)
                .use_twigstack(on)
                .build()
                .unwrap();
            u.add_view_text("V", view, &doc).unwrap();
            u.answer(q, &doc).unwrap().0
        };
        let with_twig = run(true);
        let without = run(false);
        assert!(!with_twig.is_empty());
        assert_eq!(with_twig, without);
    }

    #[test]
    fn motivating_example_section_5_2() {
        // the §5.2 scenario on an XMark-like document: V1 stores items
        // with nested optional listitems (IDs + content), V2 stores item
        // names; the query needs both plus keyword navigation
        let doc = xmark(2, 13);
        let mut u = engine(&doc);
        u.add_view_text("V2", "//item[id:s]{ /n? name1:name[val] }", &doc)
            .unwrap();
        let (out, used) = u
            .answer(
                r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#,
                &doc,
            )
            .unwrap();
        let items = doc.elements().filter(|&n| doc.label(n) == "item").count();
        assert_eq!(out.len(), items);
        assert_eq!(used[0].views_used, vec!["V2"]);
    }

    #[test]
    fn cost_ranking_prefers_cheaper_views() {
        // both views can answer //book/title: the exact small view
        // directly, the coarse //* view via selection+navigation over a
        // much larger relation — the cost model must rank the exact view
        // first
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v_exact", "//book[id:s]{ /title[val] }", &doc)
            .unwrap();
        u.add_view_text("v_everything", "//*[id:s,tag,val,cont]", &doc)
            .unwrap();
        let q = xam_core::parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let rws = u.rewrite_pattern(&q);
        assert!(rws.len() >= 2, "both views should offer rewritings");
        assert_eq!(
            rws[0].views_used,
            vec!["v_exact"],
            "cost ranking must prefer the small exact view"
        );
    }

    #[test]
    fn dropping_a_view_changes_answerability() {
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v", "//author[id:s]{ /n? v:#text }", &doc)
            .ok(); // #text views unsupported: ignore result
                   // add a plain covering view
        u.add_view_text("v_auth", "//book[id:s]{ /n? a:author[cont] }", &doc)
            .unwrap();
        let q = r#"for $b in doc("d")//book return <r>{$b/author}</r>"#;
        assert!(u.answer(q, &doc).is_ok());
    }
}
