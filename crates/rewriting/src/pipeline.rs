//! The end-to-end ULoad pipeline (Figure 5.1): XQuery in, XML out,
//! evaluated **entirely over materialized views**.
//!
//! [`Uload`] holds a document's summary and a [`storage::MaterializedStore`]
//! of XAM views. [`Uload::answer`] parses a query, extracts its maximal
//! patterns, rewrites each against the view set, substitutes the
//! rewritings into the combined plan (products, value-join post-filters,
//! tagging template) and executes. If some pattern has no rewriting, the
//! query is not answerable from the views and an error is returned —
//! rewritings are *total* (§5.1).
//!
//! Engines are assembled with [`Uload::builder`]; [`EngineConfig`]
//! selects worker threads and the shared containment cache, both of
//! which change only wall-clock time, never results.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use algebra::{CursorConfig, Evaluator, LogicalPlan, Relation, StreamExec, TupleBatch};
use containment::{CacheStats, CanonicalCache};
use obs::{
    ArmTelemetry, CacheCounters, OpProfile, OpStreamProfile, PlanNodeProfile, QueryProfile,
    StatsStore, StreamProfile,
};
use parking_lot::Mutex;
use storage::DocumentHandle;
use summary::Summary;
use uload_error::{Error, Result};
use xam_core::Xam;
use xmltree::Document;

use crate::cost::{CostModel, EstimateNode};
use crate::rewrite::{rewrite_with_engine, EngineOptions, RewriteConfig, Rewriting};

/// Former error type of the pipeline; the engine now reports through the
/// unified [`uload_error::Error`].
#[deprecated(
    since = "0.2.0",
    note = "use `uload_error::Error` (re-exported as `uload::Error`)"
)]
pub type UloadError = Error;

/// Engine-wide execution knobs, threaded through [`Uload`] to every
/// containment and rewriting call.
///
/// **The one way to build a configuration** is `Default` plus the
/// chainable `with_*` setters — the same style `ContainOptions` uses —
/// handed to [`UloadBuilder::config`]:
///
/// ```
/// # use rewriting::{EngineConfig, Uload};
/// # let doc = xmltree::parse_document("<a><b/></a>").unwrap();
/// let engine = Uload::builder()
///     .document(&doc)
///     .config(
///         EngineConfig::default()
///             .with_threads(4)
///             .with_cache_capacity(1024)
///             .with_batch_size(256),
///     )
///     .build()?;
/// # assert_eq!(engine.config().threads, 4);
/// # uload_error::Result::Ok(())
/// ```
///
/// (The fields stay `pub` for struct-literal updates in tests and
/// experiments; `with_*` is the blessed call-site style.)
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for canonical-model enumeration and candidate
    /// verification. `0` and `1` both mean sequential. Results are
    /// deterministic at any thread count (worker outputs are merged in
    /// stable candidate order).
    pub threads: usize,
    /// Capacity of the shared [`CanonicalCache`] (verdict entries);
    /// `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Fuse structural-join cascades into holistic `TwigJoin` operators
    /// before execution and evaluate them with the TwigStack algorithm.
    /// Off, every twig falls back to the binary StackTree cascade.
    pub use_twigstack: bool,
    /// Collect an `EXPLAIN ANALYZE` [`QueryProfile`] on every
    /// [`Uload::answer`] call (retrievable via [`Uload::last_profile`]).
    /// Profiled runs re-execute operators against materialized inputs and
    /// run *both* twig arms, so they cost extra wall time; off (the
    /// default), answering takes the unmetered fast path.
    pub profiling: bool,
    /// Target rows per [`TupleBatch`] pulled through the streaming
    /// executor behind [`Uload::query`] (must be ≥ 1). Operators may
    /// emit smaller batches (filters) or larger ones (joins, `Unnest`);
    /// this only sets the granularity at which base scans chunk.
    pub batch_size: usize,
    /// Build XB-tree skip indexes over join input streams so the
    /// structural-join kernels seek over prunable regions instead of
    /// scanning them (`false` = linear advance, for the ablation).
    pub use_skip_index: bool,
    /// Partition document ID streams by summary path
    /// ([`storage::IdStreamIndex::build_with_summary`]) so pattern scans
    /// open only summary-compatible partitions (`false` = whole-column
    /// streams, for the ablation).
    pub use_summary_pruning: bool,
    /// Run the structural-join kernels over the packed pre/post/depth
    /// columns (`storage`'s structure-of-arrays layout) with lane-wide
    /// batched advance loops. The packed pre column is seekable by
    /// construction, so this subsumes `use_skip_index` when both are on.
    /// Off, the kernels take the scalar element-at-a-time paths (for the
    /// ablation).
    pub columnar_kernels: bool,
    /// The rewriting search bounds (§5.3's generate-and-test knobs).
    pub rewrite: RewriteConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            cache_capacity: 4096,
            use_twigstack: true,
            profiling: false,
            batch_size: 1024,
            use_skip_index: true,
            use_summary_pruning: true,
            columnar_kernels: true,
            rewrite: RewriteConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Worker threads (`0` and `1` both mean sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shared-cache capacity; `0` disables caching.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Toggle holistic twig-join planning and execution.
    pub fn with_twigstack(mut self, on: bool) -> Self {
        self.use_twigstack = on;
        self
    }

    /// Toggle `EXPLAIN ANALYZE` profiling of every answered query.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Target rows per streamed batch (≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Toggle skip-index (XB-tree) seeks in the join kernels.
    pub fn with_skip_index(mut self, on: bool) -> Self {
        self.use_skip_index = on;
        self
    }

    /// Toggle summary-path partitioning of document ID streams.
    pub fn with_summary_pruning(mut self, on: bool) -> Self {
        self.use_summary_pruning = on;
        self
    }

    /// Toggle the columnar (structure-of-arrays) join kernels.
    pub fn with_columnar_kernels(mut self, on: bool) -> Self {
        self.columnar_kernels = on;
        self
    }

    /// The rewriting search bounds.
    pub fn with_rewrite(mut self, rewrite: RewriteConfig) -> Self {
        self.rewrite = rewrite;
        self
    }

    /// The access-method capabilities this configuration grants the
    /// executor, as the cost model wants them.
    pub fn exec_caps(&self) -> crate::cost::ExecCaps {
        crate::cost::ExecCaps::new(self.use_skip_index, self.columnar_kernels)
    }

    /// Sanity-check the knobs (the builder calls this).
    pub fn validate(&self) -> Result<()> {
        if self.threads > 1024 {
            return Err(Error::Config(format!(
                "threads = {} exceeds the 1024 worker limit",
                self.threads
            )));
        }
        if self.batch_size == 0 {
            return Err(Error::Config("batch_size must be at least 1".into()));
        }
        if self.rewrite.max_views == 0 {
            return Err(Error::Config("rewrite.max_views must be at least 1".into()));
        }
        if self.rewrite.max_mappings == 0 {
            return Err(Error::Config(
                "rewrite.max_mappings must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`Uload`]: `Uload::builder().document(&doc).build()?`.
pub struct UloadBuilder<'d> {
    doc: Option<&'d Document>,
    config: EngineConfig,
}

impl<'d> UloadBuilder<'d> {
    /// The document whose summary the engine is set up over (required).
    pub fn document(mut self, doc: &'d Document) -> Self {
        self.doc = Some(doc);
        self
    }

    /// Replace the whole configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads (shortcut for mutating [`EngineConfig::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Cache capacity; `0` disables the shared cache.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Toggle holistic twig-join planning and execution.
    pub fn use_twigstack(mut self, on: bool) -> Self {
        self.config.use_twigstack = on;
        self
    }

    /// Toggle `EXPLAIN ANALYZE` profiling of every answered query.
    pub fn profiling(mut self, on: bool) -> Self {
        self.config.profiling = on;
        self
    }

    /// Toggle skip-index (XB-tree) seeks in the join kernels.
    pub fn use_skip_index(mut self, on: bool) -> Self {
        self.config.use_skip_index = on;
        self
    }

    /// Toggle summary-path partitioning of document ID streams.
    pub fn use_summary_pruning(mut self, on: bool) -> Self {
        self.config.use_summary_pruning = on;
        self
    }

    /// Toggle the columnar (structure-of-arrays) join kernels.
    pub fn columnar_kernels(mut self, on: bool) -> Self {
        self.config.columnar_kernels = on;
        self
    }

    /// Target rows per batch of the streaming executor (≥ 1).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// The rewriting search bounds.
    pub fn rewrite_config(mut self, rewrite: RewriteConfig) -> Self {
        self.config.rewrite = rewrite;
        self
    }

    /// Validate the configuration and assemble the engine.
    pub fn build(self) -> Result<Uload> {
        let doc = self
            .doc
            .ok_or_else(|| Error::Config("UloadBuilder: no document was provided".into()))?;
        self.config.validate()?;
        Ok(Uload::assemble(doc, self.config))
    }
}

/// The ULoad prototype: a summary-aware, view-backed XQuery processor.
pub struct Uload {
    summary: Summary,
    summary_fp: u64,
    store: storage::MaterializedStore,
    config: EngineConfig,
    cache: Option<Arc<CanonicalCache>>,
    last_profile: Mutex<Option<QueryProfile>>,
    stats: Arc<StatsStore>,
}

impl Uload {
    /// Start building an engine: `Uload::builder().document(&doc).build()?`.
    pub fn builder<'d>() -> UloadBuilder<'d> {
        UloadBuilder {
            doc: None,
            config: EngineConfig::default(),
        }
    }

    fn assemble(doc: &Document, config: EngineConfig) -> Uload {
        let summary = Summary::of_document(doc);
        let summary_fp = containment::cache::summary_fingerprint(&summary);
        let cache = if config.cache_capacity > 0 {
            Some(Arc::new(CanonicalCache::new(config.cache_capacity)))
        } else {
            None
        };
        Uload {
            summary,
            summary_fp,
            store: storage::MaterializedStore::new(),
            config,
            cache,
            last_profile: Mutex::new(None),
            stats: Arc::new(StatsStore::new()),
        }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    pub fn store(&self) -> &storage::MaterializedStore {
        &self.store
    }

    /// Build the columnar ID-stream access module for `doc` under the
    /// engine's physical-design knobs: with
    /// [`EngineConfig::use_summary_pruning`] on, every column is
    /// partitioned by the engine's summary so pattern scans can open
    /// only summary-compatible partitions
    /// ([`storage::IdStreamIndex::pruned_stream`]); off, plain
    /// whole-column streams. Either way the streams answer the same
    /// queries — the knob changes the access path, not the results.
    pub fn id_stream_index(&self, doc: &Document) -> storage::IdStreamIndex {
        if self.config.use_summary_pruning {
            storage::IdStreamIndex::build_with_summary(doc, &self.summary)
        } else {
            storage::IdStreamIndex::build(doc)
        }
    }

    /// Effectiveness counters of the shared cache (`None` when caching
    /// is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(CanonicalCache::stats)
    }

    /// The engine's cardinality feedback store: measured per-plan-node
    /// cardinalities and arm-choice outcomes, recorded by every
    /// profiled run ([`Uload::answer_profiled`] under document-version
    /// key `0`, [`Uload::profile_prepared`] under the handle's real
    /// version). The durable feed for adaptive re-optimization.
    pub fn stats_store(&self) -> &Arc<StatsStore> {
        &self.stats
    }

    /// The execution context handed to the rewriting/containment layers.
    fn engine_options(&self) -> EngineOptions<'_> {
        EngineOptions {
            threads: self.config.threads,
            cache: self.cache.as_deref(),
            summary_fp: Some(self.summary_fp),
        }
    }

    /// Materialize a view over the document and add it to the set — the
    /// only step needed to change the physical design (no optimizer code).
    pub fn add_view(&mut self, name: impl Into<String>, xam: Xam, doc: &Document) -> Result<()> {
        self.store
            .add_view(name, xam, doc)
            .map_err(|e| Error::Storage(e.to_string()))
    }

    /// Parse a textual XAM and add it as a view.
    pub fn add_view_text(
        &mut self,
        name: impl Into<String>,
        text: &str,
        doc: &Document,
    ) -> Result<()> {
        let xam = xam_core::parse_xam(text).map_err(|e| Error::Parse(e.to_string()))?;
        self.add_view(name, xam, doc)
    }

    /// Rewrite one pattern against the current views, ranked by the
    /// estimated cost over the *actual* view sizes (cheapest first); ties
    /// fall back to the paper's operator-count minimality.
    pub fn rewrite_pattern(&self, q: &Xam) -> Vec<Rewriting> {
        let (mut rws, _) = rewrite_with_engine(
            q,
            self.store.definitions(),
            &self.summary,
            self.config.rewrite,
            &self.engine_options(),
        );
        // candidate ranking stays catalog-only (no feedback): the chosen
        // rewriting must not depend on what happened to run before, so
        // the same view set always yields the same plan
        let model = CostModel::new(self.store.catalog(), self.config.exec_caps());
        rws.sort_by(|a, b| {
            let ca = model.cost(&a.plan);
            let cb = model.cost(&b.plan);
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.size.cmp(&b.size))
        });
        rws
    }

    /// Parse, extract, rewrite and combine: everything up to (but not
    /// including) plan fusing and evaluation, with per-phase wall times.
    fn prepare(&self, query: &str) -> Result<Prepared> {
        let t = Instant::now();
        let q = xquery::parse_query(query).map_err(|e| Error::Parse(e.to_string()))?;
        let parse_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let ex = xquery::extract_patterns(&q).map_err(|e| Error::Translate(e.to_string()))?;
        let extract_ns = t.elapsed().as_nanos() as u64;
        tracing::debug!(
            target: "uload::query",
            "extracted {} pattern(s) from query",
            ex.patterns.len()
        );

        let t = Instant::now();
        let mut plans: Vec<LogicalPlan> = Vec::new();
        let mut used: Vec<Rewriting> = Vec::new();
        for (i, pat) in ex.patterns.iter().enumerate() {
            if !containment::satisfiable(pat, &self.summary) {
                return Err(Error::UnsatisfiablePattern(pat.to_string()));
            }
            let rws = self.rewrite_pattern(pat);
            match rws.into_iter().next() {
                Some(rw) => {
                    tracing::debug!(
                        target: "uload::rewrite",
                        "pattern {i} rewritten over views {:?} ({} operators)",
                        rw.views_used,
                        rw.size
                    );
                    plans.push(rw.plan.clone());
                    used.push(rw);
                }
                None => {
                    return Err(Error::NoRewriting {
                        pattern_index: i,
                        pattern: pat.to_string(),
                    })
                }
            }
        }
        let rewrite_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let base_plan = xquery::translate::combine_plans(&ex, plans);
        let plan_ns = t.elapsed().as_nanos() as u64;
        Ok(Prepared {
            base_plan,
            used,
            parse_ns,
            extract_ns,
            rewrite_ns,
            plan_ns,
        })
    }

    fn serialize(rel: &Relation) -> Vec<String> {
        rel.tuples
            .iter()
            .map(|t| t.get(0).as_str().unwrap_or("").to_string())
            .collect()
    }

    /// Answer a query from the views: returns one serialized XML string
    /// per result, plus the per-pattern rewritings used.
    ///
    /// With [`EngineConfig::profiling`] on, this runs the profiled path
    /// and stashes the resulting [`QueryProfile`] for
    /// [`Uload::last_profile`].
    pub fn answer(&self, query: &str, doc: &Document) -> Result<(Vec<String>, Vec<Rewriting>)> {
        if self.config.profiling {
            let (out, used, _) = self.answer_profiled(query, doc)?;
            return Ok((out, used));
        }
        let span = tracing::debug_span!(target: "uload::query", "answer");
        let _g = span.enter();
        let prep = self.prepare_query(query)?;
        let out = self.answer_prepared(&prep, doc)?;
        Ok((out, prep.rewritings))
    }

    /// Parse, extract, rewrite and plan a query once, returning a
    /// [`PreparedQuery`] that can be executed any number of times (and
    /// from any thread — it is plain data). This is the server's
    /// `PREPARE` step: the expensive phases run once, and the prepared
    /// plan's [`PreparedQuery::fingerprint`] keys both the prepared-plan
    /// registry and the `(fingerprint, document version)` result cache.
    pub fn prepare_query(&self, query: &str) -> Result<PreparedQuery> {
        let span = tracing::debug_span!(target: "uload::query", "prepare");
        let _g = span.enter();
        let p = self.prepare(query)?;
        let use_twigstack = self.config.use_twigstack;
        let fused = algebra::fuse_struct_joins(&p.base_plan);
        let has_twig_arm = fused != p.base_plan;
        let plan = if use_twigstack { fused } else { p.base_plan };
        let arm = match (has_twig_arm, use_twigstack) {
            (false, _) => "single",
            (true, true) => "twig",
            (true, false) => "cascade",
        };
        Ok(Self::finish_prepared(
            query,
            plan,
            use_twigstack,
            p.used,
            0,
            arm,
            "knob",
        ))
    }

    /// [`Uload::prepare_query`] with cardinality feedback: when the
    /// [`StatsStore`] holds observations for this query's plans under
    /// `doc_version`, the twig-vs-cascade arm is re-chosen from the
    /// measured evidence instead of the `use_twigstack` knob. With an
    /// empty store (or an unseen document version) this is exactly
    /// [`Uload::prepare_query`] — same plan, same fingerprint — so
    /// results stay deterministic.
    pub fn prepare_query_for_version(
        &self,
        query: &str,
        doc_version: u64,
    ) -> Result<PreparedQuery> {
        self.prepare_adaptive(query, doc_version, 0)
    }

    /// Re-plan an already-prepared query under feedback for
    /// `doc_version`, bumping the plan epoch. The server calls this when
    /// the store's rollup marks the prepared fingerprint mispredicted
    /// past its threshold; the returned plan (possibly the other arm)
    /// replaces the shared prepared entry.
    pub fn replan_prepared(&self, prep: &PreparedQuery, doc_version: u64) -> Result<PreparedQuery> {
        self.prepare_adaptive(&prep.query, doc_version, prep.epoch + 1)
    }

    fn prepare_adaptive(&self, query: &str, doc_version: u64, epoch: u64) -> Result<PreparedQuery> {
        let span = tracing::debug_span!(target: "uload::query", "prepare_adaptive");
        let _g = span.enter();
        let p = self.prepare(query)?;
        let fused = algebra::fuse_struct_joins(&p.base_plan);
        let choice = self.choose_arm(&p.base_plan, &fused, doc_version);
        if choice.source != "knob" {
            tracing::debug!(
                target: "uload::cost",
                "adaptive prepare chose the {} arm via {} (epoch {epoch}, doc version {doc_version})",
                choice.arm,
                choice.source
            );
        }
        Ok(Self::finish_prepared(
            query,
            choice.plan,
            choice.use_twigstack,
            p.used,
            epoch,
            choice.arm,
            choice.source,
        ))
    }

    /// Pick the twig or cascade arm for a plan pair under feedback for
    /// `doc_version`. The cascade, in order of evidence strength:
    /// measured arm outcomes (a plan whose chosen arm ran ≥2× slower
    /// flips to the alternative), then blended-cost comparison when the
    /// store holds node observations for either arm, then the
    /// `use_twigstack` knob. An empty store always lands on the knob.
    fn choose_arm(
        &self,
        base_plan: &LogicalPlan,
        fused: &LogicalPlan,
        doc_version: u64,
    ) -> ArmChoice {
        let knob_twig = self.config.use_twigstack;
        if fused == base_plan {
            let cost = self
                .cost_model(doc_version, plan_fingerprint(base_plan))
                .cost(base_plan);
            return ArmChoice {
                plan: base_plan.clone(),
                use_twigstack: knob_twig,
                arm: "single",
                source: "knob",
                chosen_cost: cost,
                alternative: None,
            };
        }
        let twig_fp = plan_fingerprint(fused);
        let cascade_fp = plan_fingerprint(base_plan);
        let twig_cost = self.cost_model(doc_version, twig_fp).cost(fused);
        let cascade_cost = self.cost_model(doc_version, cascade_fp).cost(base_plan);
        let (knob_fp, alt_fp) = if knob_twig {
            (twig_fp, cascade_fp)
        } else {
            (cascade_fp, twig_fp)
        };
        let arm_mispredicts =
            |fp: u64| self.stats.arm(doc_version, fp).map_or(0, |a| a.mispredicts);
        let knob_arm_bad = arm_mispredicts(knob_fp) > 0;
        let alt_arm_bad = arm_mispredicts(alt_fp) > 0;
        let has_node_feedback = self.stats.has_feedback(doc_version, twig_fp)
            || self.stats.has_feedback(doc_version, cascade_fp);
        let (choose_twig, source) = if knob_arm_bad && !alt_arm_bad {
            // the measured arm outcome is the strongest signal: the knob's
            // arm ran ≥2× slower than the alternative at least once
            (!knob_twig, "feedback-arm")
        } else if has_node_feedback || knob_arm_bad {
            // measured cardinalities exist (or both arms misfired):
            // re-score both arms with blended selectivities
            (twig_cost <= cascade_cost, "feedback-cost")
        } else {
            (knob_twig, "knob")
        };
        let (plan, arm, chosen_cost, alt_arm, alt_cost) = if choose_twig {
            (fused.clone(), "twig", twig_cost, "cascade", cascade_cost)
        } else {
            (
                base_plan.clone(),
                "cascade",
                cascade_cost,
                "twig",
                twig_cost,
            )
        };
        ArmChoice {
            plan,
            use_twigstack: choose_twig,
            arm,
            source,
            chosen_cost,
            alternative: Some((alt_arm, alt_cost)),
        }
    }

    /// The feedback-aware cost model for plans keyed by
    /// `(doc_version, plan_fp)` in the stats store.
    fn cost_model(&self, doc_version: u64, plan_fp: u64) -> CostModel<'_> {
        CostModel::new(self.store.catalog(), self.config.exec_caps()).with_feedback(
            &self.stats,
            doc_version,
            plan_fp,
        )
    }

    /// Build the mid-query arm-switch hint for a streamed twig plan.
    ///
    /// The hint is only attached when the stats store holds evidence
    /// that the twig arm has mispredicted for this `(version, plan)`
    /// before — a cold store never perturbs execution, keeping
    /// feedback-free runs byte-identical to the static planner.
    fn arm_hint(&self, prep: &PreparedQuery, doc_version: u64) -> Option<algebra::ArmSwitchHint> {
        if !prep.use_twigstack {
            return None;
        }
        let arm = self.stats.arm(doc_version, prep.fingerprint)?;
        if arm.mispredicts == 0 {
            return None;
        }
        let tree = self
            .cost_model(doc_version, prep.fingerprint)
            .estimate_tree(&prep.plan);
        let twig = find_twig_node(&tree)?;
        let est_leaf_rows: f64 = twig.children.iter().map(|c| c.estimate.rows).sum();
        Some(algebra::ArmSwitchHint {
            stats: Arc::clone(&self.stats),
            doc_version,
            plan_fp: prep.fingerprint,
            est_leaf_rows,
        })
    }

    fn finish_prepared(
        query: &str,
        plan: LogicalPlan,
        use_twigstack: bool,
        rewritings: Vec<Rewriting>,
        epoch: u64,
        arm: &str,
        arm_source: &str,
    ) -> PreparedQuery {
        let breakers = algebra::pipeline_breakers(&plan);
        let fingerprint = plan_fingerprint(&plan);
        PreparedQuery {
            query: query.to_string(),
            plan,
            use_twigstack,
            rewritings,
            breakers,
            fingerprint,
            epoch,
            arm: arm.to_string(),
            arm_source: arm_source.to_string(),
        }
    }

    /// `EXPLAIN` without executing: the typed plan tree with per-node
    /// [`crate::cost::Estimate`]s (feedback provenance included) and the
    /// chosen/alternative arm, for the conventional embedded document
    /// version `0`. Callers no longer have to parse the `QueryProfile`
    /// JSON to see why a plan was picked.
    pub fn explain(&self, query: &str) -> Result<Explain> {
        self.explain_for_version(query, 0)
    }

    /// [`Uload::explain`] under a specific document version — the
    /// server's `EXPLAIN` command uses the live handle's version so the
    /// report reflects exactly what the next `EXEC` would plan.
    pub fn explain_for_version(&self, query: &str, doc_version: u64) -> Result<Explain> {
        let p = self.prepare(query)?;
        let fused = algebra::fuse_struct_joins(&p.base_plan);
        let choice = self.choose_arm(&p.base_plan, &fused, doc_version);
        let fingerprint = plan_fingerprint(&choice.plan);
        let tree = self
            .cost_model(doc_version, fingerprint)
            .estimate_tree(&choice.plan);
        Ok(Explain {
            query: query.to_string(),
            fingerprint,
            doc_version,
            chosen_arm: choice.arm.to_string(),
            arm_source: choice.source.to_string(),
            chosen_cost: choice.chosen_cost,
            alternative_arm: choice.alternative.map(|(a, _)| a.to_string()),
            alternative_cost: choice.alternative.map(|(_, c)| c),
            feedback_nodes: tree.feedback_nodes(),
            plan: tree,
        })
    }

    /// Execute a prepared plan to completion (materialized), returning
    /// the serialized rows. The plan was already fused (or not) at
    /// prepare time; only the per-call document is supplied here.
    pub fn answer_prepared(&self, prep: &PreparedQuery, doc: &Document) -> Result<Vec<String>> {
        let mut ev = Evaluator::with_document(self.store.catalog(), doc);
        ev.config.use_skip_index = self.config.use_skip_index;
        ev.config.columnar_kernels = self.config.columnar_kernels;
        ev.config.use_twigstack = prep.use_twigstack;
        let rel = ev
            .eval(&prep.plan)
            .map_err(|e| Error::Eval(e.to_string()))?;
        Ok(Self::serialize(&rel))
    }

    /// Execute a prepared plan over a versioned [`DocumentHandle`] —
    /// the serving path's entry point — returning the typed
    /// [`QueryOutput`] whose `plan_fingerprint` equals
    /// [`PreparedQuery::fingerprint`].
    pub fn execute_prepared(
        &self,
        prep: &PreparedQuery,
        handle: &DocumentHandle,
    ) -> Result<QueryOutput> {
        let items = self.answer_prepared(prep, handle.document())?;
        Ok(QueryOutput {
            items: items.into_iter().map(|xml| QueryItem { xml }).collect(),
            plan_fingerprint: prep.fingerprint,
        })
    }

    /// Stream a prepared plan over a versioned [`DocumentHandle`]
    /// through the pipelined executor. Like [`Uload::query`] this
    /// supports batch-at-a-time pulls and first-class cancellation via
    /// [`QueryResults::close`] (or drop) — the hook the server's
    /// per-request `CANCEL` and its admission-budget enforcement reuse.
    pub fn stream_prepared<'e>(
        &'e self,
        prep: &PreparedQuery,
        handle: &'e DocumentHandle,
    ) -> Result<QueryResults<'e>> {
        self.stream_prepared_with(
            prep,
            handle.document(),
            handle.version().0,
            self.config.profiling,
        )
    }

    /// [`Uload::stream_prepared`] with per-operator metering forced on
    /// regardless of [`EngineConfig::profiling`], so
    /// [`QueryResults::stream_profile`] reports real kernel counters.
    /// The server's telemetry path uses this to feed per-session and
    /// registry `ExecMetrics` totals; the `Meter` kernels make the
    /// metered run cost the same as the plain one (held to ≤5% by the
    /// `telemetry_overhead` bench).
    pub fn stream_prepared_metered<'e>(
        &'e self,
        prep: &PreparedQuery,
        handle: &'e DocumentHandle,
    ) -> Result<QueryResults<'e>> {
        self.stream_prepared_with(prep, handle.document(), handle.version().0, true)
    }

    fn stream_prepared_doc<'e>(
        &'e self,
        prep: &PreparedQuery,
        doc: &'e Document,
    ) -> Result<QueryResults<'e>> {
        self.stream_prepared_with(prep, doc, 0, self.config.profiling)
    }

    fn stream_prepared_with<'e>(
        &'e self,
        prep: &PreparedQuery,
        doc: &'e Document,
        doc_version: u64,
        profiling: bool,
    ) -> Result<QueryResults<'e>> {
        let mut ccfg = CursorConfig {
            batch_size: self.config.batch_size,
            profiling,
            ..CursorConfig::default()
        };
        ccfg.eval.use_skip_index = self.config.use_skip_index;
        ccfg.eval.columnar_kernels = self.config.columnar_kernels;
        ccfg.eval.use_twigstack = prep.use_twigstack;
        ccfg.arm_hint = self.arm_hint(prep, doc_version);
        if !prep.breakers.is_empty() {
            tracing::debug!(
                target: "uload::eval",
                "plan has {} pipeline breaker(s): {:?}",
                prep.breakers.len(),
                prep.breakers
            );
        }
        let exec = algebra::build_cursor(&prep.plan, self.store.catalog(), Some(doc), &ccfg)
            .map_err(|e| Error::Eval(e.to_string()))?;
        Ok(QueryResults {
            exec,
            pending: VecDeque::new(),
            rewritings: prep.rewritings.clone(),
            breakers: prep.breakers.clone(),
            batches: 0,
            rows: 0,
            closed: false,
        })
    }

    /// Answer a query as a *stream*: rewrite and plan up front, then
    /// return a [`QueryResults`] cursor that pulls result batches on
    /// demand through the pipelined executor. Nothing beyond the plan's
    /// pipeline breakers (and join build sides) is materialized, and
    /// dropping or [`QueryResults::close`]-ing the stream early cancels
    /// the whole cursor tree — the LIMIT-style early-termination path.
    ///
    /// The streamed rows are exactly [`Uload::answer`]'s rows, in the
    /// same order (the executor runs the same physical kernels).
    pub fn query<'e>(&'e self, query: &str, doc: &'e Document) -> Result<QueryResults<'e>> {
        let span = tracing::debug_span!(target: "uload::query", "query");
        let _g = span.enter();
        let prep = self.prepare_query(query)?;
        self.stream_prepared_doc(&prep, doc)
    }

    /// `EXPLAIN ANALYZE`: answer the query while measuring every phase
    /// and operator, pairing the cost model's estimates with actuals.
    ///
    /// When the plan has a holistic twig arm, **both** arms are executed
    /// (chosen and alternative) so the profile can report how the cost
    /// model's choice actually fared. Profiled operator times include
    /// re-scanning materialized child outputs — indicative, not exact.
    pub fn answer_profiled(
        &self,
        query: &str,
        doc: &Document,
    ) -> Result<(Vec<String>, Vec<Rewriting>, QueryProfile)> {
        let total = Instant::now();
        let span = tracing::debug_span!(target: "uload::query", "answer_profiled");
        let _g = span.enter();
        let p = self.prepare(query)?;
        let catalog = self.store.catalog();

        let t = Instant::now();
        let fused = algebra::fuse_struct_joins(&p.base_plan);
        let has_twig_arm = fused != p.base_plan;
        let fuse_ns = t.elapsed().as_nanos() as u64;

        // the arm the engine would run unprofiled, and the road not taken
        let (chosen_plan, chosen_is_twig) = if self.config.use_twigstack {
            (fused.clone(), true)
        } else {
            (p.base_plan.clone(), false)
        };
        let evaluator = |twig_on: bool| {
            let mut ev = Evaluator::with_document(catalog, doc);
            ev.config.use_twigstack = twig_on;
            ev.config.use_skip_index = self.config.use_skip_index;
            ev.config.columnar_kernels = self.config.columnar_kernels;
            ev
        };

        let t = Instant::now();
        let (rel, op_profile) = evaluator(chosen_is_twig)
            .eval_profiled(&chosen_plan)
            .map_err(|e| Error::Eval(e.to_string()))?;
        let eval_ns = t.elapsed().as_nanos() as u64;

        // arm telemetry: time both arms with the *plain* evaluator so the
        // comparison is free of profiling overhead
        let arm = if has_twig_arm {
            let (alt_plan, alt_is_twig) = if chosen_is_twig {
                (&p.base_plan, false)
            } else {
                (&fused, true)
            };
            let t = Instant::now();
            evaluator(chosen_is_twig)
                .eval(&chosen_plan)
                .map_err(|e| Error::Eval(e.to_string()))?;
            let chosen_ns = t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            evaluator(alt_is_twig)
                .eval(alt_plan)
                .map_err(|e| Error::Eval(e.to_string()))?;
            let alt_ns = t.elapsed().as_nanos() as u64;
            let mispredicted = alt_ns > 0 && chosen_ns >= 2 * alt_ns;
            let (chosen_name, alt_name) = if chosen_is_twig {
                ("twig", "cascade")
            } else {
                ("cascade", "twig")
            };
            if mispredicted {
                tracing::warn!(
                    target: "uload::cost",
                    "cost model chose the {chosen_name} arm but it ran {:.1}× slower \
                     than the {alt_name} arm ({chosen_ns}ns vs {alt_ns}ns)",
                    chosen_ns as f64 / alt_ns as f64
                );
            }
            Some(ArmTelemetry {
                chosen: chosen_name.to_string(),
                est_chosen: self
                    .cost_model(0, plan_fingerprint(&chosen_plan))
                    .cost(&chosen_plan),
                est_alternative: self
                    .cost_model(0, plan_fingerprint(alt_plan))
                    .cost(alt_plan),
                actual_chosen_ns: chosen_ns,
                actual_alternative_ns: alt_ns,
                mispredicted,
            })
        } else {
            None
        };

        // drain a profiling streamed execution of the chosen plan so the
        // profile also reports per-operator batches, rows and the
        // pipelined executor's peak-resident-tuples high-water mark
        let streamed = {
            let mut ccfg = CursorConfig {
                batch_size: self.config.batch_size,
                profiling: true,
                ..CursorConfig::default()
            };
            ccfg.eval.use_twigstack = chosen_is_twig;
            ccfg.eval.use_skip_index = self.config.use_skip_index;
            ccfg.eval.columnar_kernels = self.config.columnar_kernels;
            let breakers = algebra::pipeline_breakers(&chosen_plan);
            let mut exec = algebra::build_cursor(&chosen_plan, catalog, Some(doc), &ccfg)
                .map_err(|e| Error::Eval(e.to_string()))?;
            let (mut batches, mut rows) = (0u64, 0u64);
            while let Some(b) = exec.next_batch().map_err(|e| Error::Eval(e.to_string()))? {
                batches += 1;
                rows += b.len() as u64;
            }
            exec.close();
            stream_profile_of(&exec, batches, rows, breakers)
        };

        let chosen_fp = plan_fingerprint(&chosen_plan);
        let plan_profile =
            pair_estimates(&chosen_plan, &op_profile, &self.cost_model(0, chosen_fp));
        let profile = QueryProfile {
            query: query.to_string(),
            phases: vec![
                ("parse".to_string(), p.parse_ns),
                ("extract".to_string(), p.extract_ns),
                ("rewrite".to_string(), p.rewrite_ns),
                ("plan".to_string(), p.plan_ns + fuse_ns),
                ("eval".to_string(), eval_ns),
            ],
            plan: plan_profile,
            cache: self.cache_stats().map(|s| CacheCounters {
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                verdict_entries: s.verdict_entries,
                model_entries: s.model_entries,
                annotation_entries: s.annotation_entries,
            }),
            arm,
            streamed: Some(streamed),
            total_ns: total.elapsed().as_nanos() as u64,
        };
        self.stats.record_profile(0, chosen_fp, &profile);
        *self.last_profile.lock() = Some(profile.clone());
        Ok((Self::serialize(&rel), p.used, profile))
    }

    /// `EXPLAIN ANALYZE` an already-prepared plan over a versioned
    /// [`DocumentHandle`] — the serving path's profiling entry point
    /// (the server uses it to capture slow queries). Runs only the
    /// chosen arm (the plan was fused or not at prepare time, so there
    /// is no alternative to time), pairs the cost model's estimates
    /// with the measured cardinalities, records the result in the
    /// [`StatsStore`] under the handle's real document version, and
    /// stashes it for [`Uload::last_profile`].
    pub fn profile_prepared(
        &self,
        prep: &PreparedQuery,
        handle: &DocumentHandle,
    ) -> Result<QueryProfile> {
        let total = Instant::now();
        let span = tracing::debug_span!(target: "uload::query", "profile_prepared");
        let _g = span.enter();
        let catalog = self.store.catalog();
        let mut ev = Evaluator::with_document(catalog, handle.document());
        ev.config.use_twigstack = prep.use_twigstack;
        ev.config.use_skip_index = self.config.use_skip_index;
        ev.config.columnar_kernels = self.config.columnar_kernels;
        let t = Instant::now();
        let (_rel, op_profile) = ev
            .eval_profiled(&prep.plan)
            .map_err(|e| Error::Eval(e.to_string()))?;
        let eval_ns = t.elapsed().as_nanos() as u64;
        let plan_profile = pair_estimates(
            &prep.plan,
            &op_profile,
            &self.cost_model(handle.version().0, prep.fingerprint),
        );
        let profile = QueryProfile {
            query: prep.query.clone(),
            phases: vec![("eval".to_string(), eval_ns)],
            plan: plan_profile,
            cache: self.cache_stats().map(|s| CacheCounters {
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                verdict_entries: s.verdict_entries,
                model_entries: s.model_entries,
                annotation_entries: s.annotation_entries,
            }),
            arm: None,
            streamed: None,
            total_ns: total.elapsed().as_nanos() as u64,
        };
        self.stats
            .record_profile(handle.version().0, prep.fingerprint, &profile);
        *self.last_profile.lock() = Some(profile.clone());
        Ok(profile)
    }

    /// The profile of the most recent profiled answer on this engine
    /// (`None` until one has run).
    pub fn last_profile(&self) -> Option<QueryProfile> {
        self.last_profile.lock().clone()
    }
}

/// Associated façade helpers: the blessed single entry surface for the
/// parsing/translation steps that need no engine instance. (These used
/// to be loose free functions on the `uload` crate root; the root keeps
/// thin delegating wrappers for the widely-used ones.)
impl Uload {
    /// Parse an XML document.
    pub fn parse_document(text: &str) -> Result<Document> {
        xmltree::parse_document(text).map_err(|e| Error::Parse(e.to_string()))
    }

    /// Parse a textual XAM pattern.
    pub fn parse_xam(text: &str) -> Result<Xam> {
        xam_core::parse_xam(text).map_err(|e| Error::Parse(e.to_string()))
    }

    /// Parse an XQuery into its AST (for pattern extraction).
    pub fn parse_query(text: &str) -> Result<xquery::Query> {
        xquery::parse_query(text).map_err(|e| Error::Parse(e.to_string()))
    }

    /// Extract the maximal XAM patterns of a parsed XQuery (Chapter 3).
    pub fn extract_patterns(q: &xquery::Query) -> Result<xquery::ExtractedQuery> {
        xquery::extract_patterns(q).map_err(|e| Error::Translate(e.to_string()))
    }

    /// Evaluate a XAM directly over a document (no views involved).
    pub fn evaluate_xam(xam: &Xam, doc: &Document) -> Result<Relation> {
        xam_core::evaluate(xam, doc).map_err(|e| Error::Eval(e.to_string()))
    }

    /// Execute an XQuery directly over a document (no views involved),
    /// returning the typed [`QueryOutput`].
    pub fn execute_direct(text: &str, doc: &Document) -> Result<QueryOutput> {
        let (items, plan) = xquery::execute_query_with_plan(text, doc)
            .map_err(|e| Error::Translate(e.to_string()))?;
        Ok(QueryOutput {
            items: items.into_iter().map(|xml| QueryItem { xml }).collect(),
            plan_fingerprint: plan_fingerprint(&plan),
        })
    }
}

/// Hash of a logical plan's canonical textual form — stable across runs
/// of the same engine version, so two queries that plan identically
/// (modulo whitespace, variable spelling or any rewrite that converges
/// on the same plan) share one fingerprint. This is the key of the
/// server's prepared-plan registry and (paired with a
/// [`storage::DocumentVersion`]) of its result cache.
pub fn plan_fingerprint(plan: &LogicalPlan) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    plan.to_string().hash(&mut h);
    h.finish()
}

/// A query prepared once and executable many times: the executable plan
/// (already fused under the engine's twig knob), the rewritings that
/// produced it, and the plan [`fingerprint`](PreparedQuery::fingerprint).
/// Plain data — `Send + Sync`, shareable across server sessions.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    query: String,
    plan: LogicalPlan,
    use_twigstack: bool,
    rewritings: Vec<Rewriting>,
    breakers: Vec<String>,
    fingerprint: u64,
    epoch: u64,
    arm: String,
    arm_source: String,
}

impl PreparedQuery {
    /// The original query text.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// The plan epoch: `0` for the initial preparation, bumped by every
    /// [`Uload::replan_prepared`]. The server surfaces it so clients can
    /// see a shared prepared plan was adaptively swapped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Which arm the plan runs: `"twig"`, `"cascade"`, or `"single"`
    /// when the query has no holistic alternative.
    pub fn arm(&self) -> &str {
        &self.arm
    }

    /// What chose the arm: `"knob"` (the `use_twigstack` config),
    /// `"feedback-arm"` (a measured wrong-arm outcome flipped it), or
    /// `"feedback-cost"` (blended-cost comparison under feedback).
    pub fn arm_source(&self) -> &str {
        &self.arm_source
    }

    /// The executable plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The per-pattern rewritings the planner chose.
    pub fn rewritings(&self) -> &[Rewriting] {
        &self.rewritings
    }

    /// Hash of the executable plan's canonical form (see
    /// [`plan_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Pre-order labels of the plan's pipeline breakers.
    pub fn breakers(&self) -> &[String] {
        &self.breakers
    }
}

/// Typed output of [`Uload::execute_prepared`] / [`Uload::execute_direct`]:
/// one serialized item per result row, plus a fingerprint of the logical
/// plan that produced them (stable across runs of the same engine
/// version, so regressions in planning show up as a fingerprint change
/// even when the rows agree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The query's result items, in result order.
    pub items: Vec<QueryItem>,
    /// Hash of the executed logical plan's canonical textual form.
    pub plan_fingerprint: u64,
}

/// One serialized result item of a [`QueryOutput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryItem {
    /// The item serialized as XML.
    pub xml: String,
}

impl QueryOutput {
    /// The serialized items as plain strings (the pre-0.4 shape).
    pub fn into_strings(self) -> Vec<String> {
        self.items.into_iter().map(|i| i.xml).collect()
    }
}

/// A streaming result set from [`Uload::query`].
///
/// Iterates serialized XML items (`Iterator<Item = Result<String>>`),
/// pulling tuple batches through the pipelined executor only as they
/// are consumed. For batch-at-a-time consumers, [`QueryResults::next_batch`]
/// exposes the raw [`TupleBatch`]es instead (the two drain the same
/// stream — don't interleave them unless that's what you mean).
///
/// Stopping early is first-class: [`QueryResults::close`] (or simply
/// dropping the value) cancels the whole cursor tree, so a LIMIT-style
/// consumer never pays for the rows it doesn't look at.
pub struct QueryResults<'e> {
    exec: StreamExec<'e>,
    pending: VecDeque<String>,
    rewritings: Vec<Rewriting>,
    breakers: Vec<String>,
    batches: u64,
    rows: u64,
    closed: bool,
}

impl QueryResults<'_> {
    /// Pull the next raw batch of result tuples (`None` once exhausted
    /// or after [`QueryResults::close`]).
    pub fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.closed {
            return Ok(None);
        }
        match self.exec.next_batch() {
            Ok(Some(b)) => {
                self.batches += 1;
                self.rows += b.len() as u64;
                Ok(Some(b))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(Error::Eval(e.to_string())),
        }
    }

    /// Cancel the stream: close the whole cursor tree and release its
    /// resident state. Idempotent; also runs on drop.
    pub fn close(&mut self) {
        if !self.closed {
            self.exec.close();
            self.closed = true;
        }
    }

    /// The per-pattern rewritings the planner chose for this query.
    pub fn rewritings(&self) -> &[Rewriting] {
        &self.rewritings
    }

    /// Pre-order labels of the plan's pipeline breakers (operators that
    /// must buffer their whole input before emitting).
    pub fn breakers(&self) -> &[String] {
        &self.breakers
    }

    /// The configured target batch size.
    pub fn batch_size(&self) -> usize {
        self.exec.batch_size()
    }

    /// Rows pulled out of the stream so far.
    pub fn rows_emitted(&self) -> u64 {
        self.rows
    }

    /// High-water mark of tuples resident in the executor so far.
    pub fn peak_resident_tuples(&self) -> u64 {
        self.exec.peak_resident()
    }

    /// Snapshot of this stream's profile so far. Per-operator entries
    /// are populated only when the engine was built with
    /// [`EngineConfig::profiling`] on; the top-level batch/row/residency
    /// counters are always live.
    pub fn stream_profile(&self) -> StreamProfile {
        stream_profile_of(&self.exec, self.batches, self.rows, self.breakers.clone())
    }
}

impl Iterator for QueryResults<'_> {
    type Item = Result<String>;

    fn next(&mut self) -> Option<Result<String>> {
        loop {
            if let Some(s) = self.pending.pop_front() {
                return Some(Ok(s));
            }
            match self.next_batch() {
                Ok(Some(b)) => self.pending.extend(
                    b.tuples
                        .iter()
                        .map(|t| t.get(0).as_str().unwrap_or("").to_string()),
                ),
                Ok(None) => return None,
                Err(e) => {
                    self.close();
                    return Some(Err(e));
                }
            }
        }
    }
}

impl Drop for QueryResults<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Assemble a [`StreamProfile`] from a (possibly drained) executor.
fn stream_profile_of(
    exec: &StreamExec<'_>,
    batches: u64,
    rows: u64,
    breakers: Vec<String>,
) -> StreamProfile {
    let ops = exec
        .op_stats()
        .iter()
        .map(|o| OpStreamProfile {
            op: o.label.clone(),
            breaker: o.breaker,
            batches: o.cells.batches.get(),
            rows: o.cells.rows.get(),
            metrics: *o.cells.metrics.borrow(),
        })
        .collect();
    StreamProfile {
        batch_size: exec.batch_size() as u64,
        batches,
        rows,
        peak_resident_tuples: exec.peak_resident(),
        breakers,
        ops,
    }
}

/// Output of [`Uload::prepare`]: the combined (unfused) plan plus the
/// rewritings and phase wall times that produced it.
struct Prepared {
    base_plan: LogicalPlan,
    used: Vec<Rewriting>,
    parse_ns: u64,
    extract_ns: u64,
    rewrite_ns: u64,
    plan_ns: u64,
}

/// Outcome of the twig-vs-cascade arm choice (see `Uload::choose_arm`).
struct ArmChoice {
    plan: LogicalPlan,
    use_twigstack: bool,
    arm: &'static str,
    source: &'static str,
    chosen_cost: f64,
    alternative: Option<(&'static str, f64)>,
}

/// Typed output of [`Uload::explain`]: why the planner picked what it
/// picked. The plan tree carries a per-node [`crate::cost::Estimate`]
/// with feedback provenance ([`crate::cost::EstimateSource`] plus
/// confidence), and the arm fields report the chosen physical arm, the
/// evidence that chose it, and the road not taken.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query text.
    pub query: String,
    /// Fingerprint of the chosen executable plan.
    pub fingerprint: u64,
    /// The document version the estimates were keyed by.
    pub doc_version: u64,
    /// `"twig"`, `"cascade"`, or `"single"`.
    pub chosen_arm: String,
    /// `"knob"`, `"feedback-arm"`, or `"feedback-cost"`.
    pub arm_source: String,
    /// Estimated cost of the chosen arm (feedback-blended when available).
    pub chosen_cost: f64,
    /// The alternative arm, when the plan has one.
    pub alternative_arm: Option<String>,
    /// Its estimated cost.
    pub alternative_cost: Option<f64>,
    /// Plan nodes whose estimate consumed measured feedback.
    pub feedback_nodes: usize,
    /// The per-node estimate tree of the chosen plan.
    pub plan: EstimateNode,
}

impl Explain {
    /// Serialize for the wire (`EXPLAIN` protocol reply) and the CLI.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        let mut fields = vec![
            ("query", Json::Str(self.query.clone())),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("doc_version", Json::Num(self.doc_version as f64)),
            ("chosen_arm", Json::Str(self.chosen_arm.clone())),
            ("arm_source", Json::Str(self.arm_source.clone())),
            ("chosen_cost", Json::Num(self.chosen_cost)),
        ];
        if let (Some(arm), Some(cost)) = (&self.alternative_arm, self.alternative_cost) {
            fields.push(("alternative_arm", Json::Str(arm.clone())));
            fields.push(("alternative_cost", Json::Num(cost)));
        }
        fields.push(("feedback_nodes", Json::Num(self.feedback_nodes as f64)));
        fields.push(("plan", estimate_node_json(&self.plan)));
        Json::obj(fields)
    }
}

/// Depth-first search for the (outermost) `TwigJoin` node in an
/// estimate tree — the node whose leaf children the arm-switch hint
/// compares against observed stream cardinality.
fn find_twig_node(node: &EstimateNode) -> Option<&EstimateNode> {
    if node.op.starts_with("TwigJoin") {
        return Some(node);
    }
    node.children.iter().find_map(find_twig_node)
}

fn estimate_node_json(node: &EstimateNode) -> obs::Json {
    use obs::Json;
    Json::obj(vec![
        ("op", Json::Str(node.op.clone())),
        ("est_rows", Json::Num(node.estimate.rows)),
        ("est_cost", Json::Num(node.estimate.cost)),
        (
            "source",
            Json::Str(
                match node.estimate.source {
                    crate::cost::EstimateSource::Catalog => "catalog",
                    crate::cost::EstimateSource::Feedback => "feedback",
                }
                .to_string(),
            ),
        ),
        ("confidence", Json::Num(node.estimate.confidence)),
        (
            "children",
            Json::Arr(node.children.iter().map(estimate_node_json).collect()),
        ),
    ])
}

/// Walk the plan's estimate tree and its measured [`OpProfile`] in
/// lockstep (they share one shape by construction) and attach the cost
/// model's estimates. With a feedback-bearing model the estimates are
/// blended, so repeated profiled runs see their mispredict flags clear
/// as the store converges on the measured cardinalities.
fn pair_estimates(plan: &LogicalPlan, prof: &OpProfile, model: &CostModel<'_>) -> PlanNodeProfile {
    pair_nodes(&model.estimate_tree(plan), prof)
}

fn pair_nodes(est: &EstimateNode, prof: &OpProfile) -> PlanNodeProfile {
    let est_rows = est.estimate.rows;
    let est_cost = est.estimate.cost;
    let children = est
        .children
        .iter()
        .zip(prof.children.iter())
        .map(|(ce, cprof)| pair_nodes(ce, cprof))
        .collect();
    let actual = prof.out_rows as f64;
    let ratio = (actual.max(1.0) / est_rows.max(1.0)).max(est_rows.max(1.0) / actual.max(1.0));
    let mispredicted = ratio >= 4.0 && (prof.out_rows > 0 || est_rows >= 1.0);
    if mispredicted {
        tracing::debug!(
            target: "uload::cost",
            "cardinality estimate off {ratio:.1}× at {}: est {est_rows:.0} vs actual {}",
            prof.op,
            prof.out_rows
        );
    }
    PlanNodeProfile {
        op: prof.op.clone(),
        est_cost,
        est_rows,
        actual_rows: prof.out_rows,
        time_ns: prof.time_ns,
        metrics: prof.metrics,
        mispredicted,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::{bib_sample, xmark};

    fn engine(doc: &Document) -> Uload {
        Uload::builder().document(doc).build().unwrap()
    }

    #[test]
    fn answers_from_exact_views() {
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v_books", "//book[id:s]{ /n? title1:title[cont] }", &doc)
            .unwrap();
        // the query pattern extracted from this FLWR is exactly the view
        let (out, used) = u
            .answer(r#"for $b in doc("d")//book return <r>{$b/title}</r>"#, &doc)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("<title>Data on the Web</title>"), "{out:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].views_used, vec!["v_books"]);
    }

    #[test]
    fn fails_without_covering_views() {
        let doc = bib_sample();
        let u = engine(&doc);
        let err = u.answer(r#"doc("d")//book/title"#, &doc);
        assert!(matches!(err, Err(Error::NoRewriting { .. })));
    }

    #[test]
    fn builder_validates_config() {
        let doc = bib_sample();
        assert!(matches!(Uload::builder().build(), Err(Error::Config(_))));
        let bad = EngineConfig {
            threads: 5000,
            ..Default::default()
        };
        assert!(matches!(
            Uload::builder().document(&doc).config(bad).build(),
            Err(Error::Config(_))
        ));
        let ok = Uload::builder()
            .document(&doc)
            .threads(4)
            .cache_capacity(128)
            .build()
            .unwrap();
        assert_eq!(ok.config().threads, 4);
        assert!(ok.cache_stats().is_some());
        let uncached = Uload::builder()
            .document(&doc)
            .cache_capacity(0)
            .build()
            .unwrap();
        assert!(uncached.cache_stats().is_none());
    }

    #[test]
    fn parallel_cached_engine_answers_like_default() {
        let doc = bib_sample();
        let q = r#"for $b in doc("d")//book return <r>{$b/title}</r>"#;
        let view = "//book[id:s]{ /n? title1:title[cont] }";
        let mut base = engine(&doc);
        base.add_view_text("v", view, &doc).unwrap();
        let (out_base, _) = base.answer(q, &doc).unwrap();
        let mut par = Uload::builder()
            .document(&doc)
            .threads(4)
            .cache_capacity(1024)
            .build()
            .unwrap();
        par.add_view_text("v", view, &doc).unwrap();
        let (out_par, _) = par.answer(q, &doc).unwrap();
        assert_eq!(out_base, out_par);
        // the engine actually exercised its cache
        let stats = par.cache_stats().unwrap();
        assert!(stats.hits + stats.misses > 0, "{stats:?}");
    }

    #[test]
    fn twigstack_toggle_preserves_answers() {
        // same query, twig planning on vs. off: identical output
        let doc = xmark(2, 13);
        let q = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
        let view = "//item[id:s]{ /n? name1:name[val] }";
        let run = |on: bool| {
            let mut u = Uload::builder()
                .document(&doc)
                .use_twigstack(on)
                .build()
                .unwrap();
            u.add_view_text("V", view, &doc).unwrap();
            u.answer(q, &doc).unwrap().0
        };
        let with_twig = run(true);
        let without = run(false);
        assert!(!with_twig.is_empty());
        assert_eq!(with_twig, without);
    }

    #[test]
    fn access_method_knobs_preserve_answers() {
        // skip-index seeks and summary pruning are access-path choices:
        // flipping them must never change what a query returns
        let doc = xmark(2, 13);
        let q = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
        let view = "//item[id:s]{ /n? name1:name[val] }";
        let run = |skip: bool, prune: bool| {
            let mut u = Uload::builder()
                .document(&doc)
                .use_skip_index(skip)
                .use_summary_pruning(prune)
                .build()
                .unwrap();
            u.add_view_text("V", view, &doc).unwrap();
            let materialized = u.answer(q, &doc).unwrap().0;
            let streamed: Vec<String> = u.query(q, &doc).unwrap().map(|r| r.unwrap()).collect();
            assert_eq!(materialized, streamed, "skip={skip} prune={prune}");
            (materialized, u)
        };
        let (base, engine_on) = run(true, true);
        assert!(!base.is_empty());
        for (skip, prune) in [(false, true), (true, false), (false, false)] {
            assert_eq!(run(skip, prune).0, base, "skip={skip} prune={prune}");
        }
        // the engine's access-module hook follows the pruning knob
        let partitioned = engine_on.id_stream_index(&doc);
        assert!(!partitioned
            .partitions("item", xmltree::NodeKind::Element)
            .is_empty());
        let (_, engine_off) = run(true, false);
        assert!(engine_off
            .id_stream_index(&doc)
            .partitions("item", xmltree::NodeKind::Element)
            .is_empty());
    }

    #[test]
    fn motivating_example_section_5_2() {
        // the §5.2 scenario on an XMark-like document: V1 stores items
        // with nested optional listitems (IDs + content), V2 stores item
        // names; the query needs both plus keyword navigation
        let doc = xmark(2, 13);
        let mut u = engine(&doc);
        u.add_view_text("V2", "//item[id:s]{ /n? name1:name[val] }", &doc)
            .unwrap();
        let (out, used) = u
            .answer(
                r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#,
                &doc,
            )
            .unwrap();
        let items = doc.elements().filter(|&n| doc.label(n) == "item").count();
        assert_eq!(out.len(), items);
        assert_eq!(used[0].views_used, vec!["V2"]);
    }

    #[test]
    fn cost_ranking_prefers_cheaper_views() {
        // both views can answer //book/title: the exact small view
        // directly, the coarse //* view via selection+navigation over a
        // much larger relation — the cost model must rank the exact view
        // first
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v_exact", "//book[id:s]{ /title[val] }", &doc)
            .unwrap();
        u.add_view_text("v_everything", "//*[id:s,tag,val,cont]", &doc)
            .unwrap();
        let q = xam_core::parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let rws = u.rewrite_pattern(&q);
        assert!(rws.len() >= 2, "both views should offer rewritings");
        assert_eq!(
            rws[0].views_used,
            vec!["v_exact"],
            "cost ranking must prefer the small exact view"
        );
    }

    #[test]
    fn profiled_answers_match_plain_answers() {
        let doc = xmark(2, 13);
        let q = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
        let view = "//item[id:s]{ /n? name1:name[val] }";
        let mut plain = engine(&doc);
        plain.add_view_text("V", view, &doc).unwrap();
        let (out_plain, _) = plain.answer(q, &doc).unwrap();
        assert!(
            plain.last_profile().is_none(),
            "profiling is off by default"
        );

        let mut prof = Uload::builder()
            .document(&doc)
            .profiling(true)
            .build()
            .unwrap();
        prof.add_view_text("V", view, &doc).unwrap();
        let (out_prof, used, profile) = prof.answer_profiled(q, &doc).unwrap();
        assert_eq!(out_plain, out_prof);
        assert_eq!(used.len(), 1);

        // the profile mirrors the executed plan and carries sane numbers
        assert_eq!(profile.query, q);
        assert_eq!(profile.phases.len(), 5);
        assert!(profile.phases.iter().any(|(n, _)| n == "eval"));
        assert_eq!(profile.plan.actual_rows as usize, out_prof.len());
        assert!(profile.total_ns > 0);
        assert!(profile.cache.is_some(), "default engine has a cache");
        assert_eq!(prof.last_profile().as_ref(), Some(&profile));

        // answer() on a profiling engine takes the profiled path
        let (out_answer, _) = prof.answer(q, &doc).unwrap();
        assert_eq!(out_answer, out_plain);
    }

    #[test]
    fn profile_reports_both_twig_arms() {
        // join-only rewriting (navigation off) over two single-node views:
        // the plan is a structural join that fuses into a twig, so both
        // arms must be timed and the estimates attached
        let doc = xmark(2, 13);
        let q = r#"doc("X")//item/name"#;
        let run = |twig: bool| {
            let mut cfg = EngineConfig {
                profiling: true,
                use_twigstack: twig,
                ..Default::default()
            };
            cfg.rewrite.allow_navigation = false;
            let mut u = Uload::builder().document(&doc).config(cfg).build().unwrap();
            u.add_view_text("v_items", "//item[id:s]", &doc).unwrap();
            u.add_view_text("v_names", "//name[id:s,val]", &doc)
                .unwrap();
            u.answer_profiled(q, &doc).unwrap()
        };
        let (out_twig, used, prof_twig) = run(true);
        let (out_cascade, _, prof_cascade) = run(false);
        assert_eq!(out_twig, out_cascade);
        assert!(!out_twig.is_empty());
        assert_eq!(used[0].views_used, vec!["v_items", "v_names"]);
        for (profile, chosen) in [(&prof_twig, "twig"), (&prof_cascade, "cascade")] {
            let arm = profile
                .arm
                .as_ref()
                .expect("join plan must have a twig arm");
            assert_eq!(arm.chosen, chosen);
            assert!(arm.est_chosen > 0.0 && arm.est_alternative > 0.0);
            assert!(arm.actual_chosen_ns > 0 && arm.actual_alternative_ns > 0);
        }
        // the twig run's plan tree actually contains the fused operator
        fn has_twig(n: &super::PlanNodeProfile) -> bool {
            n.op.starts_with("TwigJoin") || n.children.iter().any(has_twig)
        }
        assert!(has_twig(&prof_twig.plan));
        assert!(!has_twig(&prof_cascade.plan));
        // estimates are attached on every node
        fn all_estimated(n: &super::PlanNodeProfile) -> bool {
            n.est_cost > 0.0 && n.children.iter().all(all_estimated)
        }
        assert!(all_estimated(&prof_twig.plan));
        // render and JSON both work end to end
        let text = prof_twig.render();
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("actual rows="));
        let json = prof_twig.to_json();
        assert!(obs::json::parse(&json.to_string_pretty()).is_ok());
    }

    #[test]
    fn dropping_a_view_changes_answerability() {
        let doc = bib_sample();
        let mut u = engine(&doc);
        u.add_view_text("v", "//author[id:s]{ /n? v:#text }", &doc)
            .ok(); // #text views unsupported: ignore result
                   // add a plain covering view
        u.add_view_text("v_auth", "//book[id:s]{ /n? a:author[cont] }", &doc)
            .unwrap();
        let q = r#"for $b in doc("d")//book return <r>{$b/author}</r>"#;
        assert!(u.answer(q, &doc).is_ok());
    }
}
