//! The end-to-end ULoad pipeline (Figure 5.1): XQuery in, XML out,
//! evaluated **entirely over materialized views**.
//!
//! [`Uload`] holds a document's summary and a [`storage::MaterializedStore`]
//! of XAM views. [`Uload::answer`] parses a query, extracts its maximal
//! patterns, rewrites each against the view set, substitutes the
//! rewritings into the combined plan (products, value-join post-filters,
//! tagging template) and executes. If some pattern has no rewriting, the
//! query is not answerable from the views and an error is returned —
//! rewritings are *total* (§5.1).

use algebra::{Evaluator, LogicalPlan};
use summary::Summary;
use xam_core::Xam;
use xmltree::Document;

use crate::rewrite::{rewrite_with_config, RewriteConfig, Rewriting};

/// Errors of the view-based pipeline.
#[derive(Debug)]
pub enum UloadError {
    Query(xquery::translate::QueryError),
    Eval(algebra::EvalError),
    /// Pattern at this index has no rewriting over the current views.
    NoRewriting(usize, String),
}

impl std::fmt::Display for UloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UloadError::Query(e) => write!(f, "{e}"),
            UloadError::Eval(e) => write!(f, "{e}"),
            UloadError::NoRewriting(i, p) => {
                write!(f, "query pattern #{i} cannot be rewritten over the views:\n{p}")
            }
        }
    }
}

impl std::error::Error for UloadError {}

/// The ULoad prototype: a summary-aware, view-backed XQuery processor.
pub struct Uload {
    summary: Summary,
    store: storage::MaterializedStore,
    config: RewriteConfig,
}

impl Uload {
    /// Set up over a document: computes its summary; views are added with
    /// [`Uload::add_view`].
    pub fn new(doc: &Document) -> Uload {
        Uload {
            summary: Summary::of_document(doc),
            store: storage::MaterializedStore::new(),
            config: RewriteConfig::default(),
        }
    }

    pub fn config_mut(&mut self) -> &mut RewriteConfig {
        &mut self.config
    }

    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    pub fn store(&self) -> &storage::MaterializedStore {
        &self.store
    }

    /// Materialize a view over the document and add it to the set — the
    /// only step needed to change the physical design (no optimizer code).
    pub fn add_view(
        &mut self,
        name: impl Into<String>,
        xam: Xam,
        doc: &Document,
    ) -> Result<(), algebra::EvalError> {
        self.store.add_view(name, xam, doc)
    }

    /// Parse a textual XAM and add it as a view.
    pub fn add_view_text(
        &mut self,
        name: impl Into<String>,
        text: &str,
        doc: &Document,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let xam = xam_core::parse_xam(text)?;
        self.add_view(name, xam, doc)?;
        Ok(())
    }

    /// Rewrite one pattern against the current views, ranked by the
    /// estimated cost over the *actual* view sizes (cheapest first); ties
    /// fall back to the paper's operator-count minimality.
    pub fn rewrite_pattern(&self, q: &Xam) -> Vec<Rewriting> {
        let (mut rws, _) = rewrite_with_config(
            q,
            self.store.definitions(),
            &self.summary,
            self.config,
        );
        rws.sort_by(|a, b| {
            let ca = crate::cost::plan_cost(&a.plan, self.store.catalog());
            let cb = crate::cost::plan_cost(&b.plan, self.store.catalog());
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.size.cmp(&b.size))
        });
        rws
    }

    /// Answer a query from the views: returns one serialized XML string
    /// per result, plus the per-pattern rewritings used.
    pub fn answer(
        &self,
        query: &str,
        doc: &Document,
    ) -> Result<(Vec<String>, Vec<Rewriting>), UloadError> {
        let q = xquery::parse_query(query)
            .map_err(|e| UloadError::Query(xquery::translate::QueryError::Parse(e)))?;
        let ex = xquery::extract_patterns(&q)
            .map_err(|e| UloadError::Query(xquery::translate::QueryError::Extract(e)))?;
        let mut plans: Vec<LogicalPlan> = Vec::new();
        let mut used: Vec<Rewriting> = Vec::new();
        for (i, pat) in ex.patterns.iter().enumerate() {
            let rws = self.rewrite_pattern(pat);
            match rws.into_iter().next() {
                Some(rw) => {
                    plans.push(rw.plan.clone());
                    used.push(rw);
                }
                None => return Err(UloadError::NoRewriting(i, pat.to_string())),
            }
        }
        let plan = xquery::translate::combine_plans(&ex, plans);
        let ev = Evaluator::with_document(self.store.catalog(), doc);
        let rel = ev.eval(&plan).map_err(UloadError::Eval)?;
        let out = rel
            .tuples
            .iter()
            .map(|t| t.get(0).as_str().unwrap_or("").to_string())
            .collect();
        Ok((out, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::{bib_sample, xmark};

    #[test]
    fn answers_from_exact_views() {
        let doc = bib_sample();
        let mut u = Uload::new(&doc);
        u.add_view_text("v_books", "//book[id:s]{ /n? title1:title[cont] }", &doc)
            .unwrap();
        // the query pattern extracted from this FLWR is exactly the view
        let (out, used) = u
            .answer(
                r#"for $b in doc("d")//book return <r>{$b/title}</r>"#,
                &doc,
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("<title>Data on the Web</title>"), "{out:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].views_used, vec!["v_books"]);
    }

    #[test]
    fn fails_without_covering_views() {
        let doc = bib_sample();
        let u = Uload::new(&doc);
        let err = u.answer(r#"doc("d")//book/title"#, &doc);
        assert!(matches!(err, Err(UloadError::NoRewriting(..))));
    }

    #[test]
    fn motivating_example_section_5_2() {
        // the §5.2 scenario on an XMark-like document: V1 stores items
        // with nested optional listitems (IDs + content), V2 stores item
        // names; the query needs both plus keyword navigation
        let doc = xmark(2, 13);
        let mut u = Uload::new(&doc);
        u.add_view_text(
            "V2",
            "//item[id:s]{ /n? name1:name[val] }",
            &doc,
        )
        .unwrap();
        let (out, used) = u
            .answer(
                r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#,
                &doc,
            )
            .unwrap();
        let items = doc.elements().filter(|&n| doc.label(n) == "item").count();
        assert_eq!(out.len(), items);
        assert_eq!(used[0].views_used, vec!["V2"]);
    }

    #[test]
    fn cost_ranking_prefers_cheaper_views() {
        // both views can answer //book/title: the exact small view
        // directly, the coarse //* view via selection+navigation over a
        // much larger relation — the cost model must rank the exact view
        // first
        let doc = bib_sample();
        let mut u = Uload::new(&doc);
        u.add_view_text("v_exact", "//book[id:s]{ /title[val] }", &doc)
            .unwrap();
        u.add_view_text("v_everything", "//*[id:s,tag,val,cont]", &doc)
            .unwrap();
        let q = xam_core::parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let rws = u.rewrite_pattern(&q);
        assert!(rws.len() >= 2, "both views should offer rewritings");
        assert_eq!(
            rws[0].views_used,
            vec!["v_exact"],
            "cost ranking must prefer the small exact view"
        );
    }

    #[test]
    fn dropping_a_view_changes_answerability() {
        let doc = bib_sample();
        let mut u = Uload::new(&doc);
        u.add_view_text("v", "//author[id:s]{ /n? v:#text }", &doc)
            .ok(); // #text views unsupported: ignore result
        // add a plain covering view
        u.add_view_text("v_auth", "//book[id:s]{ /n? a:author[cont] }", &doc)
            .unwrap();
        let q = r#"for $b in doc("d")//book return <r>{$b/author}</r>"#;
        assert!(u.answer(q, &doc).is_ok());
    }
}
