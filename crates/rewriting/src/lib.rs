//! # rewriting — view-based XQuery rewriting using XAM materialized views
//!
//! Chapter 5 of the paper, following the architecture of Figure 5.1:
//!
//! 1. the query is translated into an algebraic expression over **query
//!    tree patterns** `XQ_1 … XQ_n` (Chapter 3, the `xquery` crate);
//! 2. each query pattern is rewritten individually against the XAM view
//!    set under the summary constraints ([`rewrite()`]) — generate-and-test
//!    over view scans, compensations (value filters, navigation),
//!    structural / node-identity joins exploiting **ID properties**
//!    (structural IDs enable joins between views with no common node;
//!    `p`-class IDs let the plan *derive* ancestor identifiers), and
//!    unions;
//! 3. complete rewritings substitute a rewriting for each pattern in the
//!    query's combined plan ([`pipeline::Uload`]), producing a plan that
//!    runs **entirely over the materialized views** — total rewritings, no
//!    base store assumed.

pub mod cost;
pub mod pipeline;
pub mod planpat;
pub mod rewrite;

pub use cost::{CostModel, Estimate, EstimateNode, EstimateSource, ExecCaps};
pub use pipeline::{
    plan_fingerprint, EngineConfig, Explain, PreparedQuery, QueryItem, QueryOutput, QueryResults,
    Uload, UloadBuilder,
};
pub use planpat::PlanPattern;
pub use rewrite::{
    rewrite, rewrite_with_config, rewrite_with_engine, EngineOptions, RewriteConfig, RewriteStats,
    Rewriting,
};

#[cfg(test)]
mod tests {
    use super::*;
    use summary::Summary;
    use xam_core::parse_xam;
    use xmltree::generate::{bib_sample, xmark};

    fn views(defs: &[(&str, &str)]) -> Vec<(String, xam_core::Xam)> {
        defs.iter()
            .map(|(n, t)| (n.to_string(), parse_xam(t).unwrap()))
            .collect()
    }

    #[test]
    fn identity_rewriting_found() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let q = parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let vs = views(&[("v_exact", "//book[id:s]{ /title[val] }")]);
        let (rws, stats) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "identity rewriting must exist");
        assert_eq!(rws[0].views_used, vec!["v_exact"]);
        assert!(stats.candidates_verified >= 1);
    }

    #[test]
    fn no_rewriting_from_unrelated_view() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let q = parse_xam("//book[id:s]{ /title[val] }").unwrap();
        let vs = views(&[("v_auth", "//author[id:s,val]")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(rws.is_empty());
    }

    #[test]
    fn view_with_weaker_predicate_is_filtered() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        // query wants 1999 books; the view stores all years
        let q = parse_xam(r#"//book[id:s]{ /@year[val="1999"] }"#).unwrap();
        let vs = views(&[("v_years", "//book[id:s]{ /@year[val] }")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "selection compensation must apply");
        // execute and check
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rws[0].plan).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn navigation_compensation() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        // query wants book IDs + author values; the view stores only books
        let q = parse_xam("//book[id:s]{ /author[val] }").unwrap();
        let vs = views(&[("v_books", "//book[id:s]")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "navigation compensation must apply");
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rws[0].plan).unwrap();
        assert_eq!(rel.len(), 3); // (book, author) pairs
    }

    #[test]
    fn structural_join_of_two_views() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let q = parse_xam("//book[id:s]{ /title[id:s,val] }").unwrap();
        let vs = views(&[
            ("v_books", "//book[id:s]"),
            ("v_titles", "//title[id:s,val]"),
        ]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "structural join rewriting must exist");
        let multi = rws.iter().find(|r| r.views_used.len() == 2);
        assert!(multi.is_some(), "a two-view rewriting must be found");
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&multi.unwrap().plan).unwrap();
        assert_eq!(rel.len(), 2); // both books have titles
    }

    #[test]
    fn structural_ids_required_for_join() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let q = parse_xam("//book[id:i]{ /title[id:i,val] }").unwrap();
        // views with *simple* ids: structural join impossible; the only
        // hope is identity joins, but the views share no node
        let vs = views(&[
            ("v_books", "//book[id:i]"),
            ("v_titles", "//title[id:i,val]"),
        ]);
        let cfg = RewriteConfig {
            use_structural_ids: false,
            ..Default::default()
        };
        let (rws, _) = rewrite_with_config(&q, &vs, &s, cfg);
        // identity self-joins may legitimately appear, but no rewriting may
        // *combine* the two views: they share no node and cannot be
        // structurally joined without structural IDs
        let combines = rws.iter().any(|r| {
            r.views_used.contains(&"v_books".to_string())
                && r.views_used.contains(&"v_titles".to_string())
        });
        assert!(
            !combines,
            "no structural IDs → the two views cannot be combined"
        );
        // with structural IDs the combination exists
        let q_s = parse_xam("//book[id:s]{ /title[id:s,val] }").unwrap();
        let vs_s = views(&[
            ("v_books", "//book[id:s]"),
            ("v_titles", "//title[id:s,val]"),
        ]);
        let (rws2, _) = rewrite(&q_s, &vs_s, &s);
        assert!(rws2.iter().any(|r| {
            r.views_used.contains(&"v_books".to_string())
                && r.views_used.contains(&"v_titles".to_string())
        }));
    }

    #[test]
    fn identity_join_on_common_node() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let q = parse_xam("//book[id:i]{ /title[val], /author[val] }").unwrap();
        // both views store the *same* book node (simple IDs suffice for ⋈=)
        let vs = views(&[
            ("v_bt", "//book[id:i]{ /title[val] }"),
            ("v_ba", "//book[id:i]{ /author[val] }"),
        ]);
        let (rws, _) = rewrite(&q, &vs, &s);
        let multi = rws.iter().find(|r| r.views_used.len() == 2);
        assert!(multi.is_some(), "identity-join rewriting must exist");
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&multi.unwrap().plan).unwrap();
        assert_eq!(rel.len(), 3); // (title × author) per book: 2 + 1
    }

    #[test]
    fn union_rewriting() {
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        // query: all titles; views partition them by parent kind
        let q = parse_xam("//title[id:s,val]").unwrap();
        let vs = views(&[
            ("v_bt", "//book{ /title[id:s,val] }"),
            ("v_pt", "//phdthesis{ /title[id:s,val] }"),
        ]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "union rewriting must exist");
        let rw = &rws[0];
        assert_eq!(rw.views_used.len(), 2);
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rw.plan).unwrap();
        assert_eq!(rel.len(), 3); // all three titles
    }

    #[test]
    fn summary_bridges_path_gaps() {
        // view stores //listitem; query asks //parlist//listitem//keyword:
        // the summary knows every listitem sits under a parlist, so the
        // view plus navigation suffices (without the summary, the //parlist
        // ancestor could not be dropped)
        let doc = xmark(2, 9);
        let s = Summary::of_document(&doc);
        let q = parse_xam("//parlist{ //listitem[id:s]{ //keyword[val] } }").unwrap();
        let vs = views(&[("v_li", "//listitem[id:s]")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(
            !rws.is_empty(),
            "summary constraints must license the rewriting"
        );
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rws[0].plan).unwrap();
        // ground truth via direct evaluation
        let direct = xam_core::evaluate(&q, &doc).unwrap();
        assert_eq!(rel.len(), direct.len());
    }

    #[test]
    fn nested_view_exact_match() {
        let doc = xmark(2, 9);
        let s = Summary::of_document(&doc);
        let q = parse_xam("//item[id:s]{ /name[val], //n? listitem[id:s,cont] }").unwrap();
        let vs = views(&[("v1", "//item[id:s]{ /name[val], //n? listitem[id:s,cont] }")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(!rws.is_empty(), "exact nested view must be used");
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rws[0].plan).unwrap();
        let direct = xam_core::evaluate(&q, &doc).unwrap();
        assert_eq!(rel.len(), direct.len());
        // and the schemas agree with the pattern's own names
        assert_eq!(rel.schema, direct.schema);
    }

    #[test]
    fn parent_id_derivation_from_dewey_ids() {
        // the view stores only parlist IDs (p-class); the query needs the
        // *description* IDs — derivable because description/parlist is a
        // parent-child edge and the IDs are navigational (§4.4)
        let doc = xmark(2, 3);
        let s = Summary::of_document(&doc);
        let q = parse_xam("//description[id:p]{ /parlist }").unwrap();
        let vs = views(&[("v_parlists", "//description{ /parlist[id:p] }")]);
        let (rws, _) = rewrite(&q, &vs, &s);
        assert!(
            !rws.is_empty(),
            "parent-ID derivation must enable the rewriting"
        );
        assert!(
            format!("{}", rws[0].plan).contains("parent^1"),
            "{}",
            rws[0].plan
        );
        // and it executes correctly
        let mut store = storage::MaterializedStore::new();
        for (n, v) in &vs {
            store.add_view(n.clone(), v.clone(), &doc).unwrap();
        }
        let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
        let rel = ev.eval(&rws[0].plan).unwrap();
        let direct = xam_core::evaluate(&q, &doc).unwrap();
        assert_eq!(rel.len(), direct.len());
        // with s-class IDs in the view, derivation is illegal and no
        // rewriting exists
        let vs2 = views(&[("v_parlists", "//description{ /parlist[id:s] }")]);
        let q2 = parse_xam("//description[id:s]{ /parlist }").unwrap();
        let (rws2, _) = rewrite(&q2, &vs2, &s);
        assert!(
            rws2.is_empty(),
            "s-class IDs must not allow parent derivation"
        );
    }

    #[test]
    fn rewriting_results_match_direct_evaluation() {
        // end-to-end correctness sweep over several query/view pairs
        let doc = bib_sample();
        let s = Summary::of_document(&doc);
        let cases: Vec<(&str, Vec<(&str, &str)>)> = vec![
            (
                "//book[id:s]{ /author[id:s,val] }",
                vec![("v", "//book[id:s]{ /author[id:s,val] }")],
            ),
            ("//book[id:s]", vec![("v", "//book[id:s,cont]")]),
            (
                "//author[id:s,val]",
                vec![("v", "//library{ //author[id:s,val] }")],
            ),
        ];
        for (qt, vdefs) in cases {
            let q = parse_xam(qt).unwrap();
            let vs = views(&vdefs);
            let (rws, _) = rewrite(&q, &vs, &s);
            assert!(!rws.is_empty(), "no rewriting for {qt}");
            let mut store = storage::MaterializedStore::new();
            for (n, v) in &vs {
                store.add_view(n.clone(), v.clone(), &doc).unwrap();
            }
            let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
            let rel = ev.eval(&rws[0].plan).unwrap();
            let direct = xam_core::evaluate(&q, &doc).unwrap();
            assert_eq!(rel.len(), direct.len(), "cardinality for {qt}");
        }
    }
}
