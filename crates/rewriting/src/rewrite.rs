//! Summary-based rewriting of query patterns using XAM views (§5.3–5.5).
//!
//! Generate-and-test, as in the paper: candidate plans are assembled from
//! view scans — single views with *compensations* (value selections,
//! navigations for uncovered query nodes), multi-view **structural joins**
//! (requiring structural IDs), **node-identity joins**, ancestor-ID
//! **derivation** for `p`-class IDs, and **unions** — and every candidate
//! is verified `S`-equivalent to the query via the Chapter 4 containment
//! procedure. Verification is exact, so the search may be (and is)
//! heuristically bounded without ever returning a wrong rewriting.
//!
//! Nested query patterns are rewritten by exact-shape view matches
//! (the §5.4 "extending rewriting" fragment); conjunctive/optional
//! patterns get the full search.

use std::collections::HashMap;
use std::sync::Arc;

use algebra::{LogicalPlan, NavMode, Path, Schema};
use containment::{contain, CanonicalCache, ContainOptions};
use summary::Summary;
use xam_core::ast::{Formula, Xam, XamNodeId};
use xam_core::semantics::{output_columns, StoredAttr};

use crate::planpat::PlanPattern;

/// Execution context of the rewriting search: worker threads and the
/// shared containment cache. Distinct from [`RewriteConfig`] (which
/// bounds *what* is searched) — this only controls *how fast* and
/// never changes the produced rewriting set.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions<'a> {
    /// Worker threads for candidate verification. `0`/`1` = sequential.
    pub threads: usize,
    /// Shared canonical-model/verdict cache; `None` disables caching.
    pub cache: Option<&'a CanonicalCache>,
    /// Amortized fingerprint of the summary (see
    /// [`containment::cache::summary_fingerprint`]).
    pub summary_fp: Option<u64>,
}

impl<'a> EngineOptions<'a> {
    fn contain_opts(&self, threads: usize) -> ContainOptions<'a> {
        ContainOptions {
            threads,
            cache: self.cache,
            summary_fp: self.summary_fp,
            aligned: None,
        }
    }
}

/// Search knobs.
#[derive(Debug, Clone, Copy)]
pub struct RewriteConfig {
    /// Maximum number of views joined in one rewriting.
    pub max_views: usize,
    /// Allow structural joins between views (needs `s`/`p` IDs). Turning
    /// this off reproduces the paper's point that some rewritings only
    /// exist thanks to structural identifiers (§5.2).
    pub use_structural_ids: bool,
    /// Allow union rewritings.
    pub allow_unions: bool,
    /// Allow navigation compensation: uncovered query nodes are reached
    /// by navigating the document from a stored structural ID. Off, views
    /// can only be combined by joins — the pure "answer from storage
    /// alone" regime, useful for ablations and for forcing join-shaped
    /// (twig-fusable) plans in `EXPLAIN ANALYZE` demonstrations.
    pub allow_navigation: bool,
    /// Cap on candidate mappings per view (search bound; verification
    /// keeps the result sound regardless).
    pub max_mappings: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            max_views: 3,
            use_structural_ids: true,
            allow_unions: true,
            allow_navigation: true,
            max_mappings: 48,
        }
    }
}

/// A verified rewriting.
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// Executable plan over view scans, projected and cast so its output
    /// schema equals the query pattern's output schema.
    pub plan: LogicalPlan,
    /// The `S`-equivalent pattern of the (unprojected) plan.
    pub pattern: Xam,
    pub views_used: Vec<String>,
    /// Plan size (operator count) — the minimality metric of §5.3.
    pub size: usize,
}

/// Statistics of one rewriting run (for the §5.6 experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteStats {
    pub candidates_built: usize,
    pub candidates_verified: usize,
    pub rewritings_found: usize,
}

/// A candidate ready for verification: the plan pattern, its query
/// mapping, the verification pattern with its return nodes, and the
/// dedup key derived from the latter two.
type PreparedCandidate = (
    PlanPattern,
    HashMap<XamNodeId, XamNodeId>,
    Xam,
    Vec<XamNodeId>,
    String,
);

/// Rewrite query pattern `q` using the named views, returning verified
/// rewritings sorted by plan size (smallest first).
pub fn rewrite(q: &Xam, views: &[(String, Xam)], s: &Summary) -> (Vec<Rewriting>, RewriteStats) {
    rewrite_with_config(q, views, s, RewriteConfig::default())
}

/// As [`rewrite`] with explicit configuration.
pub fn rewrite_with_config(
    q: &Xam,
    views: &[(String, Xam)],
    s: &Summary,
    cfg: RewriteConfig,
) -> (Vec<Rewriting>, RewriteStats) {
    rewrite_with_engine(q, views, s, cfg, &EngineOptions::default())
}

/// As [`rewrite_with_config`] with an execution context: candidate
/// verification fans out over [`EngineOptions::threads`] scoped workers
/// and memoizes through the shared cache. The produced rewriting set is
/// identical to the sequential run — candidates are generated, deduped
/// and merged in one stable order; only the verification wall-clock
/// changes.
pub fn rewrite_with_engine(
    q: &Xam,
    views: &[(String, Xam)],
    s: &Summary,
    cfg: RewriteConfig,
    eng: &EngineOptions,
) -> (Vec<Rewriting>, RewriteStats) {
    let mut stats = RewriteStats::default();
    let q_rets = q.return_nodes();
    let q_has_nesting = q.pattern_nodes().any(|n| q.node(n).edge.sem.is_nested());

    let mut verified: Vec<(Rewriting, Xam, Vec<XamNodeId>)> = Vec::new();
    let mut contained_only: Vec<(PlanPattern, HashMap<XamNodeId, XamNodeId>)> = Vec::new();

    let mut prefix_counter = 0usize;
    let candidates = if q_has_nesting {
        let mut c = nested_exact_candidates(q, views, s, &mut stats);
        if cfg.max_views >= 2 {
            c.extend(nested_pair_candidates(
                q,
                views,
                &mut stats,
                &mut prefix_counter,
            ));
        }
        c
    } else {
        flat_candidates(q, views, s, cfg, eng, &mut stats, &mut prefix_counter)
    };

    // distinct mappings frequently induce the *same* verification pattern
    // (symmetric view orders, interchangeable mapping variants): the
    // expensive containment checks run once per distinct pattern, in
    // first-appearance order — workers return indexed verdicts, so the
    // merge below is independent of scheduling
    let prepared: Vec<PreparedCandidate> = candidates
        .into_iter()
        .map(|(pp, qmap)| {
            let (vp, p_rets) = verification_pattern(q, &pp, &qmap);
            let key = format!("{vp}|{p_rets:?}");
            (pp, qmap, vp, p_rets, key)
        })
        .collect();
    let mut unique: Vec<(&Xam, &[XamNodeId])> = Vec::new();
    let mut key_slot: HashMap<&str, usize> = HashMap::new();
    for (_, _, vp, p_rets, key) in &prepared {
        key_slot.entry(key.as_str()).or_insert_with(|| {
            unique.push((vp, p_rets));
            unique.len() - 1
        });
    }
    stats.candidates_verified += unique.len();
    let verdicts = verify_candidates(q, &q_rets, s, &unique, eng);

    for (pp, qmap, vp, p_rets, key) in &prepared {
        let (fwd_ok, bwd_ok) = verdicts[key_slot[key.as_str()]];
        if !fwd_ok {
            continue;
        }
        if bwd_ok {
            if let Some(rw) = finalize(q, pp.clone(), qmap) {
                verified.push((rw, vp.clone(), p_rets.clone()));
            }
        } else if cfg.allow_unions {
            contained_only.push((pp.clone(), qmap.clone()));
        }
    }

    // union rewritings: candidates each ⊆ q whose union covers q
    if verified.is_empty() && cfg.allow_unions && contained_only.len() >= 2 {
        if let Some(rw) = try_union(q, s, &contained_only, &mut stats) {
            verified.push((rw, q.clone(), q_rets.clone()));
        }
    }

    let mut out: Vec<Rewriting> = verified.into_iter().map(|(r, _, _)| r).collect();
    out.sort_by_key(|r| r.size);
    // drop redundant rewritings (same view multiset and size)
    out.dedup_by(|a, b| a.views_used == b.views_used && a.size == b.size);
    stats.rewritings_found = out.len();
    (out, stats)
}

/// Verify the deduped candidates: forward (`vp ⊆ q`, required) and
/// backward (`q ⊆ vp`, only checked when forward holds) containment,
/// aligned on the query's return order. With more than one candidate and
/// `threads > 1` the work is dealt round-robin to scoped workers; each
/// returns `(index, verdict)` pairs, so assembly is order-independent.
/// A lone candidate instead parallelizes *inside* the containment check.
fn verify_candidates(
    q: &Xam,
    q_rets: &[XamNodeId],
    s: &Summary,
    unique: &[(&Xam, &[XamNodeId])],
    eng: &EngineOptions,
) -> Vec<(bool, bool)> {
    let one = |vp: &Xam, p_rets: &[XamNodeId], inner_threads: usize| -> (bool, bool) {
        let opts = eng.contain_opts(inner_threads);
        let fwd = contain(vp, q, s, &opts.with_aligned(p_rets, q_rets)).contained;
        let bwd = fwd && contain(q, vp, s, &opts.with_aligned(q_rets, p_rets)).contained;
        (fwd, bwd)
    };
    if eng.threads <= 1 || unique.len() <= 1 {
        return unique
            .iter()
            .map(|(vp, p_rets)| one(vp, p_rets, eng.threads))
            .collect();
    }
    let workers = eng.threads.min(unique.len());
    let mut verdicts = vec![(false, false); unique.len()];
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let one = &one;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (i, (vp, p_rets)) in unique.iter().enumerate().skip(w).step_by(workers) {
                        mine.push((i, one(vp, p_rets, 1)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("verification worker panicked") {
                verdicts[i] = v;
            }
        }
    });
    verdicts
}

// --------------------------------------------------------------------
// candidate generation: flat patterns

fn flat_candidates(
    q: &Xam,
    views: &[(String, Xam)],
    s: &Summary,
    cfg: RewriteConfig,
    eng: &EngineOptions,
    stats: &mut RewriteStats,
    prefix_counter: &mut usize,
) -> Vec<(PlanPattern, HashMap<XamNodeId, XamNodeId>)> {
    let mut out = Vec::new();
    // 1. single-view candidates over the whole pattern; the per-view
    // mapping budget shrinks with the view count so large view sets stay
    // tractable (every kept candidate is still exactly verified)
    let per_view = (cfg.max_mappings / views.len().max(1)).max(4);
    for (name, v) in views.iter() {
        if v.has_access_restrictions() {
            continue; // index views need bindings; handled elsewhere
        }
        for h in node_mappings(q, v, s, per_view, eng) {
            // globally unique column prefix: the same view may appear on
            // both sides of a join, and colliding names would turn join
            // predicates into tautologies
            *prefix_counter += 1;
            if let Some(c) =
                build_candidate(q, name, v, &h, *prefix_counter, cfg.allow_navigation, stats)
            {
                out.push(c);
            }
        }
    }
    // 2. multi-view joins: split q at an edge, rewrite parts, join
    if cfg.max_views >= 2 {
        let splits = decompositions(q);
        for (upper, upper_map, sub, sub_map, join_node, axis, equality) in splits {
            if !equality && !cfg.use_structural_ids {
                continue;
            }
            let upper_cands = flat_candidates(
                &upper,
                views,
                s,
                RewriteConfig {
                    max_views: 1,
                    ..cfg
                },
                eng,
                stats,
                prefix_counter,
            );
            let sub_cands = flat_candidates(
                &sub,
                views,
                s,
                RewriteConfig {
                    max_views: cfg.max_views - 1,
                    ..cfg
                },
                eng,
                stats,
                prefix_counter,
            );
            for (upp, upp_qmap) in &upper_cands {
                // translate the join node through upper's map
                let Some(&u_in_upper) = upper_map.get(&join_node) else {
                    continue;
                };
                let Some(&u_node) = upp_qmap.get(&u_in_upper) else {
                    continue;
                };
                for (subpp, sub_qmap) in &sub_cands {
                    if upp.views_used.len() + subpp.views_used.len() > cfg.max_views {
                        continue;
                    }
                    let joined = if equality {
                        upp.clone().equality_join(subpp.clone(), u_node)
                    } else {
                        upp.clone().structural_join(subpp.clone(), u_node, axis)
                    };
                    let Some(joined) = joined else { continue };
                    stats.candidates_built += 1;
                    // merge q-node maps: upper part + sub part
                    let mut qmap: HashMap<XamNodeId, XamNodeId> = HashMap::new();
                    for (qo, qu) in &upper_map {
                        if let Some(&ppn) = upp_qmap.get(qu) {
                            qmap.insert(*qo, ppn);
                        }
                    }
                    // sub nodes were grafted: their pattern ids moved; the
                    // graft appended sub's pattern nodes in pre-order after
                    // the existing ones (except the unified root)
                    let offset = upp.pattern.len();
                    for (qo, qs) in &sub_map {
                        if let Some(&ppn) = sub_qmap.get(qs) {
                            let sub_root = subpp
                                .pattern
                                .children(XamNodeId::TOP)
                                .first()
                                .copied()
                                .unwrap_or(XamNodeId(1));
                            let target = if equality && ppn == sub_root {
                                u_node
                            } else {
                                // grafted ids follow creation order: compute
                                // by replaying the same traversal
                                remap_grafted(&subpp.pattern, ppn, sub_root, offset, equality)
                            };
                            qmap.insert(*qo, target);
                        }
                    }
                    out.push((joined, qmap));
                    if out.len() >= cfg.max_mappings * 4 {
                        return out; // candidate budget; verification is exact
                    }
                }
            }
        }
    }
    out
}

/// Where a grafted sub-pattern node ends up in the joined pattern: the
/// graft clones sub's nodes (minus the unified root for equality joins) in
/// pre-order starting at `offset`.
fn remap_grafted(
    sub: &Xam,
    node: XamNodeId,
    sub_root: XamNodeId,
    offset: usize,
    equality: bool,
) -> XamNodeId {
    // enumeration order of the graft: sub_root (only when not equality),
    // then the remaining nodes in pre-order
    let mut idx = 0usize;
    if !equality {
        if node == sub_root {
            return XamNodeId(offset as u32);
        }
        idx += 1;
    }
    for n in sub.pattern_nodes() {
        if n == sub_root {
            continue;
        }
        if n == node {
            return XamNodeId((offset + idx) as u32);
        }
        idx += 1;
    }
    XamNodeId(offset as u32)
}

/// The split points of a query pattern: for every non-root node `qb` with
/// parent `qa`, (upper = q minus subtree(qb), sub = subtree(qb)) for a
/// structural join at (qa, axis), and (upper = q minus the *children* of
/// qb, sub = subtree(qb)) for an identity join at qb.
#[allow(clippy::type_complexity)]
fn decompositions(
    q: &Xam,
) -> Vec<(
    Xam,
    HashMap<XamNodeId, XamNodeId>,
    Xam,
    HashMap<XamNodeId, XamNodeId>,
    XamNodeId,
    algebra::Axis,
    bool,
)> {
    let mut out = Vec::new();
    for qb in q.pattern_nodes() {
        let Some(qa) = q.parent(qb) else { continue };
        let (sub, sub_map) = subtree_with_map(q, qb);
        let axis = q.node(qb).edge.axis;
        if qa != XamNodeId::TOP {
            if let Some((upper, upper_map)) = remove_subtree(q, qb) {
                // structural join at qa
                out.push((
                    upper,
                    upper_map,
                    sub.clone(),
                    sub_map.clone(),
                    qa,
                    axis,
                    false,
                ));
            }
        }
        // identity join at qb: upper keeps qb but loses its children
        if !q.children(qb).is_empty() {
            if let Some((upper, upper_map)) = prune_children(q, qb) {
                out.push((upper, upper_map, sub, sub_map, qb, axis, true));
            }
        }
    }
    out
}

/// Copy of `q` re-rooted at `sub` (under a fresh `⊤` with the original
/// edge), with the old→new node map. The subtree root's edge keeps its
/// axis but becomes a plain join from `⊤` (it is the iteration root now).
pub fn subtree_with_map(q: &Xam, sub: XamNodeId) -> (Xam, HashMap<XamNodeId, XamNodeId>) {
    let mut out = Xam::top();
    out.ordered = q.ordered;
    let mut map = HashMap::new();
    fn rec(
        src: &Xam,
        from: XamNodeId,
        dst: &mut Xam,
        under: XamNodeId,
        map: &mut HashMap<XamNodeId, XamNodeId>,
    ) {
        let mut node = src.node(from).clone();
        node.children = Vec::new();
        if under == XamNodeId::TOP {
            node.edge = xam_core::ast::XamEdge {
                axis: algebra::Axis::Descendant,
                sem: xam_core::ast::EdgeSem::Join,
            };
        }
        let new = dst.add_child(under, node);
        map.insert(from, new);
        for &c in src.children(from) {
            rec(src, c, dst, new, map);
        }
    }
    rec(q, sub, &mut out, XamNodeId::TOP, &mut map);
    (out, map)
}

/// Copy of `q` without the subtree rooted at `victim` (with node map);
/// `None` if nothing would remain.
fn remove_subtree(q: &Xam, victim: XamNodeId) -> Option<(Xam, HashMap<XamNodeId, XamNodeId>)> {
    let mut out = Xam::top();
    out.ordered = q.ordered;
    let mut map = HashMap::new();
    fn rec(
        src: &Xam,
        n: XamNodeId,
        victim: XamNodeId,
        dst: &mut Xam,
        under: XamNodeId,
        map: &mut HashMap<XamNodeId, XamNodeId>,
    ) {
        for &c in src.children(n) {
            if c == victim {
                continue;
            }
            let mut node = src.node(c).clone();
            node.children = Vec::new();
            let new = dst.add_child(under, node);
            map.insert(c, new);
            rec(src, c, victim, dst, new, map);
        }
    }
    rec(
        q,
        XamNodeId::TOP,
        victim,
        &mut out,
        XamNodeId::TOP,
        &mut map,
    );
    if out.pattern_size() == 0 {
        None
    } else {
        Some((out, map))
    }
}

/// Copy of `q` with `node`'s children removed (with node map).
fn prune_children(q: &Xam, node: XamNodeId) -> Option<(Xam, HashMap<XamNodeId, XamNodeId>)> {
    let mut out = Xam::top();
    out.ordered = q.ordered;
    let mut map = HashMap::new();
    fn rec(
        src: &Xam,
        n: XamNodeId,
        stop: XamNodeId,
        dst: &mut Xam,
        under: XamNodeId,
        map: &mut HashMap<XamNodeId, XamNodeId>,
    ) {
        for &c in src.children(n) {
            let mut nd = src.node(c).clone();
            nd.children = Vec::new();
            let new = dst.add_child(under, nd);
            map.insert(c, new);
            if c != stop {
                rec(src, c, stop, dst, new, map);
            }
        }
    }
    rec(q, XamNodeId::TOP, node, &mut out, XamNodeId::TOP, &mut map);
    Some((out, map))
}

/// Enumerate partial node mappings `h : q-nodes ⇀ v-nodes` respecting
/// labels, kinds, summary path annotations and tree structure; unmapped
/// nodes will be compensated by navigation.
fn node_mappings(
    q: &Xam,
    v: &Xam,
    s: &Summary,
    cap: usize,
    eng: &EngineOptions,
) -> Vec<HashMap<XamNodeId, XamNodeId>> {
    // path annotations for pruning: one enumeration pass per pattern
    // (not per node), memoized across calls through the engine cache —
    // the same views are re-annotated for every query otherwise
    let annotations = |p: &Xam| -> Arc<Vec<std::collections::HashSet<summary::SummaryNodeId>>> {
        match eng.cache {
            Some(c) => c.path_annotations(p, s, eng.summary_fp),
            None => Arc::new(containment::canonical::path_annotations_all(p, s)),
        }
    };
    let q_ann = annotations(q);
    let v_ann = annotations(v);
    let compatible = |qn: XamNodeId, vn: XamNodeId| -> bool {
        let qd = q.node(qn);
        let vd = v.node(vn);
        if qd.is_attribute != vd.is_attribute {
            return false;
        }
        // annotations must intersect, else the pair is dead
        q_ann[qn.index()]
            .intersection(&v_ann[vn.index()])
            .next()
            .is_some()
    };
    let mut out: Vec<HashMap<XamNodeId, XamNodeId>> = Vec::new();
    let order: Vec<XamNodeId> = q.pattern_nodes().collect();

    #[allow(clippy::too_many_arguments)]
    fn assign(
        q: &Xam,
        v: &Xam,
        order: &[XamNodeId],
        idx: usize,
        cur: &mut HashMap<XamNodeId, XamNodeId>,
        compatible: &dyn Fn(XamNodeId, XamNodeId) -> bool,
        out: &mut Vec<HashMap<XamNodeId, XamNodeId>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if idx == order.len() {
            if !cur.is_empty() {
                out.push(cur.clone());
            }
            return;
        }
        let qn = order[idx];
        let parent = q.parent(qn).unwrap();
        // option 1: map qn
        let candidates: Vec<XamNodeId> = if parent == XamNodeId::TOP {
            v.pattern_nodes().collect()
        } else if let Some(&vp) = cur.get(&parent) {
            // descendants of the parent's image (any depth; verification
            // settles axis questions)
            let mut desc = Vec::new();
            let mut stack: Vec<XamNodeId> = v.children(vp).to_vec();
            while let Some(c) = stack.pop() {
                desc.push(c);
                stack.extend_from_slice(v.children(c));
            }
            desc
        } else {
            // parent unmapped: if it can be *skipped* (stores nothing, no
            // predicate — e.g. a redundant //item above //listitem that
            // the summary implies), the child may map anywhere; the
            // equivalence verification rejects unsound skips
            let pd = q.node(parent);
            if !pd.is_return() && pd.value_predicate == Formula::True {
                v.pattern_nodes().collect()
            } else {
                Vec::new()
            }
        };
        for vn in candidates {
            if compatible(qn, vn) {
                cur.insert(qn, vn);
                assign(q, v, order, idx + 1, cur, compatible, out, cap);
                cur.remove(&qn);
            }
        }
        // option 2: leave qn unmapped (navigation compensation)
        assign(q, v, order, idx + 1, cur, compatible, out, cap);
    }

    let mut cur = HashMap::new();
    assign(q, v, &order, 0, &mut cur, &compatible, &mut out, cap);
    // prefer mappings covering more nodes
    out.sort_by_key(|h| usize::MAX - h.len());
    out
}

/// Build the compensated plan-pattern for one (view, mapping) pair.
#[allow(clippy::too_many_arguments)]
fn build_candidate(
    q: &Xam,
    view_name: &str,
    v: &Xam,
    h: &HashMap<XamNodeId, XamNodeId>,
    unique: usize,
    allow_navigation: bool,
    stats: &mut RewriteStats,
) -> Option<(PlanPattern, HashMap<XamNodeId, XamNodeId>)> {
    // flat views only for the compensation machinery
    if v.pattern_nodes().any(|n| v.node(n).edge.sem.is_nested()) {
        return None;
    }
    let prefix = format!("w{unique}_");
    let mut pp = PlanPattern::from_view(view_name, v, Some(&prefix));
    let mut qmap: HashMap<XamNodeId, XamNodeId> = HashMap::new();
    let mut skipped: std::collections::HashSet<XamNodeId> = std::collections::HashSet::new();
    // process q nodes in pre-order
    for qn in q.pattern_nodes() {
        let qd = q.node(qn);
        if let Some(&vn) = h.get(&qn) {
            qmap.insert(qn, vn);
        } else {
            let parent = q.parent(qn)?;
            // a storeless, unconstrained node whose ancestors are all
            // unmapped can be *dropped* — the verification decides whether
            // the summary makes it redundant
            let parent_gone = parent == XamNodeId::TOP || skipped.contains(&parent);
            if parent_gone {
                if !qd.is_return()
                    && qd.value_predicate == Formula::True
                    && !qd.edge.sem.is_nested()
                {
                    skipped.insert(qn);
                    continue;
                }
                return None;
            }
            // otherwise: navigation from the mapped parent
            if !allow_navigation {
                return None;
            }
            let &from = qmap.get(&parent)?;
            if qd.edge.sem.is_nested() {
                return None; // nested edges cannot be navigated flatly
            }
            let subtree_stores = std::iter::once(qn)
                .chain(descendants_of(q, qn))
                .any(|m| q.node(m).is_return());
            let mode = if qd.edge.sem.is_optional() {
                NavMode::Outer
            } else if !subtree_stores && q.children(qn).is_empty() {
                NavMode::Exists
            } else {
                NavMode::Flat
            };
            let new = pp.navigate(
                from,
                qd.edge.axis,
                qd.tag_predicate.as_deref(),
                qd.is_attribute,
                mode,
            )?;
            qmap.insert(qn, new);
        }
    }
    // value predicates
    for qn in q.pattern_nodes() {
        let f = &q.node(qn).value_predicate;
        if *f == Formula::True {
            continue;
        }
        let &pn = qmap.get(&qn)?;
        let already = &pp.pattern.node(pn).value_predicate;
        // if the plan node already carries an equal-or-stronger formula,
        // skip; otherwise filter
        if already == f {
            continue;
        }
        if !pp.filter_value(pn, f) {
            return None;
        }
    }
    // output attributes must be obtainable
    for qn in q.return_nodes() {
        let qd = q.node(qn).clone();
        let &pn = qmap.get(&qn)?;
        if qd.stores_id.is_some() && pp.cols.get(&pn).and_then(|c| c.id.clone()).is_none() {
            // §4.4's navigational-ID exploitation: if a descendant of `qn`
            // reached through a fixed `/`-chain carries a `p`-class ID,
            // the ancestor's identifier is *derivable* from it
            if !derive_id_from_descendant(q, &mut pp, &qmap, qn) {
                return None;
            }
        }
        if qd.stores_val && pp.value_column(pn).is_none() {
            return None;
        }
        if qd.stores_cont && pp.content_column(pn).is_none() {
            return None;
        }
    }
    stats.candidates_built += 1;
    Some((pp, qmap))
}

/// Try to manufacture `qn`'s ID column by deriving it from a mapped
/// descendant with a `p`-class (Dewey/ORDPATH-style) identifier connected
/// by parent-child edges only — the fixed depth offset makes the ancestor
/// ID computable (the paper's `p` IDs, §1.2.1 / §4.4).
fn derive_id_from_descendant(
    q: &Xam,
    pp: &mut PlanPattern,
    qmap: &HashMap<XamNodeId, XamNodeId>,
    qn: XamNodeId,
) -> bool {
    // BFS over `/`-edges below qn
    let mut frontier: Vec<(XamNodeId, u16)> = q
        .children(qn)
        .iter()
        .filter(|&&c| q.node(c).edge.axis == algebra::Axis::Child)
        .map(|&c| (c, 1u16))
        .collect();
    while let Some((qd, levels)) = frontier.pop() {
        if let Some(&pd) = qmap.get(&qd) {
            if pp
                .cols
                .get(&pd)
                .is_some_and(|c| c.id_kind == Some(xam_core::IdKind::Parent) && c.id.is_some())
            {
                if let Some(col) = pp.derive_ancestor_id(pd, levels) {
                    let pn = qmap[&qn];
                    pp.set_id_column(pn, col, xam_core::IdKind::Parent);
                    return true;
                }
            }
        }
        frontier.extend(
            q.children(qd)
                .iter()
                .filter(|&&c| q.node(c).edge.axis == algebra::Axis::Child)
                .map(|&c| (c, levels + 1)),
        );
    }
    false
}

fn descendants_of(q: &Xam, n: XamNodeId) -> Vec<XamNodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<XamNodeId> = q.children(n).to_vec();
    while let Some(c) = stack.pop() {
        out.push(c);
        stack.extend_from_slice(q.children(c));
    }
    out
}

// --------------------------------------------------------------------
// nested patterns: exact-shape single-view rewriting (§5.4 fragment)

fn nested_exact_candidates(
    q: &Xam,
    views: &[(String, Xam)],
    s: &Summary,
    stats: &mut RewriteStats,
) -> Vec<(PlanPattern, HashMap<XamNodeId, XamNodeId>)> {
    let _ = s;
    let mut out = Vec::new();
    for (name, v) in views {
        if v.has_access_restrictions() {
            continue;
        }
        // shape-preserving tree isomorphism, allowing sibling permutation;
        // labels, axes and nesting compatibility are left to the Chapter 4
        // verification (incl. Prop 4.4.4)
        if v.len() != q.len() {
            continue;
        }
        if let Some(iso) = tree_isomorphism(q, v) {
            // the CastSchema finalization reads the *query's* schema, so
            // the view's column order must agree with the query's
            if output_order_compatible(q, v, &iso) {
                stats.candidates_built += 1;
                let pp = PlanPattern::from_view(name, v, None);
                out.push((pp, iso));
            }
        }
    }
    out
}

/// A kind/nesting-preserving isomorphism `q → v` up to sibling order.
fn tree_isomorphism(q: &Xam, v: &Xam) -> Option<HashMap<XamNodeId, XamNodeId>> {
    fn match_children(
        q: &Xam,
        v: &Xam,
        qn: XamNodeId,
        vn: XamNodeId,
        map: &mut HashMap<XamNodeId, XamNodeId>,
    ) -> bool {
        let qc: Vec<XamNodeId> = q.children(qn).to_vec();
        let vc: Vec<XamNodeId> = v.children(vn).to_vec();
        if qc.len() != vc.len() {
            return false;
        }
        fn assign(
            q: &Xam,
            v: &Xam,
            qc: &[XamNodeId],
            i: usize,
            used: &mut Vec<bool>,
            vc: &[XamNodeId],
            map: &mut HashMap<XamNodeId, XamNodeId>,
        ) -> bool {
            if i == qc.len() {
                return true;
            }
            let qn = qc[i];
            for (j, &vn) in vc.iter().enumerate() {
                if used[j] {
                    continue;
                }
                let (qd, vd) = (q.node(qn), v.node(vn));
                if qd.is_attribute != vd.is_attribute
                    || qd.edge.sem.is_nested() != vd.edge.sem.is_nested()
                    || qd.edge.sem.is_optional() != vd.edge.sem.is_optional()
                    || qd.edge.sem.is_semijoin() != vd.edge.sem.is_semijoin()
                {
                    continue;
                }
                used[j] = true;
                map.insert(qn, vn);
                if match_children(q, v, qn, vn, map) && assign(q, v, qc, i + 1, used, vc, map) {
                    return true;
                }
                map.remove(&qn);
                used[j] = false;
            }
            false
        }
        let mut used = vec![false; vc.len()];
        assign(q, v, &qc, 0, &mut used, &vc, map)
    }
    let mut map = HashMap::new();
    if match_children(q, v, XamNodeId::TOP, XamNodeId::TOP, &mut map) {
        Some(map)
    } else {
        None
    }
}

/// Pair-of-nested-views candidates: the two views share their root node
/// (same document node, joined by node identity on the root's ID); each
/// root-child subtree of the query maps isomorphically into one of the
/// views — the §5.2 scenario where `V1` holds the nested listitems and
/// `V2` the names of the *same* items.
fn nested_pair_candidates(
    q: &Xam,
    views: &[(String, Xam)],
    stats: &mut RewriteStats,
    prefix_counter: &mut usize,
) -> Vec<(PlanPattern, HashMap<XamNodeId, XamNodeId>)> {
    let mut out = Vec::new();
    let Some(&q_root) = q.children(XamNodeId::TOP).first() else {
        return out;
    };
    if q.children(XamNodeId::TOP).len() != 1 {
        return out;
    }
    let q_branches: Vec<XamNodeId> = q.children(q_root).to_vec();
    if q_branches.len() < 2 {
        return out;
    }
    for (n1, v1) in views {
        for (n2, v2) in views {
            if v1.has_access_restrictions() || v2.has_access_restrictions() {
                continue;
            }
            let (Some(&r1), Some(&r2)) = (
                v1.children(XamNodeId::TOP).first(),
                v2.children(XamNodeId::TOP).first(),
            ) else {
                continue;
            };
            // both roots must store an ID for the identity join
            if v1.node(r1).stores_id.is_none() || v2.node(r2).stores_id.is_none() {
                continue;
            }
            // assign each query branch wholly to one view
            let mut qmap_v1: HashMap<XamNodeId, XamNodeId> = HashMap::new();
            let mut qmap_v2: HashMap<XamNodeId, XamNodeId> = HashMap::new();
            let mut used1 = vec![false; v1.children(r1).len()];
            let mut used2 = vec![false; v2.children(r2).len()];
            let mut ok = true;
            let mut any_in_v2 = false;
            for &qb in &q_branches {
                let mut placed = false;
                for (j, &vb) in v1.children(r1).iter().enumerate() {
                    if used1[j] {
                        continue;
                    }
                    let mut m = HashMap::new();
                    if match_pair(q, v1, qb, vb, &mut m) {
                        used1[j] = true;
                        qmap_v1.extend(m);
                        placed = true;
                        break;
                    }
                }
                if placed {
                    continue;
                }
                for (j, &vb) in v2.children(r2).iter().enumerate() {
                    if used2[j] {
                        continue;
                    }
                    let mut m = HashMap::new();
                    if match_pair(q, v2, qb, vb, &mut m) {
                        used2[j] = true;
                        qmap_v2.extend(m);
                        placed = true;
                        any_in_v2 = true;
                        break;
                    }
                }
                if !placed {
                    ok = false;
                    break;
                }
            }
            if !ok || !any_in_v2 || qmap_v1.is_empty() {
                continue;
            }
            // build the identity-join plan
            *prefix_counter += 1;
            let p1 = format!("x{}_", *prefix_counter);
            *prefix_counter += 1;
            let p2 = format!("x{}_", *prefix_counter);
            let pp1 = PlanPattern::from_view(n1, v1, Some(&p1));
            let pp2 = PlanPattern::from_view(n2, v2, Some(&p2));
            let offset = pp1.pattern.len();
            let Some(joined) = pp1.equality_join(pp2, r1) else {
                continue;
            };
            stats.candidates_built += 1;
            let mut qmap: HashMap<XamNodeId, XamNodeId> = HashMap::new();
            qmap.insert(q_root, r1);
            for (qn, vn) in qmap_v1 {
                qmap.insert(qn, vn);
            }
            for (qn, vn) in qmap_v2 {
                let target = if vn == r2 {
                    r1
                } else {
                    remap_grafted(v2, vn, r2, offset, true)
                };
                qmap.insert(qn, target);
            }
            out.push((joined, qmap));
        }
    }
    out
}

/// Subtree isomorphism rooted at a (query node, view node) pair.
fn match_pair(
    q: &Xam,
    v: &Xam,
    qn: XamNodeId,
    vn: XamNodeId,
    map: &mut HashMap<XamNodeId, XamNodeId>,
) -> bool {
    let (qd, vd) = (q.node(qn), v.node(vn));
    if qd.is_attribute != vd.is_attribute
        || qd.edge.sem.is_nested() != vd.edge.sem.is_nested()
        || qd.edge.sem.is_optional() != vd.edge.sem.is_optional()
        || qd.edge.sem.is_semijoin() != vd.edge.sem.is_semijoin()
        || qd.tag_predicate != vd.tag_predicate
        || qd.value_predicate != vd.value_predicate
    {
        return false;
    }
    // stored attributes of the view must cover the query node's needs
    if (qd.stores_id.is_some() && vd.stores_id.is_none())
        || (qd.stores_val && !vd.stores_val)
        || (qd.stores_cont && !vd.stores_cont)
        || (qd.stores_tag && !vd.stores_tag)
    {
        return false;
    }
    map.insert(qn, vn);
    let qc: Vec<XamNodeId> = q.children(qn).to_vec();
    let vc: Vec<XamNodeId> = v.children(vn).to_vec();
    if qc.len() != vc.len() {
        map.remove(&qn);
        return false;
    }
    fn assign(
        q: &Xam,
        v: &Xam,
        qc: &[XamNodeId],
        i: usize,
        used: &mut Vec<bool>,
        vc: &[XamNodeId],
        map: &mut HashMap<XamNodeId, XamNodeId>,
    ) -> bool {
        if i == qc.len() {
            return true;
        }
        for (j, &vn) in vc.iter().enumerate() {
            if used[j] {
                continue;
            }
            used[j] = true;
            if match_pair(q, v, qc[i], vn, map) && assign(q, v, qc, i + 1, used, vc, map) {
                return true;
            }
            used[j] = false;
        }
        false
    }
    let mut used = vec![false; vc.len()];
    if assign(q, v, &qc, 0, &mut used, &vc, map) {
        true
    } else {
        map.remove(&qn);
        false
    }
}

/// Do the view's output columns, traversed in the view's own order, line
/// up positionally with the query's (same node via the isomorphism, same
/// attribute)? Required for the schema cast.
fn output_order_compatible(q: &Xam, v: &Xam, iso: &HashMap<XamNodeId, XamNodeId>) -> bool {
    let qc = output_columns(q);
    let vc = output_columns(v);
    if qc.len() != vc.len() {
        return false;
    }
    qc.iter()
        .zip(&vc)
        .all(|(a, b)| iso.get(&a.node) == Some(&b.node) && a.attr == b.attr)
}

// --------------------------------------------------------------------
// verification and finalization

/// Build the pattern used for equivalence testing: the candidate's
/// pattern with stored attributes aligned to the query's (extra stored
/// items in views are projected away by the final plan, so they must not
/// enter the signature comparison).
fn verification_pattern(
    q: &Xam,
    pp: &PlanPattern,
    qmap: &HashMap<XamNodeId, XamNodeId>,
) -> (Xam, Vec<XamNodeId>) {
    let mut vp = pp.pattern.clone();
    for n in vp.all_nodes().collect::<Vec<_>>() {
        let node = vp.node_mut(n);
        node.stores_id = None;
        node.stores_val = false;
        node.stores_cont = false;
        node.stores_tag = false;
        node.requires_id = false;
        node.requires_val = false;
        node.requires_tag = false;
    }
    let mut rets = Vec::new();
    for qn in q.return_nodes() {
        let pn = qmap[&qn];
        let qd = q.node(qn);
        let node = vp.node_mut(pn);
        node.stores_id = qd.stores_id;
        node.stores_val = qd.stores_val;
        node.stores_cont = qd.stores_cont;
        node.stores_tag = qd.stores_tag;
        rets.push(pn);
    }
    (vp, rets)
}

/// Project + cast the candidate plan so its output schema matches the
/// query pattern's output schema exactly.
fn finalize(
    q: &Xam,
    mut pp: PlanPattern,
    qmap: &HashMap<XamNodeId, XamNodeId>,
) -> Option<Rewriting> {
    let q_cols = output_columns(q);
    let mut proj: Vec<Path> = Vec::new();
    for c in &q_cols {
        let pn = qmap[&c.node];
        let col = match c.attr {
            StoredAttr::Id => pp.cols.get(&pn)?.id.clone()?,
            StoredAttr::Val => pp.value_column(pn)?,
            StoredAttr::Cont => pp.content_column(pn)?,
            StoredAttr::Tag => pp.cols.get(&pn)?.tag.clone()?,
        };
        proj.push(Path::new(col));
    }
    // Π° — XAM semantics is duplicate-free (Definition 2.2.3), and the
    // compensated plan may produce duplicates (e.g. identity joins of
    // overlapping views)
    let plan = LogicalPlan::Project {
        input: Box::new(pp.plan.clone()),
        cols: proj,
        distinct: true,
    };
    let plan = LogicalPlan::CastSchema {
        input: Box::new(plan),
        schema: q_schema(q),
    };
    let size = plan.size();
    Some(Rewriting {
        plan,
        pattern: pp.pattern,
        views_used: pp.views_used,
        size,
    })
}

/// The output schema of a query pattern (what the default pattern plan
/// produces), reconstructed from its column paths.
pub fn q_schema(q: &Xam) -> Schema {
    use algebra::Field;
    fn from_paths(paths: &[String]) -> Schema {
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<String>> = HashMap::new();
        for p in paths {
            let (head, rest) = match p.split_once('.') {
                Some((h, r)) => (h.to_string(), Some(r.to_string())),
                None => (p.clone(), None),
            };
            let e = groups.entry(head.clone()).or_insert_with(|| {
                order.push(head);
                Vec::new()
            });
            if let Some(r) = rest {
                e.push(r);
            }
        }
        Schema::new(
            order
                .into_iter()
                .map(|h| {
                    let subs = &groups[&h];
                    if subs.is_empty() {
                        Field::atom(h)
                    } else {
                        Field::nested(h, from_paths(subs))
                    }
                })
                .collect(),
        )
    }
    let paths: Vec<String> = output_columns(q).into_iter().map(|c| c.path).collect();
    from_paths(&paths)
}

// --------------------------------------------------------------------
// unions

fn try_union(
    q: &Xam,
    s: &Summary,
    contained: &[(PlanPattern, HashMap<XamNodeId, XamNodeId>)],
    stats: &mut RewriteStats,
) -> Option<Rewriting> {
    // test q ⊆ union of the contained candidates' patterns
    let pats: Vec<Xam> = contained
        .iter()
        .map(|(pp, qmap)| verification_pattern(q, pp, qmap).0)
        .collect();
    let refs: Vec<&Xam> = pats.iter().collect();
    stats.candidates_built += 1;
    if !containment::contained_in_union(q, &refs, s) {
        return None;
    }
    // assemble the union plan (schemas already aligned by finalize)
    let mut plans = Vec::new();
    let mut views = Vec::new();
    for (pp, qmap) in contained {
        let rw = finalize(q, pp.clone(), qmap)?;
        views.extend(rw.views_used);
        plans.push(rw.plan);
    }
    let mut iter = plans.into_iter();
    let mut plan = iter.next()?;
    for p in iter {
        plan = plan.union(p);
    }
    let size = plan.size();
    views.sort();
    views.dedup();
    Some(Rewriting {
        plan,
        pattern: q.clone(),
        views_used: views,
        size,
    })
}
