//! # summary — XML path summaries (strong DataGuides) with constraints
//!
//! Implements Chapter 4.2 of the paper: the *path summary* `S(D)` of a
//! document `D` is a tree with one node per distinct rooted label path in
//! `D` (Definition 4.2.1), and the *enhanced* summary additionally labels
//! each edge with an integrity annotation (Definition 4.2.3):
//!
//! * `1` (**one-to-one**): every document node on the parent path has
//!   *exactly one* child on the child path;
//! * `+` (**strong**): every document node on the parent path has *at
//!   least one* child on the child path;
//! * `*`: no constraint.
//!
//! Summary nodes double as *path numbers* (Example 4.2.1); attribute paths
//! are labelled `@name` and text paths `#text`. Summaries are the source of
//! structural constraints for the containment (Chapter 4) and rewriting
//! (Chapter 5) algorithms.

pub mod matching;
pub mod stats;

pub use matching::{compatible_nodes, PatternAxis};

use std::collections::HashMap;
use std::fmt;

use xmltree::{Document, NodeId, NodeKind};

/// Index of a node in a [`Summary`]; `SummaryNodeId(0)` is the root path.
/// The 1-based *path number* of the paper is `id.0 + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SummaryNodeId(pub u32);

impl SummaryNodeId {
    pub const ROOT: SummaryNodeId = SummaryNodeId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The 1-based path number used in the paper's figures.
    pub fn path_number(self) -> u32 {
        self.0 + 1
    }
}

impl fmt::Display for SummaryNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Edge annotation of an enhanced summary (Definition 4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeCard {
    /// `1`: exactly one child on this path under every parent-path node.
    One,
    /// `+`: at least one ("strong edge").
    Plus,
    /// `*`: no constraint.
    Star,
}

impl EdgeCard {
    /// Does this annotation guarantee at least one child?
    pub fn is_strong(self) -> bool {
        matches!(self, EdgeCard::One | EdgeCard::Plus)
    }

    pub fn is_one_to_one(self) -> bool {
        self == EdgeCard::One
    }
}

#[derive(Debug, Clone)]
struct SummaryNode {
    label: String,
    kind: NodeKind,
    parent: Option<SummaryNodeId>,
    children: Vec<SummaryNodeId>,
    /// Annotation of the edge from the parent (root: `One`).
    card: EdgeCard,
}

/// A path summary, optionally enhanced with `1`/`+` edge constraints.
#[derive(Debug, Clone)]
pub struct Summary {
    nodes: Vec<SummaryNode>,
    /// (parent summary node, label) → child summary node
    index: HashMap<(SummaryNodeId, String), SummaryNodeId>,
}

impl Summary {
    /// Build the strong-DataGuide summary of a document, including `1`/`+`
    /// edge annotations. Runs in `O(|D|)`.
    pub fn of_document(doc: &Document) -> Summary {
        let mut s = Summary {
            nodes: Vec::new(),
            index: HashMap::new(),
        };
        s.nodes.push(SummaryNode {
            label: doc.label(doc.root()).to_string(),
            kind: NodeKind::Element,
            parent: None,
            children: Vec::new(),
            card: EdgeCard::One,
        });
        // φ : document node → summary node
        let mut phi: Vec<SummaryNodeId> = vec![SummaryNodeId::ROOT; doc.len()];
        // per (doc parent node, summary child) child counts for annotations
        let mut child_count: HashMap<(NodeId, SummaryNodeId), u32> = HashMap::new();
        for n in doc.all_nodes() {
            let Some(p) = doc.parent(n) else { continue };
            let sp = phi[p.index()];
            let label = match doc.kind(n) {
                NodeKind::Attribute => format!("@{}", doc.label(n)),
                _ => doc.label(n).to_string(),
            };
            let sn = match s.index.get(&(sp, label.clone())) {
                Some(&sn) => sn,
                None => {
                    let sn = SummaryNodeId(s.nodes.len() as u32);
                    s.nodes.push(SummaryNode {
                        label: doc.label(n).to_string(),
                        kind: doc.kind(n),
                        parent: Some(sp),
                        children: Vec::new(),
                        card: EdgeCard::Star,
                    });
                    s.nodes[sp.index()].children.push(sn);
                    s.index.insert((sp, label), sn);
                    sn
                }
            };
            phi[n.index()] = sn;
            *child_count.entry((p, sn)).or_insert(0) += 1;
        }
        // Edge annotations: start optimistic (One) and demote.
        for i in 1..s.nodes.len() {
            s.nodes[i].card = EdgeCard::One;
        }
        let mut on_path: HashMap<SummaryNodeId, u32> = HashMap::new();
        for n in doc.all_nodes() {
            *on_path.entry(phi[n.index()]).or_insert(0) += 1;
        }
        // A parent with >1 children on a path demotes One → Plus; a parent
        // path node with 0 children on the path demotes the edge to Star.
        let mut parents_with: HashMap<SummaryNodeId, u32> = HashMap::new();
        for (&(_, sn), &cnt) in &child_count {
            *parents_with.entry(sn).or_insert(0) += 1;
            if cnt > 1 {
                let card = &mut s.nodes[sn.index()].card;
                if *card == EdgeCard::One {
                    *card = EdgeCard::Plus;
                }
            }
        }
        for i in 1..s.nodes.len() {
            let sn = SummaryNodeId(i as u32);
            let parent = s.nodes[i].parent.unwrap();
            let parent_count = on_path.get(&parent).copied().unwrap_or(0);
            let have = parents_with.get(&sn).copied().unwrap_or(0);
            if have < parent_count {
                s.nodes[i].card = EdgeCard::Star;
            }
        }
        s
    }

    /// Number of summary nodes (`|S|`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn root(&self) -> SummaryNodeId {
        SummaryNodeId::ROOT
    }

    /// Label of a summary node (without `@` sigil; see [`Summary::kind`]).
    pub fn label(&self, n: SummaryNodeId) -> &str {
        &self.nodes[n.index()].label
    }

    pub fn kind(&self, n: SummaryNodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    pub fn parent(&self, n: SummaryNodeId) -> Option<SummaryNodeId> {
        self.nodes[n.index()].parent
    }

    pub fn children(&self, n: SummaryNodeId) -> &[SummaryNodeId] {
        &self.nodes[n.index()].children
    }

    /// Annotation of the edge from `n`'s parent to `n`.
    pub fn edge_card(&self, n: SummaryNodeId) -> EdgeCard {
        self.nodes[n.index()].card
    }

    /// Is every edge on the path from `anc` down to `desc` strong (`1`/`+`)?
    /// (Used by rewriting: a strong chain guarantees non-empty joins.)
    pub fn strong_chain(&self, anc: SummaryNodeId, desc: SummaryNodeId) -> bool {
        let mut cur = desc;
        while cur != anc {
            if !self.edge_card(cur).is_strong() {
                return false;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
        true
    }

    /// Is every edge between `anc` and `desc` one-to-one? (Condition for
    /// relaxing nested-pattern containment, §4.4.5.)
    pub fn one_to_one_chain(&self, anc: SummaryNodeId, desc: SummaryNodeId) -> bool {
        let mut cur = desc;
        while cur != anc {
            if !self.edge_card(cur).is_one_to_one() {
                return false;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
        true
    }

    /// Is `anc` an ancestor of (or equal to) `desc` in the summary tree?
    pub fn is_ancestor_or_self(&self, anc: SummaryNodeId, desc: SummaryNodeId) -> bool {
        let mut cur = Some(desc);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Depth of a summary node (root = 1).
    pub fn depth(&self, n: SummaryNodeId) -> u16 {
        let mut d = 1;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// All summary nodes in creation (pre-ish) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = SummaryNodeId> + '_ {
        (0..self.nodes.len() as u32).map(SummaryNodeId)
    }

    /// All summary nodes with the given label (any kind).
    pub fn nodes_with_label<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = SummaryNodeId> + 'a {
        self.all_nodes()
            .filter(move |&n| self.nodes[n.index()].label == label)
    }

    /// The child of `n` along `label` (`@name` for attributes), if any.
    pub fn child_by_label(&self, n: SummaryNodeId, label: &str) -> Option<SummaryNodeId> {
        self.index.get(&(n, label.to_string())).copied()
    }

    /// Resolve a rooted label path like `/site/regions/item` (or
    /// `/a/b/@x`) to its summary node.
    pub fn node_on_path(&self, path: &str) -> Option<SummaryNodeId> {
        let mut parts = path.split('/').filter(|p| !p.is_empty());
        let first = parts.next()?;
        if first != self.nodes[0].label {
            return None;
        }
        let mut cur = SummaryNodeId::ROOT;
        for p in parts {
            cur = self.child_by_label(cur, p)?;
        }
        Some(cur)
    }

    /// The rooted label path of a summary node, e.g. `/site/regions/item`.
    pub fn path_of(&self, n: SummaryNodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            let node = &self.nodes[c.index()];
            match node.kind {
                NodeKind::Attribute => parts.push(format!("@{}", node.label)),
                _ => parts.push(node.label.clone()),
            }
            cur = node.parent;
        }
        parts.reverse();
        let mut out = String::new();
        for p in parts {
            out.push('/');
            out.push_str(&p);
        }
        out
    }

    /// Descendants of `n` (excluding `n`), depth-first.
    pub fn descendants(&self, n: SummaryNodeId) -> Vec<SummaryNodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<SummaryNodeId> = self.children(n).to_vec();
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend_from_slice(self.children(c));
        }
        out
    }

    /// Count of strong (`+` or `1`) edges — `n_s` in Figure 4.13.
    pub fn strong_edge_count(&self) -> usize {
        self.nodes
            .iter()
            .skip(1)
            .filter(|n| n.card.is_strong())
            .count()
    }

    /// Count of one-to-one (`1`) edges — `n_1` in Figure 4.13.
    pub fn one_to_one_edge_count(&self) -> usize {
        self.nodes
            .iter()
            .skip(1)
            .filter(|n| n.card.is_one_to_one())
            .count()
    }

    /// Does `doc` conform to this summary, i.e. `S(doc)` has exactly the
    /// same paths and `doc` satisfies every `1`/`+` edge constraint
    /// (Definitions 4.2.2 / 4.2.3)?
    pub fn conforms(&self, doc: &Document) -> bool {
        let other = Summary::of_document(doc);
        if other.len() != self.len() {
            return false;
        }
        for n in other.all_nodes() {
            let Some(mine) = self.node_on_path(&other.path_of(n)) else {
                return false;
            };
            // other's computed edge cards are the tightest true ones, so
            // self's declared constraints must be implied by them
            let required = self.edge_card(mine);
            let actual = other.edge_card(n);
            let ok = match required {
                EdgeCard::Star => true,
                EdgeCard::Plus => actual.is_strong(),
                EdgeCard::One => actual.is_one_to_one(),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// The summary node of each document node (the `φ` function of
    /// Definition 4.2.1), for a conforming document.
    pub fn classify(&self, doc: &Document) -> Option<Vec<SummaryNodeId>> {
        let mut phi = vec![SummaryNodeId::ROOT; doc.len()];
        if doc.label(doc.root()) != self.nodes[0].label {
            return None;
        }
        for n in doc.all_nodes() {
            let Some(p) = doc.parent(n) else { continue };
            let label = match doc.kind(n) {
                NodeKind::Attribute => format!("@{}", doc.label(n)),
                _ => doc.label(n).to_string(),
            };
            phi[n.index()] = self.child_by_label(phi[p.index()], &label)?;
        }
        Some(phi)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            s: &Summary,
            n: SummaryNodeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let node = &s.nodes[n.index()];
            let card = match node.card {
                EdgeCard::One => "1",
                EdgeCard::Plus => "+",
                EdgeCard::Star => "*",
            };
            let sigil = match node.kind {
                NodeKind::Attribute => "@",
                _ => "",
            };
            writeln!(
                f,
                "{}{}{} [{}] ({})",
                "  ".repeat(depth),
                sigil,
                node.label,
                card,
                n.path_number()
            )?;
            for &c in &node.children {
                rec(s, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, SummaryNodeId::ROOT, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;
    use xmltree::parse_document;

    #[test]
    fn summary_of_bib_sample() {
        let doc = generate::bib_sample();
        let s = Summary::of_document(&doc);
        assert_eq!(s.label(s.root()), "library");
        let book = s.node_on_path("/library/book").unwrap();
        assert_eq!(s.label(book), "book");
        assert!(s.node_on_path("/library/book/@year").is_some());
        assert!(s.node_on_path("/library/phdthesis/title").is_some());
        assert!(s.node_on_path("/library/article").is_none());
    }

    #[test]
    fn one_node_per_distinct_path() {
        let doc = parse_document("<a><b><c/></b><b><c/><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        assert_eq!(s.len(), 3); // a, a/b, a/b/c
    }

    #[test]
    fn edge_annotations() {
        // every a has b children (strong); every b has exactly one c (1);
        // d appears under only one of the two b's (*)
        let doc = parse_document("<a><b><c/><d/></b><b><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let b = s.node_on_path("/a/b").unwrap();
        let c = s.node_on_path("/a/b/c").unwrap();
        let d = s.node_on_path("/a/b/d").unwrap();
        assert_eq!(s.edge_card(b), EdgeCard::Plus);
        assert_eq!(s.edge_card(c), EdgeCard::One);
        assert_eq!(s.edge_card(d), EdgeCard::Star);
    }

    #[test]
    fn plus_vs_one() {
        let doc = parse_document("<a><b/><b/></a>").unwrap();
        let s = Summary::of_document(&doc);
        let b = s.node_on_path("/a/b").unwrap();
        assert_eq!(s.edge_card(b), EdgeCard::Plus);
    }

    #[test]
    fn chains() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let a = s.root();
        let c = s.node_on_path("/a/b/c").unwrap();
        assert!(s.strong_chain(a, c));
        assert!(s.one_to_one_chain(a, c));
        assert!(s.is_ancestor_or_self(a, c));
        assert!(!s.is_ancestor_or_self(c, a));
    }

    #[test]
    fn xmark_summary_is_scale_invariant() {
        let s1 = Summary::of_document(&generate::xmark(3, 1));
        let s2 = Summary::of_document(&generate::xmark(30, 1));
        assert_eq!(s1.len(), s2.len(), "summary must not grow with scale");
        assert!(s1.len() > 150, "XMark-like summary too small: {}", s1.len());
    }

    #[test]
    fn dblp_summary_small_with_strong_edges() {
        let s = Summary::of_document(&generate::dblp(200, 5));
        assert!(s.len() < 80, "DBLP summary too big: {}", s.len());
        assert!(s.strong_edge_count() > 10);
        assert!(s.one_to_one_edge_count() > 5);
    }

    #[test]
    fn conformance() {
        let d1 = generate::dblp(50, 1);
        let s = Summary::of_document(&d1);
        assert!(s.conforms(&d1));
        let d2 = generate::bib_sample();
        assert!(!s.conforms(&d2));
    }

    #[test]
    fn classify_maps_nodes_to_paths() {
        let doc = generate::bib_sample();
        let s = Summary::of_document(&doc);
        let phi = s.classify(&doc).unwrap();
        for n in doc.all_nodes() {
            assert_eq!(s.path_of(phi[n.index()]), doc.label_path(n));
        }
    }

    #[test]
    fn path_numbers_are_stable() {
        let doc = generate::bib_sample();
        let s = Summary::of_document(&doc);
        let book = s.node_on_path("/library/book").unwrap();
        assert_eq!(book.path_number(), 2); // second path discovered
    }

    #[test]
    fn display_renders_tree() {
        let doc = parse_document("<a><b x=\"1\"/></a>").unwrap();
        let s = Summary::of_document(&doc);
        let out = s.to_string();
        assert!(out.contains("a [1]"));
        assert!(out.contains("@x"));
    }

    #[test]
    fn descendants_enumeration() {
        let doc = parse_document("<a><b><c/></b><d/></a>").unwrap();
        let s = Summary::of_document(&doc);
        let all = s.descendants(s.root());
        assert_eq!(all.len(), 3);
    }
}
