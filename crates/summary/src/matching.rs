//! Query-pattern → summary-path matching (the partition selector).
//!
//! A summary node stands for one rooted label path, and φ maps every
//! document node to its summary node; storage partitions each
//! `(label, kind)` ID stream by that φ value. Before a twig join runs,
//! [`compatible_nodes`] computes, for every pattern node, the set of
//! summary nodes whose partitions can possibly contribute a match — a
//! scan then opens only those partitions and skips the rest of the
//! stream without reading it.
//!
//! The computation is arc-consistency over the summary tree: a top-down
//! pass seeds each pattern node with the label-compatible summary nodes
//! reachable from its parent's candidates along the connecting axis, and
//! bottom-up passes discard candidates that cannot cover some pattern
//! child, iterating to a fixpoint. Pruning is *sound*: a summary node
//! hosting a real document match is never dropped (its φ image satisfies
//! every constraint the passes check), so partition selection preserves
//! query results exactly. It is not complete — a surviving summary node
//! may still hold no match — which only costs an opened partition.

use crate::{Summary, SummaryNodeId};
use xmltree::NodeKind;

/// Axis connecting a twig-pattern node to its parent (a dependency-free
/// mirror of the algebra crate's `Axis`, which summary cannot import
/// without a layering cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternAxis {
    Child,
    Descendant,
}

/// For each pattern node, the summary nodes whose stream partitions can
/// contribute to a match.
///
/// The pattern is given structurally: node `0` is the pattern root and
/// for `i > 0`, `parents[i] < i` names the parent node and `axes[i]` the
/// connecting axis. `parents[0]` is ignored; `axes[0]` relates the
/// pattern root to the *document* root (`Child` pins it to the root
/// element's children, `Descendant` — the common case — allows any
/// depth, including the root element itself). Labels match summary
/// labels exactly, `"*"` matches any element, and a `"@name"` label
/// matches the attribute `name`.
///
/// Returns one sorted candidate set per pattern node; an empty set
/// proves the pattern has no match in any conforming document.
pub fn compatible_nodes(
    summary: &Summary,
    labels: &[&str],
    parents: &[usize],
    axes: &[PatternAxis],
) -> Vec<Vec<SummaryNodeId>> {
    let n = labels.len();
    assert_eq!(parents.len(), n, "parents length mismatch");
    assert_eq!(axes.len(), n, "axes length mismatch");
    if n == 0 {
        return Vec::new();
    }
    for (i, &p) in parents.iter().enumerate().skip(1) {
        assert!(p < i, "parents[{i}] = {p} must point at an earlier node");
    }

    // top-down seeding
    let mut cand: Vec<Vec<SummaryNodeId>> = Vec::with_capacity(n);
    let root_set: Vec<SummaryNodeId> = match axes[0] {
        PatternAxis::Child => summary
            .children(summary.root())
            .iter()
            .copied()
            .filter(|&s| label_matches(summary, s, labels[0]))
            .collect(),
        PatternAxis::Descendant => summary
            .all_nodes()
            .filter(|&s| label_matches(summary, s, labels[0]))
            .collect(),
    };
    cand.push(root_set);
    for i in 1..n {
        let set: Vec<SummaryNodeId> = summary
            .all_nodes()
            .filter(|&s| {
                label_matches(summary, s, labels[i])
                    && cand[parents[i]]
                        .iter()
                        .any(|&p| axis_connects(summary, p, s, axes[i]))
            })
            .collect();
        cand.push(set);
    }

    // bottom-up pruning to a fixpoint: a candidate must reach at least
    // one candidate of every pattern child. Each pass only shrinks the
    // sets, so this terminates; patterns are tiny, so re-running the
    // top-down tightening inside the loop is cheap.
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let kids: Vec<usize> = (i + 1..n).filter(|&j| parents[j] == i).collect();
            if kids.is_empty() {
                continue;
            }
            let before = cand[i].len();
            let kept: Vec<SummaryNodeId> = cand[i]
                .iter()
                .copied()
                .filter(|&s| {
                    kids.iter().all(|&j| {
                        cand[j]
                            .iter()
                            .any(|&c| axis_connects(summary, s, c, axes[j]))
                    })
                })
                .collect();
            if kept.len() != before {
                cand[i] = kept;
                changed = true;
            }
        }
        for i in 1..n {
            let before = cand[i].len();
            let kept: Vec<SummaryNodeId> = cand[i]
                .iter()
                .copied()
                .filter(|&s| {
                    cand[parents[i]]
                        .iter()
                        .any(|&p| axis_connects(summary, p, s, axes[i]))
                })
                .collect();
            if kept.len() != before {
                cand[i] = kept;
                changed = true;
            }
        }
    }
    for set in &mut cand {
        set.sort();
    }
    cand
}

fn label_matches(summary: &Summary, s: SummaryNodeId, pattern: &str) -> bool {
    if let Some(name) = pattern.strip_prefix('@') {
        return summary.kind(s) == NodeKind::Attribute && summary.label(s) == name;
    }
    match summary.kind(s) {
        NodeKind::Attribute => false,
        _ => pattern == "*" || summary.label(s) == pattern,
    }
}

fn axis_connects(
    summary: &Summary,
    parent: SummaryNodeId,
    child: SummaryNodeId,
    axis: PatternAxis,
) -> bool {
    match axis {
        PatternAxis::Child => summary.parent(child) == Some(parent),
        PatternAxis::Descendant => child != parent && summary.is_ancestor_or_self(parent, child),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::{generate, parse_document};

    fn paths(summary: &Summary, set: &[SummaryNodeId]) -> Vec<String> {
        set.iter().map(|&s| summary.path_of(s)).collect()
    }

    #[test]
    fn chain_pattern_selects_exact_paths() {
        let doc = parse_document("<a><b><c><k/></c></b><d><c><x/></c></d><c/></a>").unwrap();
        let s = Summary::of_document(&doc);
        // //b//c : only the c under b qualifies
        let cand = compatible_nodes(
            &s,
            &["b", "c"],
            &[0, 0],
            &[PatternAxis::Descendant, PatternAxis::Descendant],
        );
        assert_eq!(paths(&s, &cand[0]), ["/a/b"]);
        assert_eq!(paths(&s, &cand[1]), ["/a/b/c"]);
    }

    #[test]
    fn bottom_up_prunes_parents_without_children() {
        let doc = parse_document("<a><b><c/></b><b2><c/></b2><b><z/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        // //b/k : no b has a k child anywhere in the summary
        let cand = compatible_nodes(
            &s,
            &["b", "k"],
            &[0, 0],
            &[PatternAxis::Descendant, PatternAxis::Child],
        );
        assert!(cand[0].is_empty());
        assert!(cand[1].is_empty());
    }

    #[test]
    fn child_vs_descendant_axes_differ() {
        let doc = parse_document("<a><b><m><c/></m></b><b><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let child = compatible_nodes(
            &s,
            &["b", "c"],
            &[0, 0],
            &[PatternAxis::Descendant, PatternAxis::Child],
        );
        assert_eq!(paths(&s, &child[1]), ["/a/b/c"]);
        let desc = compatible_nodes(
            &s,
            &["b", "c"],
            &[0, 0],
            &[PatternAxis::Descendant, PatternAxis::Descendant],
        );
        assert_eq!(
            paths(&s, &desc[1]),
            ["/a/b/m/c", "/a/b/c"].map(String::from).to_vec()
        );
    }

    #[test]
    fn branching_pattern_requires_all_children() {
        // b[c][d] — only the first b path has both
        let doc = parse_document("<a><b><c/><d/></b><e><b><c/></b></e></a>").unwrap();
        let s = Summary::of_document(&doc);
        let cand = compatible_nodes(
            &s,
            &["b", "c", "d"],
            &[0, 0, 0],
            &[
                PatternAxis::Descendant,
                PatternAxis::Child,
                PatternAxis::Child,
            ],
        );
        assert_eq!(paths(&s, &cand[0]), ["/a/b"]);
        assert_eq!(paths(&s, &cand[1]), ["/a/b/c"]);
        assert_eq!(paths(&s, &cand[2]), ["/a/b/d"]);
    }

    #[test]
    fn wildcard_and_attribute_labels() {
        let doc = parse_document("<a><b x=\"1\"><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let cand = compatible_nodes(
            &s,
            &["*", "@x"],
            &[0, 0],
            &[PatternAxis::Descendant, PatternAxis::Child],
        );
        assert_eq!(paths(&s, &cand[0]), ["/a/b"]);
        assert_eq!(paths(&s, &cand[1]), ["/a/b/@x"]);
    }

    #[test]
    fn selective_xmark_pattern_prunes_most_paths() {
        let doc = generate::xmark(2, 5);
        let s = Summary::of_document(&doc);
        let cand = compatible_nodes(
            &s,
            &["description", "text", "keyword"],
            &[0, 0, 1],
            &[
                PatternAxis::Descendant,
                PatternAxis::Child,
                PatternAxis::Descendant,
            ],
        );
        let keyword_paths = s.nodes_with_label("keyword").count();
        assert!(!cand[2].is_empty());
        assert!(
            cand[2].len() < keyword_paths,
            "pruning must drop some of the {keyword_paths} keyword paths"
        );
        for &k in &cand[2] {
            assert!(s.path_of(k).contains("/description/"));
        }
    }
}
