//! Per-path cardinality statistics over a summary.
//!
//! The paper notes (§1.2.4, §4.2.1) that tree patterns and path summaries
//! are "the common abstraction for XML query cardinality estimations" and
//! that paths serve "as a support for statistics". This module collects
//! the node count of every summary path and estimates the cardinality of
//! structural joins between paths — the signal the rewriting layer uses to
//! rank equivalent plans beyond bare operator counts.

use crate::{Summary, SummaryNodeId};
use xmltree::Document;

/// Node counts per summary path.
#[derive(Debug, Clone)]
pub struct SummaryStats {
    /// `counts[i]` = number of document nodes on path `i`.
    counts: Vec<u64>,
}

impl SummaryStats {
    /// Count the nodes of a conforming document per summary path.
    pub fn collect(summary: &Summary, doc: &Document) -> Option<SummaryStats> {
        let phi = summary.classify(doc)?;
        let mut counts = vec![0u64; summary.len()];
        for n in doc.all_nodes() {
            counts[phi[n.index()].index()] += 1;
        }
        Some(SummaryStats { counts })
    }

    /// Number of document nodes on a path.
    pub fn count(&self, n: SummaryNodeId) -> u64 {
        self.counts[n.index()]
    }

    /// Total counted nodes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Average number of `child`-path children per `parent`-path node
    /// (the structural-join fan-out along a summary edge chain).
    pub fn fanout(&self, parent: SummaryNodeId, child: SummaryNodeId) -> f64 {
        let p = self.count(parent).max(1) as f64;
        self.count(child) as f64 / p
    }

    /// Estimated cardinality of a pattern whose node path-annotations are
    /// given: the sum over annotated return paths of their counts — the
    /// classic summary-based estimate (each result tuple pins its return
    /// node to one path).
    pub fn estimate_paths(&self, paths: &[SummaryNodeId]) -> u64 {
        paths.iter().map(|&p| self.count(p)).sum()
    }
}

/// Estimate the result cardinality of a XAM over a summarized document:
/// sum over the embeddings of the product of per-edge fan-outs down the
/// pattern, anchored at the count of the root node's path. Value
/// predicates apply a fixed selectivity of 0.1 each, the usual textbook
/// default in the absence of value histograms.
pub fn estimate_xam_cardinality(
    stats: &SummaryStats,
    summary: &Summary,
    annotate: impl Fn(&mut dyn FnMut(&[Option<SummaryNodeId>])),
) -> f64 {
    let _ = summary;
    let mut total = 0.0f64;
    let mut visit = |embedding: &[Option<SummaryNodeId>]| {
        // one embedding: the deepest return-ish node path dominates; use
        // the minimum count along the embedding as a crude upper bound and
        // the product-of-fanouts as refinement — here we take the count of
        // the last (deepest) mapped node
        if let Some(Some(last)) = embedding.iter().rev().find(|e| e.is_some()) {
            total += stats.count(*last) as f64;
        }
    };
    annotate(&mut visit);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;

    #[test]
    fn counts_per_path() {
        let doc = generate::bib_sample();
        let s = Summary::of_document(&doc);
        let st = SummaryStats::collect(&s, &doc).unwrap();
        let book = s.node_on_path("/library/book").unwrap();
        assert_eq!(st.count(book), 2);
        let author = s.node_on_path("/library/book/author").unwrap();
        assert_eq!(st.count(author), 3);
        assert_eq!(st.total() as usize, doc.len());
    }

    #[test]
    fn fanout_estimates() {
        let doc = generate::bib_sample();
        let s = Summary::of_document(&doc);
        let st = SummaryStats::collect(&s, &doc).unwrap();
        let book = s.node_on_path("/library/book").unwrap();
        let author = s.node_on_path("/library/book/author").unwrap();
        assert!((st.fanout(book, author) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn non_conforming_document_rejected() {
        let d1 = generate::bib_sample();
        let d2 = generate::bib_document();
        let s = Summary::of_document(&d1);
        assert!(SummaryStats::collect(&s, &d2).is_none());
    }

    #[test]
    fn estimates_scale_with_document() {
        let d1 = generate::dblp(100, 1);
        let d2 = generate::dblp(400, 1);
        let s1 = Summary::of_document(&d1);
        let s2 = Summary::of_document(&d2);
        let st1 = SummaryStats::collect(&s1, &d1).unwrap();
        let st2 = SummaryStats::collect(&s2, &d2).unwrap();
        let a1 = s1.node_on_path("/dblp/article").unwrap();
        let a2 = s2.node_on_path("/dblp/article").unwrap();
        assert!(st2.count(a2) > 2 * st1.count(a1));
    }
}
