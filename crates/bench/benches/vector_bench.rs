//! E14 columnar-kernel grid: every workload of
//! `experiments::vector_workloads` timed under the three access paths of
//! the holistic twig join — the scalar linear sweep, the scalar
//! XB-tree skip-indexed path, and the columnar kernel over packed
//! pre/post/depth columns. All three produce identical solution sets
//! (asserted by the `vector_parity` driver and the
//! `columnar_matches_scalar` proptest); only wall-clock may differ.
//! Access structures are prebuilt outside the timed closures — the
//! store carries both, so steady-state serving never rebuilds them.

use algebra::{twig_join, twig_join_columnar, twig_join_indexed, IdColumns, SkipIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storage::IdStreamIndex;
use uload_bench::experiments::vector_workloads;
use xmltree::StructuralId;

fn columnar_vs_scalar(c: &mut Criterion) {
    let doc = xmltree::generate::xmark(15, 42);
    let idx = IdStreamIndex::build(&doc);
    let mut g = c.benchmark_group("e14_vector_parity");
    g.sample_size(10);
    for w in vector_workloads() {
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        let skips: Vec<SkipIndex> = streams.iter().map(|s| SkipIndex::build(s)).collect();
        let opts: Vec<Option<&SkipIndex>> = skips.iter().map(Some).collect();
        let cols: Vec<IdColumns> = streams
            .iter()
            .map(|s| IdColumns::from_pairs(s, algebra::DEFAULT_BLOCK))
            .collect();
        let col_refs: Vec<&IdColumns> = cols.iter().collect();
        g.bench_function(BenchmarkId::new("linear", &w.name), |b| {
            b.iter(|| twig_join(&pattern, &refs).len())
        });
        g.bench_function(BenchmarkId::new("skip", &w.name), |b| {
            b.iter(|| twig_join_indexed(&pattern, &refs, &opts).len())
        });
        g.bench_function(BenchmarkId::new("columnar", &w.name), |b| {
            b.iter(|| twig_join_columnar(&pattern, &col_refs).len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = columnar_vs_scalar
}
criterion_main!(benches);
