//! Engine ablation: the E3 (synthetic containment) and E6 (rewriting)
//! workloads under the four engine configurations — sequential vs
//! `threads = N` worker pools, cold vs shared [`CanonicalCache`]. The
//! parallel/cached runs must produce the same verdicts, counts and
//! rewriting sets as the baseline; only wall-clock may differ.

use containment::CanonicalCache;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewriting::EngineOptions;
use uload_bench::pattern_gen::GenConfig;
use uload_bench::{datasets, experiments};

const THREADS: usize = 4;

fn e3_containment_grid(c: &mut Criterion) {
    let ds = datasets::xmark_small();
    let run = |threads: usize, cache: Option<&CanonicalCache>| {
        experiments::synthetic_containment_with(
            &ds.summary,
            GenConfig::xmark,
            &[7],
            &[1],
            6,
            2024,
            threads,
            cache,
        )
    };
    let mut g = c.benchmark_group("e3_engine_ablation");
    g.sample_size(2);
    g.bench_function(BenchmarkId::new("threads", 1), |b| b.iter(|| run(1, None)));
    g.bench_function(BenchmarkId::new("threads", THREADS), |b| {
        b.iter(|| run(THREADS, None))
    });
    let cache = CanonicalCache::default();
    g.bench_function("threads1_cache", |b| b.iter(|| run(1, Some(&cache))));
    let cache_par = CanonicalCache::default();
    g.bench_function(BenchmarkId::new("threads_cache", THREADS), |b| {
        b.iter(|| run(THREADS, Some(&cache_par)))
    });
    g.finish();
}

fn e6_rewriting(c: &mut Criterion) {
    let ds = datasets::xmark_small();
    let mut g = c.benchmark_group("e6_engine_ablation");
    g.sample_size(2);
    g.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| experiments::sec5_6_with(&ds, &[4], 1, &EngineOptions::default()))
    });
    g.bench_function(BenchmarkId::new("threads", THREADS), |b| {
        let eng = EngineOptions {
            threads: THREADS,
            ..Default::default()
        };
        b.iter(|| experiments::sec5_6_with(&ds, &[4], 1, &eng))
    });
    let cache = CanonicalCache::default();
    g.bench_function(BenchmarkId::new("threads_cache", THREADS), |b| {
        let eng = EngineOptions {
            threads: THREADS,
            cache: Some(&cache),
            ..Default::default()
        };
        b.iter(|| experiments::sec5_6_with(&ds, &[4], 1, &eng))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = e3_containment_grid, e6_rewriting
}
criterion_main!(benches);
