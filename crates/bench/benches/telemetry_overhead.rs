//! Telemetry overhead on the serving path.
//!
//! The server's request loop differs between telemetry off and on in
//! exactly three ways: the metered stream (`stream_prepared_metered`
//! forces per-operator `ExecMetrics` collection), the absorb of those
//! counters into the registry's `exec.*` totals, and one log-linear
//! histogram record per request. This bench prices the whole bundle:
//!
//! * `metrics_off` — `stream_prepared` with profiling off, rows drained:
//!   the exact work a telemetry-disabled server performs per uncached
//!   request (minus the wire).
//! * `metrics_on` — `stream_prepared_metered`, rows drained, op metrics
//!   absorbed into a [`ServerMetrics`] registry, latency recorded into
//!   the uncached histogram.
//!
//! The `overhead_guard` target re-measures both paths with a manual
//! alternating A/B loop and asserts the metrics-on median stays within
//! 5% of metrics-off — the bound `ServerConfig::telemetry` documents.
//! The workload is the join-bearing two-view rewriting (navigation off)
//! so the meters genuinely count: a pure view scan would price an
//! all-zero absorb.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use obs::ExecMetrics;
use rewriting::{EngineConfig, PreparedQuery, Uload};
use storage::DocumentHandle;
use uload_server::ServerMetrics;

const QUERY: &str = r#"doc("X")//item/name"#;

fn setup() -> (Uload, DocumentHandle, PreparedQuery) {
    let doc = xmltree::generate::xmark(8, 42);
    let mut cfg = EngineConfig::default();
    cfg.rewrite.allow_navigation = false;
    let mut engine = Uload::builder()
        .document(&doc)
        .config(cfg)
        .build()
        .expect("engine over xmark");
    engine
        .add_view_text("v_items", "//item[id:s]", &doc)
        .expect("items view");
    engine
        .add_view_text("v_names", "//name[id:s,val]", &doc)
        .expect("names view");
    let prep = engine.prepare_query(QUERY).expect("prepare");
    (engine, DocumentHandle::new(doc), prep)
}

/// The telemetry-off request body: stream and drain.
fn run_off(engine: &Uload, prep: &PreparedQuery, handle: &DocumentHandle) -> u64 {
    let mut results = engine.stream_prepared(prep, handle).expect("stream");
    let mut rows = 0u64;
    for r in results.by_ref() {
        r.expect("row");
        rows += 1;
    }
    rows
}

/// The telemetry-on request body: metered stream, drain, absorb the op
/// counters into the registry, record the latency histogram — the same
/// sequence the server's `execute` performs per uncached request.
fn run_on(
    engine: &Uload,
    prep: &PreparedQuery,
    handle: &DocumentHandle,
    metrics: &ServerMetrics,
) -> u64 {
    let start = Instant::now();
    let mut results = engine
        .stream_prepared_metered(prep, handle)
        .expect("stream");
    let mut rows = 0u64;
    for r in results.by_ref() {
        r.expect("row");
        rows += 1;
    }
    let profile = results.stream_profile();
    let mut exec = ExecMetrics::default();
    for op in &profile.ops {
        exec.absorb(&op.metrics);
    }
    metrics.absorb_exec(&exec);
    metrics
        .residency_high_water
        .set_max(profile.peak_resident_tuples);
    metrics.rows_streamed.add(rows);
    metrics.requests.inc();
    metrics.record_uncached(start.elapsed());
    rows
}

fn telemetry_price_points(c: &mut Criterion) {
    let (engine, handle, prep) = setup();
    let metrics = ServerMetrics::new();
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.bench_function("metrics_off", |b| {
        b.iter(|| run_off(&engine, &prep, &handle))
    });
    g.bench_function("metrics_on", |b| {
        b.iter(|| run_on(&engine, &prep, &handle, &metrics))
    });
    g.finish();
}

/// Alternating A/B medians: the metrics-on path must stay within 5% of
/// metrics-off (small absolute slack absorbs scheduler jitter on short
/// runs).
fn overhead_guard(_c: &mut Criterion) {
    let (engine, handle, prep) = setup();
    let metrics = ServerMetrics::new();
    for _ in 0..3 {
        run_off(&engine, &prep, &handle);
        run_on(&engine, &prep, &handle, &metrics);
    }
    let reps = 21;
    let (mut off_ns, mut on_ns) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        let t = Instant::now();
        run_off(&engine, &prep, &handle);
        off_ns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        run_on(&engine, &prep, &handle, &metrics);
        on_ns.push(t.elapsed().as_nanos() as u64);
    }
    off_ns.sort_unstable();
    on_ns.sort_unstable();
    let (off, on) = (off_ns[reps / 2], on_ns[reps / 2]);
    let bound = off + off / 20 + 200_000; // 5% relative + 0.2ms absolute
    eprintln!(
        "telemetry_overhead guard: off p50 {off} ns, on p50 {on} ns ({:+.2}%)",
        (on as f64 / off as f64 - 1.0) * 100.0
    );
    assert!(
        on <= bound,
        "telemetry-on median {on} ns exceeds 5% bound over {off} ns"
    );
    // the metered runs really counted: the absorb was not a no-op
    assert!(
        metrics.exec_comparisons.get() > 0,
        "metered runs never recorded kernel counters"
    );
    assert_eq!(metrics.exec_uncached_ns.count(), (reps + 3) as u64);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = telemetry_price_points, overhead_guard
}
criterion_main!(benches);
