//! E2/E3 — containment benchmarks: XMark query-pattern self-containment
//! (Fig 4.14 top) and synthetic positive/negative tests by pattern size
//! (Fig 4.14 bottom), plus the early-exit comparison.

use containment::{contain, ContainOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uload_bench::{datasets, pattern_gen, pattern_gen::GenConfig, xmark_queries};

fn xmark_query_containment(c: &mut Criterion) {
    let ds = datasets::xmark_small();
    let pats = xmark_queries::patterns();
    let mut g = c.benchmark_group("fig4_14_queries");
    for (name, p) in pats.into_iter().take(6) {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| contain(&p, &p, &ds.summary, &ContainOptions::default()).contained)
        });
    }
    g.finish();
}

fn synthetic_by_size(c: &mut Criterion) {
    let ds = datasets::xmark_small();
    let mut g = c.benchmark_group("fig4_14_synthetic");
    for size in [3usize, 7, 11] {
        let cfg = GenConfig::xmark(size, 1);
        let pats = pattern_gen::generate_set(&ds.summary, &cfg, 8, 77);
        // positive: self-containment of the first pattern
        g.bench_with_input(BenchmarkId::new("positive", size), &size, |b, _| {
            b.iter(|| {
                contain(&pats[0], &pats[0], &ds.summary, &ContainOptions::default()).contained
            })
        });
        // negative: cross pair (almost surely not contained)
        g.bench_with_input(BenchmarkId::new("negative", size), &size, |b, _| {
            b.iter(|| {
                contain(&pats[0], &pats[1], &ds.summary, &ContainOptions::default()).contained
            })
        });
    }
    g.finish();
}

fn dblp_vs_xmark(c: &mut Criterion) {
    let xm = datasets::xmark_small();
    let db = datasets::dblp_small();
    let mut g = c.benchmark_group("fig4_15_summary_effect");
    let xp = pattern_gen::generate_set(&xm.summary, &GenConfig::xmark(7, 1), 4, 5);
    let dp = pattern_gen::generate_set(&db.summary, &GenConfig::dblp(7, 1), 4, 5);
    g.bench_function("xmark_summary", |b| {
        b.iter(|| contain(&xp[0], &xp[0], &xm.summary, &ContainOptions::default()).contained)
    });
    g.bench_function("dblp_summary", |b| {
        b.iter(|| contain(&dp[0], &dp[0], &db.summary, &ContainOptions::default()).contained)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = xmark_query_containment, synthetic_by_size, dblp_vs_xmark
}
criterion_main!(benches);
