//! E6 — §5.6: rewriting time against view sets of growing size, with the
//! structural-ID ablation (DESIGN.md choice 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uload_bench::{datasets, pattern_gen, pattern_gen::GenConfig};

fn rewriting_vs_views(c: &mut Criterion) {
    let ds = datasets::xmark_small();
    let q = &pattern_gen::generate_set(
        &ds.summary,
        &GenConfig::xmark(4, 1).with_optional(0.0),
        1,
        4242,
    )[0];
    let mut g = c.benchmark_group("sec5_6_rewriting");
    for n_views in [2usize, 5] {
        let mut views: Vec<(String, xam_core::Xam)> = pattern_gen::generate_set(
            &ds.summary,
            &GenConfig::xmark(3, 1).with_optional(0.0),
            n_views - 1,
            99,
        )
        .into_iter()
        .enumerate()
        .map(|(i, v)| (format!("n{i}"), v))
        .collect();
        views.push(("exact".into(), q.clone()));
        g.bench_with_input(BenchmarkId::new("positive", n_views), &views, |b, vs| {
            b.iter(|| rewriting::rewrite(q, vs, &ds.summary))
        });
        let cfg = rewriting::RewriteConfig {
            use_structural_ids: false,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("no_sids", n_views), &views, |b, vs| {
            b.iter(|| rewriting::rewrite_with_config(q, vs, &ds.summary, cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = rewriting_vs_views
}
criterion_main!(benches);
