//! Twig ablation: every workload of `experiments::twig_workloads` —
//! XMark descendant chains of depth 2–5 and child-axis stars of fanout
//! 1–4 — timed under the three physical operators: the holistic
//! `TwigStack` merge, the binary `StackTree` cascade (intermediate
//! solution lists materialized and re-sorted per step), and the naive
//! nested-loop cascade. All three produce identical solution sets
//! (asserted by the `twig_ablation` driver and the proptest suite);
//! only wall-clock may differ.

use algebra::twig_join;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storage::IdStreamIndex;
use uload_bench::experiments::{cascade_solutions, twig_workloads};
use xmltree::StructuralId;

fn twig_vs_cascades(c: &mut Criterion) {
    let doc = xmltree::generate::xmark(15, 42);
    let idx = IdStreamIndex::build(&doc);
    let mut g = c.benchmark_group("e10_twig_ablation");
    g.sample_size(10);
    for w in twig_workloads() {
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        g.bench_function(BenchmarkId::new("twig", &w.name), |b| {
            b.iter(|| twig_join(&pattern, &refs).len())
        });
        g.bench_function(BenchmarkId::new("stacktree", &w.name), |b| {
            b.iter(|| cascade_solutions(&w.parents, &w.axes, &streams, true).len())
        });
        g.bench_function(BenchmarkId::new("nestedloop", &w.name), |b| {
            b.iter(|| cascade_solutions(&w.parents, &w.axes, &streams, false).len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = twig_vs_cascades
}
criterion_main!(benches);
