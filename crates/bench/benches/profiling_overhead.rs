//! Profiling overhead on the E10 twig workloads.
//!
//! Three price points per workload:
//!
//! * `off` — the production path: plain plan evaluation with
//!   `Evaluator.metrics = None`, kernels monomorphized over `NoMeter`
//!   (counter calls compile to nothing). This must track the seed's
//!   unprofiled numbers — the off-path overhead claim in EXPERIMENTS.md.
//! * `metered` — the same plan with an `ExecMetrics` collector attached
//!   (counter increments paid, no per-operator re-materialization).
//! * `explain_analyze` — the full `eval_profiled` walk: every operator
//!   timed separately against materialized child outputs. Expected to be
//!   several times slower; it is an explicitly opted-in diagnosis mode.

use std::cell::RefCell;

use algebra::Evaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obs::ExecMetrics;
use uload_bench::experiments::{twig_catalog, twig_workloads};

fn profiling_price_points(c: &mut Criterion) {
    let doc = xmltree::generate::xmark(15, 42);
    let cat = twig_catalog(&doc);
    let mut g = c.benchmark_group("profiling_overhead");
    g.sample_size(10);
    for w in twig_workloads() {
        let plan = w.twig_plan();
        g.bench_function(BenchmarkId::new("off", &w.name), |b| {
            let ev = Evaluator::new(&cat);
            b.iter(|| ev.eval(&plan).unwrap().len())
        });
        g.bench_function(BenchmarkId::new("metered", &w.name), |b| {
            b.iter(|| {
                let mut ev = Evaluator::new(&cat);
                ev.metrics = Some(RefCell::new(ExecMetrics::default()));
                ev.eval(&plan).unwrap().len()
            })
        });
        g.bench_function(BenchmarkId::new("explain_analyze", &w.name), |b| {
            let ev = Evaluator::new(&cat);
            b.iter(|| ev.eval_profiled(&plan).unwrap().0.len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = profiling_price_points
}
criterion_main!(benches);
