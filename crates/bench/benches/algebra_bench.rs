//! E8 + ablation 4 — algebra benchmarks: the QEP catalogue plans and the
//! StackTree vs nested-loop structural-join comparison (DESIGN.md).

use algebra::{Axis, Evaluator, JoinKind, LogicalPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use summary::Summary;
use xmltree::generate;

fn stacktree_vs_nested_loop(c: &mut Criterion) {
    let doc = generate::xmark(40, 42);
    let mut cat = algebra::Catalog::new();
    cat.insert("items", algebra::eval::tag_derived(&doc, "item"));
    cat.insert("keywords", algebra::eval::tag_derived(&doc, "keyword"));
    let plan = LogicalPlan::scan("items")
        .rename(&["i_id", "i_tag", "i_val", "i_cont"])
        .struct_join(
            LogicalPlan::scan("keywords").rename(&["k_id", "k_tag", "k_val", "k_cont"]),
            "i_id",
            "k_id",
            Axis::Descendant,
            JoinKind::Inner,
        )
        .project(&["i_id", "k_id"]);
    let mut g = c.benchmark_group("structural_join");
    g.bench_function("stacktree", |b| {
        let ev = Evaluator::with_document(&cat, &doc);
        b.iter(|| ev.eval(&plan).unwrap().len())
    });
    g.bench_function("nested_loop", |b| {
        let mut ev = Evaluator::with_document(&cat, &doc);
        ev.config.use_stacktree = false;
        b.iter(|| ev.eval(&plan).unwrap().len())
    });
    g.finish();
}

fn qep_plans(c: &mut Criterion) {
    let doc = generate::bib_document();
    let s = Summary::of_document(&doc);
    let mut g = c.benchmark_group("qep_catalogue");
    for (name, q) in [
        ("qep1", storage::qep::qep1(&doc)),
        ("qep3", storage::qep::qep3(&doc)),
        ("qep6", storage::qep::qep6(&doc)),
        ("qep7", storage::qep::qep7(&doc, &s)),
        ("qep11", storage::qep::qep11(&doc, &s)),
        ("qep13", storage::qep::qep13(&doc, &s)),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let ev = Evaluator::with_document(&q.catalog, &doc);
            b.iter(|| ev.eval(&q.plan).unwrap().len())
        });
    }
    g.finish();
}

fn xam_evaluation(c: &mut Criterion) {
    let doc = generate::xmark(10, 42);
    let xam = xam_core::parse_xam("//item[id:s]{ /name[val], //n? li:listitem[id:s] }").unwrap();
    c.bench_function("xam_evaluate_xmark", |b| {
        b.iter(|| xam_core::evaluate(&xam, &doc).unwrap().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = stacktree_vs_nested_loop, qep_plans, xam_evaluation
}
criterion_main!(benches);
