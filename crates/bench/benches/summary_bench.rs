//! E1 — summary construction and conformance (Figure 4.13's substrate):
//! summaries are built in linear time and stay small as documents grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use summary::Summary;
use xmltree::generate;

fn summary_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary_construction");
    for scale in [5usize, 20, 80] {
        let doc = generate::xmark(scale, 42);
        g.bench_with_input(
            BenchmarkId::new("xmark_nodes", doc.len()),
            &doc,
            |b, doc| b.iter(|| Summary::of_document(doc)),
        );
    }
    let dblp = generate::dblp(2000, 7);
    g.bench_with_input(BenchmarkId::new("dblp_nodes", dblp.len()), &dblp, |b, d| {
        b.iter(|| Summary::of_document(d))
    });
    g.finish();
}

fn conformance_check(c: &mut Criterion) {
    let doc = generate::xmark(10, 42);
    let s = Summary::of_document(&doc);
    c.bench_function("summary_conformance", |b| b.iter(|| s.conforms(&doc)));
    c.bench_function("summary_classify", |b| b.iter(|| s.classify(&doc)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = summary_construction, conformance_check
}
criterion_main!(benches);
