//! Pipeline ablation: every E11 workload's binary-cascade plan run
//! three ways — fully materialized through `Evaluator::eval`, drained
//! batch by batch through the pipelined cursor executor, and streamed
//! with a LIMIT-style consumer that pulls ten rows and closes the
//! cursor tree. Both full paths produce identical relations (asserted
//! by the `pipeline_ablation` driver and the proptest suite); the
//! LIMIT run demonstrates early-termination cost, which the
//! materialized path cannot price below a full evaluation.

use algebra::{build_cursor, CursorConfig, Evaluator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uload_bench::experiments::{pipeline_workloads, twig_catalog};

fn streamed_vs_materialized(c: &mut Criterion) {
    let doc = xmltree::generate::xmark(15, 42);
    let catalog = twig_catalog(&doc);
    let ccfg = CursorConfig {
        batch_size: 1024,
        ..Default::default()
    };
    let mut g = c.benchmark_group("e11_pipeline_ablation");
    g.sample_size(10);
    for w in pipeline_workloads() {
        let plan = w.cascade_plan();
        g.bench_function(BenchmarkId::new("materialized", &w.name), |b| {
            b.iter(|| Evaluator::new(&catalog).eval(&plan).unwrap().len())
        });
        g.bench_function(BenchmarkId::new("streamed", &w.name), |b| {
            b.iter(|| {
                let mut exec = build_cursor(&plan, &catalog, None, &ccfg).unwrap();
                let mut n = 0usize;
                while let Some(batch) = exec.next_batch().unwrap() {
                    n += batch.len();
                }
                exec.close();
                n
            })
        });
        g.bench_function(BenchmarkId::new("limit10", &w.name), |b| {
            b.iter(|| {
                let mut exec = build_cursor(&plan, &catalog, None, &ccfg).unwrap();
                let mut n = 0usize;
                while n < 10 {
                    match exec.next_batch().unwrap() {
                        Some(batch) => n += batch.len(),
                        None => break,
                    }
                }
                exec.close();
                n
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = streamed_vs_materialized
}
criterion_main!(benches);
