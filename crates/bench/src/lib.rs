//! # uload-bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation
//! (Sections 4.6 and 5.6), plus the qualitative experiments of §2.1 and
//! §4.5, over the synthetic stand-ins for the paper's datasets
//! (see DESIGN.md, *Substitutions*).
//!
//! * [`datasets`] — the documents & summaries of Figure 4.13;
//! * [`xmark_queries`] — the 20 XMark benchmark query patterns;
//! * [`pattern_gen`] — the §4.6 random satisfiable-pattern generator
//!   (n = 3..13 nodes, fanout 3, P(\*) = 0.1, P(value pred) = 0.2,
//!   P(`//`) = 0.5, P(optional) = 0.5, 1–3 return nodes);
//! * [`experiments`] — drivers computing each table/figure's data series,
//!   shared by the `experiments` binary and the Criterion benches.

pub mod datasets;
pub mod experiments;
pub mod pattern_gen;
pub mod xmark_queries;
