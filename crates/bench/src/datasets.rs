//! The experiment datasets (Figure 4.13): synthetic stand-ins for the
//! paper's documents, at scales keeping laptop runtimes reasonable while
//! preserving the table's shape — summaries are small and barely grow
//! with document size.

use summary::Summary;
use xmltree::{generate, Document};

/// One row of the Figure 4.13 table.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    pub name: &'static str,
    /// Number of nodes (`N` in the table).
    pub n: usize,
    /// Summary size `|S|`.
    pub summary_size: usize,
    /// Strong (`+`/`1`) edges `n_s`.
    pub strong_edges: usize,
    /// One-to-one edges `n_1`.
    pub one_to_one_edges: usize,
}

/// A named document + its summary.
pub struct Dataset {
    pub name: &'static str,
    pub doc: Document,
    pub summary: Summary,
}

impl Dataset {
    fn new(name: &'static str, doc: Document) -> Dataset {
        let summary = Summary::of_document(&doc);
        Dataset { name, doc, summary }
    }

    pub fn row(&self) -> DatasetRow {
        DatasetRow {
            name: self.name,
            n: self.doc.len(),
            summary_size: self.summary.len(),
            strong_edges: self.summary.strong_edge_count(),
            one_to_one_edges: self.summary.one_to_one_edge_count(),
        }
    }
}

/// The small XMark document (≈ the paper's XMark11), cached summary.
pub fn xmark_small() -> Dataset {
    Dataset::new("XMark-small", generate::xmark(15, 42))
}

/// The medium XMark document (≈ XMark111).
pub fn xmark_medium() -> Dataset {
    Dataset::new("XMark-medium", generate::xmark(120, 42))
}

/// The large XMark document (≈ XMark233).
pub fn xmark_large() -> Dataset {
    Dataset::new("XMark-large", generate::xmark(250, 42))
}

/// DBLP-like, small (≈ DBLP'02).
pub fn dblp_small() -> Dataset {
    Dataset::new("DBLP-small", generate::dblp(3000, 7))
}

/// DBLP-like, larger (≈ DBLP'05).
pub fn dblp_large() -> Dataset {
    Dataset::new("DBLP-large", generate::dblp(7000, 7))
}

pub fn shakespeare() -> Dataset {
    Dataset::new("Shakespeare", generate::shakespeare(20, 3))
}

pub fn nasa() -> Dataset {
    Dataset::new("NASA", generate::nasa(150, 4))
}

pub fn swissprot() -> Dataset {
    Dataset::new("SwissProt", generate::swissprot(250, 5))
}

/// All Figure 4.13 rows, in the paper's order.
pub fn all() -> Vec<Dataset> {
    vec![
        shakespeare(),
        nasa(),
        swissprot(),
        xmark_small(),
        xmark_medium(),
        xmark_large(),
        dblp_small(),
        dblp_large(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmark_summary_stable_across_scales() {
        let a = xmark_small();
        let b = xmark_medium();
        assert_eq!(a.summary.len(), b.summary.len());
        assert!(b.doc.len() > 5 * a.doc.len());
    }

    #[test]
    fn dblp_summaries_are_small_and_constrained() {
        let d = dblp_small();
        let row = d.row();
        assert!(row.summary_size < 80);
        assert!(row.strong_edges > 10, "{row:?}");
        assert!(row.one_to_one_edges > 5, "{row:?}");
    }

    #[test]
    fn table_has_eight_rows() {
        // use the cheap datasets only to keep the test fast
        let rows: Vec<DatasetRow> =
            vec![shakespeare().row(), xmark_small().row(), dblp_small().row()];
        for r in &rows {
            assert!(r.n > 0 && r.summary_size > 0);
            assert!(r.strong_edges >= r.one_to_one_edges || r.strong_edges > 0);
        }
    }
}
