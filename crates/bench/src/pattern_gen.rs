//! The §4.6 random pattern generator: synthetic, **satisfiable** patterns
//! over a given summary.
//!
//! Patterns are sampled *from the summary itself* (walking ancestor chains
//! of randomly chosen return-label nodes), so satisfiability holds by
//! construction; they are then decorated per the paper's parameters —
//! nodes become `*` with probability 0.1, carry a `v = c` predicate (10
//! distinct constants) with probability 0.2, edges are `//` with
//! probability 0.5 and optional with probability 0.5.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use summary::{Summary, SummaryNodeId};
use xam_core::ast::{Axis, EdgeSem, Formula, IdKind, Xam, XamEdge, XamNode, XamNodeId};
use xmltree::NodeKind;

/// Generator parameters (paper defaults).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Target number of pattern nodes.
    pub size: usize,
    /// Number of return nodes.
    pub return_count: usize,
    /// Labels the return nodes must carry (cycled).
    pub return_labels: Vec<String>,
    pub p_star: f64,
    pub p_value_pred: f64,
    pub p_descendant: f64,
    pub p_optional: f64,
}

impl GenConfig {
    /// The paper's §4.6 settings for a given size and return count, with
    /// the XMark return labels (item, name, keyword).
    pub fn xmark(size: usize, return_count: usize) -> GenConfig {
        GenConfig {
            size,
            return_count,
            return_labels: vec!["item".into(), "name".into(), "keyword".into()],
            p_star: 0.1,
            p_value_pred: 0.2,
            p_descendant: 0.5,
            p_optional: 0.5,
        }
    }

    /// DBLP return labels (article, author, title).
    pub fn dblp(size: usize, return_count: usize) -> GenConfig {
        GenConfig {
            return_labels: vec!["article".into(), "author".into(), "title".into()],
            ..GenConfig::xmark(size, return_count)
        }
    }

    pub fn with_optional(mut self, p: f64) -> GenConfig {
        self.p_optional = p;
        self
    }
}

/// Generate one satisfiable pattern; `None` if the summary lacks the
/// requested return labels.
pub fn generate(s: &Summary, cfg: &GenConfig, rng: &mut SmallRng) -> Option<Xam> {
    // 1. choose return target summary nodes
    let mut targets: Vec<SummaryNodeId> = Vec::new();
    for i in 0..cfg.return_count {
        let label = &cfg.return_labels[i % cfg.return_labels.len()];
        let cands: Vec<SummaryNodeId> = s
            .nodes_with_label(label)
            .filter(|&n| s.kind(n) == NodeKind::Element)
            .collect();
        if cands.is_empty() {
            return None;
        }
        targets.push(cands[rng.gen_range(0..cands.len())]);
    }
    // 2. root = deepest common ancestor of the targets
    let mut lca = targets[0];
    for &t in &targets[1..] {
        lca = common_ancestor(s, lca, t);
    }
    let mut xam = Xam::top();
    let mut name_counter = 0u32;
    let fresh = |base: &str, c: &mut u32| {
        *c += 1;
        format!("{base}{c}")
    };
    let mut root = XamNode::star(fresh(s.label(lca), &mut name_counter));
    root.tag_predicate = Some(s.label(lca).to_string());
    root.edge = XamEdge::descendant();
    let root_id = xam.add_child(XamNodeId::TOP, root);
    // summary node → pattern node, for chain sharing
    let mut placed: Vec<(SummaryNodeId, XamNodeId)> = vec![(lca, root_id)];
    // 3. chains from the LCA to each target, keeping intermediates with
    //    probability tuned to approach the requested size
    let budget = cfg.size.saturating_sub(1 + cfg.return_count);
    let keep_prob = if budget == 0 { 0.0 } else { 0.45 };
    for (i, &t) in targets.iter().enumerate() {
        let chain = path_between(s, lca, t);
        let mut cur = root_id;
        let mut cur_summary = lca;
        for (j, &sn) in chain.iter().enumerate() {
            let last = j == chain.len() - 1;
            let keep = last || rng.gen_bool(keep_prob);
            if !keep {
                continue;
            }
            // reuse an existing pattern node for this summary node if it is
            // a child of `cur` already (never for the return node itself:
            // each return target gets its own node)
            if !last {
                if let Some(&(_, existing)) = placed
                    .iter()
                    .find(|(psn, pid)| *psn == sn && xam.parent(*pid) == Some(cur))
                {
                    cur = existing;
                    cur_summary = sn;
                    continue;
                }
            }
            let direct = s.parent(sn) == Some(cur_summary);
            let axis = if !direct || rng.gen_bool(cfg.p_descendant) {
                Axis::Descendant
            } else {
                Axis::Child
            };
            let mut node = XamNode::star(fresh(s.label(sn), &mut name_counter));
            node.is_attribute = s.kind(sn) == NodeKind::Attribute;
            // `*` only on child edges: a `*` descendant node matches huge
            // swaths of the summary and makes the canonical model explode
            // far beyond what the paper's experiment exhibits
            node.tag_predicate = if !last && axis == Axis::Child && rng.gen_bool(cfg.p_star) {
                None
            } else {
                Some(s.label(sn).to_string())
            };
            let optional = !last && rng.gen_bool(cfg.p_optional);
            node.edge = XamEdge {
                axis,
                sem: if optional {
                    EdgeSem::Outer
                } else {
                    EdgeSem::Join
                },
            };
            if !last && rng.gen_bool(cfg.p_value_pred) {
                node.value_predicate = Formula::eq_int(rng.gen_range(0..10));
            }
            if last {
                node.stores_id = Some(IdKind::Structural);
            }
            cur = xam.add_child(cur, node);
            cur_summary = sn;
            placed.push((sn, cur));
            let _ = i;
        }
        // a target equal to the LCA (empty chain) returns the root itself
        if xam.node(cur).stores_id.is_none() {
            xam.node_mut(cur).stores_id = Some(IdKind::Structural);
        }
    }
    // 4. pad with extra branch nodes up to the requested size (fanout ≤ 3)
    let mut guard = 0;
    while xam.pattern_size() < cfg.size && guard < 50 {
        guard += 1;
        let anchor_idx = rng.gen_range(0..placed.len());
        let (asn, apid) = placed[anchor_idx];
        if xam.children(apid).len() >= 3 {
            continue;
        }
        let desc = s.descendants(asn);
        if desc.is_empty() {
            continue;
        }
        let sn = desc[rng.gen_range(0..desc.len())];
        if s.kind(sn) == NodeKind::Text {
            continue;
        }
        let mut node = XamNode::star(fresh(s.label(sn), &mut name_counter));
        node.is_attribute = s.kind(sn) == NodeKind::Attribute;
        let axis = if s.parent(sn) == Some(asn) && !rng.gen_bool(cfg.p_descendant) {
            Axis::Child
        } else {
            Axis::Descendant
        };
        node.tag_predicate = if axis == Axis::Child && rng.gen_bool(cfg.p_star) {
            None
        } else {
            Some(s.label(sn).to_string())
        };
        let optional = rng.gen_bool(cfg.p_optional);
        node.edge = XamEdge {
            axis,
            sem: if optional {
                EdgeSem::Outer
            } else {
                EdgeSem::Join
            },
        };
        if rng.gen_bool(cfg.p_value_pred) {
            node.value_predicate = Formula::eq_int(rng.gen_range(0..10));
        }
        let id = xam.add_child(apid, node);
        placed.push((sn, id));
    }
    Some(xam)
}

/// A cheap upper bound on the number of summary embeddings of a pattern:
/// the product over `//`-edge nodes of the global count of their label
/// (`/`-edge and label-free-child counts bound tighter but cost more).
pub fn embedding_bound(s: &Summary, p: &Xam) -> f64 {
    let mut label_counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for n in s.all_nodes() {
        *label_counts.entry(s.label(n)).or_insert(0) += 1;
    }
    let mut bound = 1.0f64;
    for n in p.pattern_nodes() {
        let node = p.node(n);
        if node.edge.axis == Axis::Descendant {
            let c = match &node.tag_predicate {
                Some(l) => *label_counts.get(l.as_str()).unwrap_or(&1),
                None => s.len(),
            };
            bound *= c.max(1) as f64;
        }
    }
    bound
}

/// Generate a set of patterns with one RNG seed. Patterns whose canonical
/// model would explode (embedding bound > 20000) are rejected and redrawn —
/// the paper's measured models stay small ("for practical queries,
/// |mod_S(p)| is much smaller", §4.4.1), and this keeps the experiment in
/// that regime.
pub fn generate_set(s: &Summary, cfg: &GenConfig, count: usize, seed: u64) -> Vec<Xam> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut guard = 0;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        if let Some(p) = generate(s, cfg, &mut rng) {
            if embedding_bound(s, &p) <= 20000.0 {
                out.push(p);
            }
        }
    }
    out
}

fn depth_of(s: &Summary, n: SummaryNodeId) -> usize {
    s.depth(n) as usize
}

fn common_ancestor(s: &Summary, a: SummaryNodeId, b: SummaryNodeId) -> SummaryNodeId {
    let (mut x, mut y) = (a, b);
    while depth_of(s, x) > depth_of(s, y) {
        x = s.parent(x).unwrap();
    }
    while depth_of(s, y) > depth_of(s, x) {
        y = s.parent(y).unwrap();
    }
    while x != y {
        x = s.parent(x).unwrap();
        y = s.parent(y).unwrap();
    }
    x
}

/// Summary nodes strictly between `anc` (exclusive) and `desc`
/// (inclusive), top-down. Empty when `desc == anc`.
fn path_between(s: &Summary, anc: SummaryNodeId, desc: SummaryNodeId) -> Vec<SummaryNodeId> {
    let mut chain = Vec::new();
    let mut cur = desc;
    while cur != anc {
        chain.push(cur);
        cur = s.parent(cur).expect("anc must be an ancestor");
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn generated_patterns_are_satisfiable() {
        let ds = datasets::xmark_small();
        for size in [3, 7, 11] {
            for r in [1, 2, 3] {
                let cfg = GenConfig::xmark(size, r);
                let pats = generate_set(&ds.summary, &cfg, 10, 99);
                assert!(!pats.is_empty());
                for p in &pats {
                    assert!(
                        containment::satisfiable(p, &ds.summary),
                        "unsatisfiable generated pattern:\n{p}"
                    );
                    assert_eq!(p.return_nodes().len(), r, "{p}");
                }
            }
        }
    }

    #[test]
    fn sizes_roughly_match() {
        let ds = datasets::xmark_small();
        let cfg = GenConfig::xmark(9, 2);
        let pats = generate_set(&ds.summary, &cfg, 20, 7);
        let avg: f64 =
            pats.iter().map(|p| p.pattern_size() as f64).sum::<f64>() / pats.len() as f64;
        assert!(avg >= 4.0, "patterns too small: {avg}");
    }

    #[test]
    fn optional_probability_respected() {
        let ds = datasets::xmark_small();
        let none = GenConfig::xmark(9, 2).with_optional(0.0);
        let pats = generate_set(&ds.summary, &none, 10, 3);
        for p in &pats {
            assert!(
                p.pattern_nodes().all(|n| !p.node(n).edge.sem.is_optional()),
                "optional edge at p_optional = 0"
            );
        }
    }

    #[test]
    fn dblp_config_works() {
        let ds = datasets::dblp_small();
        let cfg = GenConfig::dblp(7, 2);
        let pats = generate_set(&ds.summary, &cfg, 10, 17);
        assert!(!pats.is_empty());
        for p in &pats {
            assert!(containment::satisfiable(p, &ds.summary));
        }
    }
}
