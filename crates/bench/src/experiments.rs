//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). Shared by the
//! `experiments` binary (which prints the series) and the Criterion
//! benches (which time the hot kernels).

use std::time::Instant;

use containment::{contain, CanonicalCache, ContainOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rewriting::EngineOptions;
use summary::Summary;
use xam_core::Xam;

use crate::datasets::{self, Dataset, DatasetRow};
use crate::pattern_gen::{self, GenConfig};
use crate::xmark_queries;

// --------------------------------------------------------------------
// E1 — Figure 4.13: documents and their summaries

pub fn fig4_13() -> Vec<DatasetRow> {
    datasets::all().iter().map(|d| d.row()).collect()
}

// --------------------------------------------------------------------
// E2 — Figure 4.14 (top): XMark query-pattern self-containment

#[derive(Debug, Clone)]
pub struct QueryContainmentRow {
    pub name: String,
    pub pattern_size: usize,
    pub model_size: usize,
    pub micros: f64,
}

/// For each XMark query pattern: `|mod_S(p)|` and the time of the
/// self-containment test under the XMark summary.
pub fn fig4_14_queries(ds: &Dataset) -> Vec<QueryContainmentRow> {
    let mut rows = Vec::new();
    let mut pats = xmark_queries::patterns();
    // replace q7 by its multi-variable version (the paper's outlier)
    if let Some(p) = pats.iter_mut().find(|(n, _)| n == "q7") {
        p.1 = xmark_queries::q7_multivariable();
    }
    for (name, p) in pats {
        let t0 = Instant::now();
        let outcome = contain(&p, &p, &ds.summary, &ContainOptions::default());
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        assert!(outcome.contained, "{name} must be self-contained");
        rows.push(QueryContainmentRow {
            name,
            pattern_size: p.pattern_size(),
            model_size: outcome.model_size,
            micros,
        });
    }
    rows
}

// --------------------------------------------------------------------
// E3/E4/E5 — Figure 4.14 (bottom) & 4.15: synthetic pattern containment

#[derive(Debug, Clone)]
pub struct SyntheticPoint {
    pub size: usize,
    pub return_count: usize,
    /// Average time of *positive* containment tests (µs).
    pub positive_us: f64,
    pub positives: usize,
    /// Average time of *negative* tests (µs).
    pub negative_us: f64,
    pub negatives: usize,
    /// Average canonical-model size over the positive tests.
    pub avg_model: f64,
}

/// The §4.6 synthetic experiment: for each pattern size and return count,
/// generate `set_size` satisfiable patterns and test `p_i ⊆_S p_j` for
/// `j = i..set_size`, averaging positive and negative times separately.
pub fn synthetic_containment(
    summary: &Summary,
    mk_cfg: impl Fn(usize, usize) -> GenConfig,
    sizes: &[usize],
    return_counts: &[usize],
    set_size: usize,
    seed: u64,
) -> Vec<SyntheticPoint> {
    synthetic_containment_with(
        summary,
        mk_cfg,
        sizes,
        return_counts,
        set_size,
        seed,
        1,
        None,
    )
}

/// One worker's share of a containment grid cell: all `p_i ⊆_S p_j`
/// tests with `i ≡ worker (mod stride)`. Returns
/// `(pos_µs, #pos, neg_µs, #neg, Σ model sizes)`.
fn containment_cell(
    pats: &[Xam],
    worker: usize,
    stride: usize,
    summary: &Summary,
    cache: Option<&CanonicalCache>,
) -> (f64, usize, f64, usize, usize) {
    let mut opts = ContainOptions::default();
    if let Some(c) = cache {
        opts = opts.with_cache(c);
    }
    let (mut pos_t, mut neg_t) = (0.0f64, 0.0f64);
    let (mut pos_n, mut neg_n) = (0usize, 0usize);
    let mut model_sum = 0usize;
    for i in (worker..pats.len()).step_by(stride.max(1)) {
        for j in i..pats.len() {
            let t0 = Instant::now();
            let o = contain(&pats[i], &pats[j], summary, &opts);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            if o.contained {
                pos_t += us;
                pos_n += 1;
                model_sum += o.model_size;
            } else {
                neg_t += us;
                neg_n += 1;
            }
        }
    }
    (pos_t, pos_n, neg_t, neg_n, model_sum)
}

/// As [`synthetic_containment`], but the `p_i ⊆_S p_j` grid of each cell
/// is split round-robin over `threads` scoped workers, optionally sharing
/// a [`CanonicalCache`]. Counts and model sizes are identical to the
/// sequential run; only wall-clock changes.
#[allow(clippy::too_many_arguments)]
pub fn synthetic_containment_with(
    summary: &Summary,
    mk_cfg: impl Fn(usize, usize) -> GenConfig,
    sizes: &[usize],
    return_counts: &[usize],
    set_size: usize,
    seed: u64,
    threads: usize,
    cache: Option<&CanonicalCache>,
) -> Vec<SyntheticPoint> {
    let mut out = Vec::new();
    for &size in sizes {
        for &r in return_counts {
            let cfg = mk_cfg(size, r);
            let pats = pattern_gen::generate_set(summary, &cfg, set_size, seed + size as u64);
            let workers = threads.max(1).min(pats.len().max(1));
            let parts: Vec<(f64, usize, f64, usize, usize)> = if workers <= 1 {
                vec![containment_cell(&pats, 0, 1, summary, cache)]
            } else {
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let pats = &pats;
                            scope.spawn(move || containment_cell(pats, w, workers, summary, cache))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("containment worker panicked"))
                        .collect()
                })
            };
            let (mut pos_t, mut neg_t) = (0.0f64, 0.0f64);
            let (mut pos_n, mut neg_n) = (0usize, 0usize);
            let mut model_sum = 0usize;
            for (pt, pn, nt, nn, ms) in parts {
                pos_t += pt;
                pos_n += pn;
                neg_t += nt;
                neg_n += nn;
                model_sum += ms;
            }
            out.push(SyntheticPoint {
                size,
                return_count: r,
                positive_us: if pos_n > 0 { pos_t / pos_n as f64 } else { 0.0 },
                positives: pos_n,
                negative_us: if neg_n > 0 { neg_t / neg_n as f64 } else { 0.0 },
                negatives: neg_n,
                avg_model: if pos_n > 0 {
                    model_sum as f64 / pos_n as f64
                } else {
                    0.0
                },
            });
        }
    }
    out
}

/// Figure 4.14 bottom: synthetic containment on the XMark summary.
pub fn fig4_14_synthetic(ds: &Dataset, set_size: usize) -> Vec<SyntheticPoint> {
    synthetic_containment(
        &ds.summary,
        GenConfig::xmark,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2024,
    )
}

/// Figure 4.15: the same experiment on the DBLP summary (the paper finds
/// it ≈4× faster than XMark).
pub fn fig4_15(ds: &Dataset, set_size: usize) -> Vec<SyntheticPoint> {
    synthetic_containment(
        &ds.summary,
        GenConfig::dblp,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2025,
    )
}

/// E5 — the optional-edge ablation of §4.6: containment time vs the
/// optional-edge probability (the paper reports ≈2× slowdown at 50%).
pub fn optional_ablation(ds: &Dataset, set_size: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for p_opt in [0.0, 0.5, 1.0] {
        let cfg = GenConfig::xmark(9, 2).with_optional(p_opt);
        let pats = pattern_gen::generate_set(&ds.summary, &cfg, set_size, 777);
        let t0 = Instant::now();
        let mut n = 0;
        for i in 0..pats.len() {
            for j in i..pats.len() {
                let _ = contain(&pats[i], &pats[j], &ds.summary, &ContainOptions::default());
                n += 1;
            }
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
        out.push((p_opt, us));
    }
    out
}

// --------------------------------------------------------------------
// E6 — §5.6: rewriting performance

#[derive(Debug, Clone)]
pub struct RewritePoint {
    pub n_views: usize,
    /// Average time when a rewriting exists (µs).
    pub positive_us: f64,
    /// Average time when none exists (µs).
    pub negative_us: f64,
    /// Rewritings found per positive trial, averaged.
    pub avg_found: f64,
    /// As positive_us, but with structural-ID reasoning disabled.
    pub positive_no_sid_us: f64,
    /// Fraction of positive trials still rewritable without structural IDs.
    pub no_sid_found_frac: f64,
}

/// Rewriting time vs. view-set size: each trial rewrites a generated
/// query pattern against `n` views; in positive trials the view set
/// contains views that cover the query (its own pattern plus fragments),
/// in negative trials only unrelated views.
pub fn sec5_6(ds: &Dataset, view_counts: &[usize], trials: usize) -> Vec<RewritePoint> {
    sec5_6_with(ds, view_counts, trials, &EngineOptions::default())
}

/// As [`sec5_6`], but every rewrite runs through the given engine
/// context (worker threads for candidate verification, shared cache).
pub fn sec5_6_with(
    ds: &Dataset,
    view_counts: &[usize],
    trials: usize,
    eng: &EngineOptions,
) -> Vec<RewritePoint> {
    let mut rng = SmallRng::seed_from_u64(31337);
    let _ = &mut rng;
    let mut out = Vec::new();
    for &n_views in view_counts {
        let mut pos_t = 0.0;
        let mut neg_t = 0.0;
        let mut pos_found = 0.0;
        let mut nosid_t = 0.0;
        let mut nosid_found = 0usize;
        for trial in 0..trials {
            let qcfg = GenConfig::xmark(4, 1).with_optional(0.0);
            let qs = pattern_gen::generate_set(&ds.summary, &qcfg, 1, 9000 + trial as u64);
            let q = &qs[0];
            // noise views: other generated patterns with IDs stored
            let noise = pattern_gen::generate_set(
                &ds.summary,
                &GenConfig::xmark(3, 1).with_optional(0.0),
                n_views.saturating_sub(1),
                500 + trial as u64,
            );
            let mut views: Vec<(String, Xam)> = noise
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("noise{i}"), v))
                .collect();
            // negative trial: noise only
            let t0 = Instant::now();
            let (rw_neg, _) = rewriting::rewrite_with_engine(
                q,
                &views,
                &ds.summary,
                rewriting::RewriteConfig::default(),
                eng,
            );
            neg_t += t0.elapsed().as_secs_f64() * 1e6;
            let _ = rw_neg;
            // positive trial: add the covering view
            views.push(("exact".into(), q.clone()));
            let t0 = Instant::now();
            let (rw_pos, _) = rewriting::rewrite_with_engine(
                q,
                &views,
                &ds.summary,
                rewriting::RewriteConfig::default(),
                eng,
            );
            pos_t += t0.elapsed().as_secs_f64() * 1e6;
            pos_found += rw_pos.len() as f64;
            // ablation: structural IDs off
            let cfg = rewriting::RewriteConfig {
                use_structural_ids: false,
                ..Default::default()
            };
            let t0 = Instant::now();
            let (rw_nosid, _) = rewriting::rewrite_with_engine(q, &views, &ds.summary, cfg, eng);
            nosid_t += t0.elapsed().as_secs_f64() * 1e6;
            if !rw_nosid.is_empty() {
                nosid_found += 1;
            }
        }
        out.push(RewritePoint {
            n_views,
            positive_us: pos_t / trials as f64,
            negative_us: neg_t / trials as f64,
            avg_found: pos_found / trials as f64,
            positive_no_sid_us: nosid_t / trials as f64,
            no_sid_found_frac: nosid_found as f64 / trials as f64,
        });
    }
    out
}

// --------------------------------------------------------------------
// E8 — the §2.1 QEP catalogue

#[derive(Debug, Clone)]
pub struct QepRow {
    pub name: &'static str,
    pub operators: usize,
    pub rows: usize,
    pub micros: f64,
}

pub fn qep_catalogue() -> Vec<QepRow> {
    use storage::qep;
    let doc = xmltree::generate::bib_document();
    let sec_doc = xmltree::generate::bib_document_with_sections();
    let s = Summary::of_document(&doc);
    let s_sec = Summary::of_document(&sec_doc);
    let mut rows = Vec::new();
    let mut run = |q: qep::Qep, doc: &xmltree::Document| {
        let ev = algebra::Evaluator::with_document(&q.catalog, doc);
        let t0 = Instant::now();
        let rel = ev.eval(&q.plan).expect("QEP must evaluate");
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        rows.push(QepRow {
            name: q.name,
            operators: q.operators(),
            rows: rel.len(),
            micros,
        });
    };
    run(qep::qep1(&doc), &doc);
    run(qep::qep3(&doc), &doc);
    run(qep::qep4(&doc), &doc);
    run(qep::qep5(&doc), &doc);
    run(qep::qep6(&doc), &doc);
    run(qep::qep7(&doc, &s), &doc);
    run(qep::qep8(&sec_doc, &s_sec), &sec_doc);
    run(qep::qep9(&sec_doc, &s_sec), &sec_doc);
    run(qep::qep10(&doc, &s), &doc);
    run(qep::qep11(&doc, &s), &doc);
    run(qep::qep12(&doc, &s), &doc);
    run(qep::qep13(&doc, &s), &doc);
    rows
}

// --------------------------------------------------------------------
// E9 — §4.5 minimization

pub fn minimize_demo() -> Vec<String> {
    let doc =
        xmltree::parse_document("<a><f><d><e>1</e></d></f><d><x><e>2</e></x></d></a>").unwrap();
    let s = Summary::of_document(&doc);
    let p = xam_core::parse_xam("//a{ //f{ //d{ //e[id:s] } } }").unwrap();
    let mut out = Vec::new();
    out.push(format!("input pattern ({} nodes):\n{p}", p.pattern_size()));
    for m in containment::minimize_by_contraction(&p, &s) {
        out.push(format!(
            "S-contraction fixpoint ({} nodes):\n{m}",
            m.pattern_size()
        ));
    }
    for m in containment::minimize_global(&p, &s) {
        out.push(format!("global minimum ({} nodes):\n{m}", m.pattern_size()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_14_queries_runs() {
        let ds = datasets::xmark_small();
        let rows = fig4_14_queries(&ds);
        assert_eq!(rows.len(), 20);
        // q7's model is the outlier, as in the paper
        let q7 = rows.iter().find(|r| r.name == "q7").unwrap();
        let max_other = rows
            .iter()
            .filter(|r| r.name != "q7")
            .map(|r| r.model_size)
            .max()
            .unwrap();
        assert!(
            q7.model_size > max_other,
            "{} vs {max_other}",
            q7.model_size
        );
    }

    #[test]
    fn synthetic_experiment_small() {
        let ds = datasets::xmark_small();
        let pts = synthetic_containment(&ds.summary, GenConfig::xmark, &[3, 5], &[1], 8, 1);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            // every pattern is at least self-contained
            assert!(p.positives >= 8, "{p:?}");
        }
    }

    #[test]
    fn qep_catalogue_runs_and_agrees() {
        let rows = qep_catalogue();
        assert_eq!(rows.len(), 12);
        // the q-answering plans agree on cardinality
        let q_rows: Vec<usize> = rows
            .iter()
            .filter(|r| {
                r.name.starts_with("QEP1 ")
                    || r.name.starts_with("QEP4")
                    || r.name.starts_with("QEP5")
                    || r.name.starts_with("QEP6")
                    || r.name.starts_with("QEP7")
            })
            .map(|r| r.rows)
            .collect();
        assert!(q_rows.iter().all(|&c| c == q_rows[0]), "{q_rows:?}");
    }

    #[test]
    fn minimize_demo_produces_smaller_patterns() {
        let lines = minimize_demo();
        assert!(lines.len() >= 3);
        assert!(lines.last().unwrap().contains("global minimum"));
    }

    #[test]
    fn rewriting_experiment_small() {
        let ds = datasets::xmark_small();
        let pts = sec5_6(&ds, &[2], 2);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].avg_found >= 1.0, "{pts:?}");
    }
}
