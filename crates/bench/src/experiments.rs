//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). Shared by the
//! `experiments` binary (which prints the series) and the Criterion
//! benches (which time the hot kernels).

use std::time::Instant;

use containment::{contain, CanonicalCache, ContainOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rewriting::EngineOptions;
use summary::Summary;
use xam_core::Xam;

use crate::datasets::{self, Dataset, DatasetRow};
use crate::pattern_gen::{self, GenConfig};
use crate::xmark_queries;

// --------------------------------------------------------------------
// E1 — Figure 4.13: documents and their summaries

pub fn fig4_13() -> Vec<DatasetRow> {
    datasets::all().iter().map(|d| d.row()).collect()
}

// --------------------------------------------------------------------
// E2 — Figure 4.14 (top): XMark query-pattern self-containment

#[derive(Debug, Clone)]
pub struct QueryContainmentRow {
    pub name: String,
    pub pattern_size: usize,
    pub model_size: usize,
    pub micros: f64,
}

/// For each XMark query pattern: `|mod_S(p)|` and the time of the
/// self-containment test under the XMark summary.
pub fn fig4_14_queries(ds: &Dataset) -> Vec<QueryContainmentRow> {
    let mut rows = Vec::new();
    let mut pats = xmark_queries::patterns();
    // replace q7 by its multi-variable version (the paper's outlier)
    if let Some(p) = pats.iter_mut().find(|(n, _)| n == "q7") {
        p.1 = xmark_queries::q7_multivariable();
    }
    for (name, p) in pats {
        let t0 = Instant::now();
        let outcome = contain(&p, &p, &ds.summary, &ContainOptions::default());
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        assert!(outcome.contained, "{name} must be self-contained");
        rows.push(QueryContainmentRow {
            name,
            pattern_size: p.pattern_size(),
            model_size: outcome.model_size,
            micros,
        });
    }
    rows
}

// --------------------------------------------------------------------
// E3/E4/E5 — Figure 4.14 (bottom) & 4.15: synthetic pattern containment

#[derive(Debug, Clone)]
pub struct SyntheticPoint {
    pub size: usize,
    pub return_count: usize,
    /// Average time of *positive* containment tests (µs).
    pub positive_us: f64,
    pub positives: usize,
    /// Average time of *negative* tests (µs).
    pub negative_us: f64,
    pub negatives: usize,
    /// Average canonical-model size over the positive tests.
    pub avg_model: f64,
}

/// The §4.6 synthetic experiment: for each pattern size and return count,
/// generate `set_size` satisfiable patterns and test `p_i ⊆_S p_j` for
/// `j = i..set_size`, averaging positive and negative times separately.
pub fn synthetic_containment(
    summary: &Summary,
    mk_cfg: impl Fn(usize, usize) -> GenConfig,
    sizes: &[usize],
    return_counts: &[usize],
    set_size: usize,
    seed: u64,
) -> Vec<SyntheticPoint> {
    synthetic_containment_with(
        summary,
        mk_cfg,
        sizes,
        return_counts,
        set_size,
        seed,
        1,
        None,
    )
}

/// One worker's share of a containment grid cell: all `p_i ⊆_S p_j`
/// tests with `i ≡ worker (mod stride)`. Returns
/// `(pos_µs, #pos, neg_µs, #neg, Σ model sizes)`.
fn containment_cell(
    pats: &[Xam],
    worker: usize,
    stride: usize,
    summary: &Summary,
    cache: Option<&CanonicalCache>,
) -> (f64, usize, f64, usize, usize) {
    let mut opts = ContainOptions::default();
    if let Some(c) = cache {
        opts = opts.with_cache(c);
    }
    let (mut pos_t, mut neg_t) = (0.0f64, 0.0f64);
    let (mut pos_n, mut neg_n) = (0usize, 0usize);
    let mut model_sum = 0usize;
    for i in (worker..pats.len()).step_by(stride.max(1)) {
        for j in i..pats.len() {
            let t0 = Instant::now();
            let o = contain(&pats[i], &pats[j], summary, &opts);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            if o.contained {
                pos_t += us;
                pos_n += 1;
                model_sum += o.model_size;
            } else {
                neg_t += us;
                neg_n += 1;
            }
        }
    }
    (pos_t, pos_n, neg_t, neg_n, model_sum)
}

/// As [`synthetic_containment`], but the `p_i ⊆_S p_j` grid of each cell
/// is split round-robin over `threads` scoped workers, optionally sharing
/// a [`CanonicalCache`]. Counts and model sizes are identical to the
/// sequential run; only wall-clock changes.
#[allow(clippy::too_many_arguments)]
pub fn synthetic_containment_with(
    summary: &Summary,
    mk_cfg: impl Fn(usize, usize) -> GenConfig,
    sizes: &[usize],
    return_counts: &[usize],
    set_size: usize,
    seed: u64,
    threads: usize,
    cache: Option<&CanonicalCache>,
) -> Vec<SyntheticPoint> {
    let mut out = Vec::new();
    for &size in sizes {
        for &r in return_counts {
            let cfg = mk_cfg(size, r);
            let pats = pattern_gen::generate_set(summary, &cfg, set_size, seed + size as u64);
            let workers = threads.max(1).min(pats.len().max(1));
            let parts: Vec<(f64, usize, f64, usize, usize)> = if workers <= 1 {
                vec![containment_cell(&pats, 0, 1, summary, cache)]
            } else {
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let pats = &pats;
                            scope.spawn(move || containment_cell(pats, w, workers, summary, cache))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("containment worker panicked"))
                        .collect()
                })
            };
            let (mut pos_t, mut neg_t) = (0.0f64, 0.0f64);
            let (mut pos_n, mut neg_n) = (0usize, 0usize);
            let mut model_sum = 0usize;
            for (pt, pn, nt, nn, ms) in parts {
                pos_t += pt;
                pos_n += pn;
                neg_t += nt;
                neg_n += nn;
                model_sum += ms;
            }
            out.push(SyntheticPoint {
                size,
                return_count: r,
                positive_us: if pos_n > 0 { pos_t / pos_n as f64 } else { 0.0 },
                positives: pos_n,
                negative_us: if neg_n > 0 { neg_t / neg_n as f64 } else { 0.0 },
                negatives: neg_n,
                avg_model: if pos_n > 0 {
                    model_sum as f64 / pos_n as f64
                } else {
                    0.0
                },
            });
        }
    }
    out
}

/// Figure 4.14 bottom: synthetic containment on the XMark summary.
pub fn fig4_14_synthetic(ds: &Dataset, set_size: usize) -> Vec<SyntheticPoint> {
    synthetic_containment(
        &ds.summary,
        GenConfig::xmark,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2024,
    )
}

/// Figure 4.15: the same experiment on the DBLP summary (the paper finds
/// it ≈4× faster than XMark).
pub fn fig4_15(ds: &Dataset, set_size: usize) -> Vec<SyntheticPoint> {
    synthetic_containment(
        &ds.summary,
        GenConfig::dblp,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2025,
    )
}

/// E5 — the optional-edge ablation of §4.6: containment time vs the
/// optional-edge probability (the paper reports ≈2× slowdown at 50%).
pub fn optional_ablation(ds: &Dataset, set_size: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for p_opt in [0.0, 0.5, 1.0] {
        let cfg = GenConfig::xmark(9, 2).with_optional(p_opt);
        let pats = pattern_gen::generate_set(&ds.summary, &cfg, set_size, 777);
        let t0 = Instant::now();
        let mut n = 0;
        for i in 0..pats.len() {
            for j in i..pats.len() {
                let _ = contain(&pats[i], &pats[j], &ds.summary, &ContainOptions::default());
                n += 1;
            }
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
        out.push((p_opt, us));
    }
    out
}

// --------------------------------------------------------------------
// E6 — §5.6: rewriting performance

#[derive(Debug, Clone)]
pub struct RewritePoint {
    pub n_views: usize,
    /// Average time when a rewriting exists (µs).
    pub positive_us: f64,
    /// Average time when none exists (µs).
    pub negative_us: f64,
    /// Rewritings found per positive trial, averaged.
    pub avg_found: f64,
    /// As positive_us, but with structural-ID reasoning disabled.
    pub positive_no_sid_us: f64,
    /// Fraction of positive trials still rewritable without structural IDs.
    pub no_sid_found_frac: f64,
}

/// Rewriting time vs. view-set size: each trial rewrites a generated
/// query pattern against `n` views; in positive trials the view set
/// contains views that cover the query (its own pattern plus fragments),
/// in negative trials only unrelated views.
pub fn sec5_6(ds: &Dataset, view_counts: &[usize], trials: usize) -> Vec<RewritePoint> {
    sec5_6_with(ds, view_counts, trials, &EngineOptions::default())
}

/// As [`sec5_6`], but every rewrite runs through the given engine
/// context (worker threads for candidate verification, shared cache).
pub fn sec5_6_with(
    ds: &Dataset,
    view_counts: &[usize],
    trials: usize,
    eng: &EngineOptions,
) -> Vec<RewritePoint> {
    let mut rng = SmallRng::seed_from_u64(31337);
    let _ = &mut rng;
    let mut out = Vec::new();
    for &n_views in view_counts {
        let mut pos_t = 0.0;
        let mut neg_t = 0.0;
        let mut pos_found = 0.0;
        let mut nosid_t = 0.0;
        let mut nosid_found = 0usize;
        for trial in 0..trials {
            let qcfg = GenConfig::xmark(4, 1).with_optional(0.0);
            let qs = pattern_gen::generate_set(&ds.summary, &qcfg, 1, 9000 + trial as u64);
            let q = &qs[0];
            // noise views: other generated patterns with IDs stored
            let noise = pattern_gen::generate_set(
                &ds.summary,
                &GenConfig::xmark(3, 1).with_optional(0.0),
                n_views.saturating_sub(1),
                500 + trial as u64,
            );
            let mut views: Vec<(String, Xam)> = noise
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("noise{i}"), v))
                .collect();
            // negative trial: noise only
            let t0 = Instant::now();
            let (rw_neg, _) = rewriting::rewrite_with_engine(
                q,
                &views,
                &ds.summary,
                rewriting::RewriteConfig::default(),
                eng,
            );
            neg_t += t0.elapsed().as_secs_f64() * 1e6;
            let _ = rw_neg;
            // positive trial: add the covering view
            views.push(("exact".into(), q.clone()));
            let t0 = Instant::now();
            let (rw_pos, _) = rewriting::rewrite_with_engine(
                q,
                &views,
                &ds.summary,
                rewriting::RewriteConfig::default(),
                eng,
            );
            pos_t += t0.elapsed().as_secs_f64() * 1e6;
            pos_found += rw_pos.len() as f64;
            // ablation: structural IDs off
            let cfg = rewriting::RewriteConfig {
                use_structural_ids: false,
                ..Default::default()
            };
            let t0 = Instant::now();
            let (rw_nosid, _) = rewriting::rewrite_with_engine(q, &views, &ds.summary, cfg, eng);
            nosid_t += t0.elapsed().as_secs_f64() * 1e6;
            if !rw_nosid.is_empty() {
                nosid_found += 1;
            }
        }
        out.push(RewritePoint {
            n_views,
            positive_us: pos_t / trials as f64,
            negative_us: neg_t / trials as f64,
            avg_found: pos_found / trials as f64,
            positive_no_sid_us: nosid_t / trials as f64,
            no_sid_found_frac: nosid_found as f64 / trials as f64,
        });
    }
    out
}

// --------------------------------------------------------------------
// E8 — the §2.1 QEP catalogue

#[derive(Debug, Clone)]
pub struct QepRow {
    pub name: &'static str,
    pub operators: usize,
    pub rows: usize,
    pub micros: f64,
}

pub fn qep_catalogue() -> Vec<QepRow> {
    use storage::qep;
    let doc = xmltree::generate::bib_document();
    let sec_doc = xmltree::generate::bib_document_with_sections();
    let s = Summary::of_document(&doc);
    let s_sec = Summary::of_document(&sec_doc);
    let mut rows = Vec::new();
    let mut run = |q: qep::Qep, doc: &xmltree::Document| {
        let ev = algebra::Evaluator::with_document(&q.catalog, doc);
        let t0 = Instant::now();
        let rel = ev.eval(&q.plan).expect("QEP must evaluate");
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        rows.push(QepRow {
            name: q.name,
            operators: q.operators(),
            rows: rel.len(),
            micros,
        });
    };
    run(qep::qep1(&doc), &doc);
    run(qep::qep3(&doc), &doc);
    run(qep::qep4(&doc), &doc);
    run(qep::qep5(&doc), &doc);
    run(qep::qep6(&doc), &doc);
    run(qep::qep7(&doc, &s), &doc);
    run(qep::qep8(&sec_doc, &s_sec), &sec_doc);
    run(qep::qep9(&sec_doc, &s_sec), &sec_doc);
    run(qep::qep10(&doc, &s), &doc);
    run(qep::qep11(&doc, &s), &doc);
    run(qep::qep12(&doc, &s), &doc);
    run(qep::qep13(&doc, &s), &doc);
    rows
}

// --------------------------------------------------------------------
// E10 — holistic twig joins vs binary cascades (the twig_bench ablation)

/// One twig workload: a tree pattern (node `k`'s parent is `parents[k]`
/// via `axes[k]`; entry 0 is the root and its slots are unused) over one
/// XMark label stream per pattern node.
pub struct TwigWorkload {
    pub name: String,
    pub labels: Vec<&'static str>,
    pub parents: Vec<usize>,
    pub axes: Vec<algebra::Axis>,
}

impl TwigWorkload {
    /// The pattern as the holistic operator consumes it.
    pub fn pattern(&self) -> algebra::TwigPattern {
        let mut p = algebra::TwigPattern::root();
        for k in 1..self.labels.len() {
            p.add_child(self.parents[k], self.axes[k]);
        }
        p
    }

    /// One pre-sorted `(id, position)` stream per pattern node, served
    /// from the columnar index.
    pub fn streams(
        &self,
        idx: &storage::IdStreamIndex,
    ) -> Vec<Vec<(xmltree::StructuralId, usize)>> {
        self.labels
            .iter()
            .map(|l| {
                idx.elements(l)
                    .iter()
                    .enumerate()
                    .map(|(i, &sid)| (sid, i))
                    .collect()
            })
            .collect()
    }

    /// The equivalent binary structural-join cascade as a logical plan
    /// over the catalog-registered `ids_*` relations.
    pub fn cascade_plan(&self) -> algebra::LogicalPlan {
        use algebra::{JoinKind, LogicalPlan};
        use storage::IdStreamIndex;
        let cols: Vec<String> = (0..self.labels.len()).map(|i| format!("id{i}")).collect();
        let mut plan = LogicalPlan::scan(IdStreamIndex::relation_of(self.labels[0]))
            .rename(&[cols[0].as_str()]);
        for k in 1..self.labels.len() {
            plan = plan.struct_join(
                LogicalPlan::scan(IdStreamIndex::relation_of(self.labels[k]))
                    .rename(&[cols[k].as_str()]),
                cols[self.parents[k]].as_str(),
                cols[k].as_str(),
                self.axes[k],
                JoinKind::Inner,
            );
        }
        plan
    }

    /// The fused holistic plan the planner produces for the same twig.
    pub fn twig_plan(&self) -> algebra::LogicalPlan {
        algebra::fuse_struct_joins(&self.cascade_plan())
    }
}

fn chain(name: &str, labels: &[&'static str]) -> TwigWorkload {
    let n = labels.len();
    TwigWorkload {
        name: name.to_string(),
        labels: labels.to_vec(),
        parents: (0..n).map(|k| k.saturating_sub(1)).collect(),
        axes: vec![algebra::Axis::Descendant; n],
    }
}

fn fan(name: &str, root: &'static str, children: &[&'static str]) -> TwigWorkload {
    let mut labels = vec![root];
    labels.extend_from_slice(children);
    TwigWorkload {
        name: name.to_string(),
        labels,
        parents: vec![0; children.len() + 1],
        axes: vec![algebra::Axis::Child; children.len() + 1],
    }
}

/// A descendant-axis star: `root{//c, //c, ...}`. Unlike the child-axis
/// [`fan`], descendant branches into the recursive markup multiply — a
/// root with k matching descendants yields k^width solutions.
fn star(name: &str, root: &'static str, children: &[&'static str]) -> TwigWorkload {
    let mut labels = vec![root];
    labels.extend_from_slice(children);
    TwigWorkload {
        name: name.to_string(),
        labels,
        parents: vec![0; children.len() + 1],
        axes: vec![algebra::Axis::Descendant; children.len() + 1],
    }
}

/// The bench grid: XMark descendant chains of depth 2–5 (through the
/// recursive `parlist` region, where the cascade's intermediate pair
/// lists blow up) and child-axis stars of fanout 1–4 under `item`.
pub fn twig_workloads() -> Vec<TwigWorkload> {
    vec![
        chain("chain_depth2", &["description", "parlist"]),
        chain("chain_depth3", &["description", "parlist", "listitem"]),
        chain(
            "chain_depth4",
            &["description", "parlist", "listitem", "text"],
        ),
        chain(
            "chain_depth5",
            &["description", "parlist", "listitem", "text", "keyword"],
        ),
        // pruning twigs: the binary cascade materializes intermediate
        // lists that later steps mostly (or entirely) discard — nested
        // parlists are rare, and `bold` never contains `keyword`
        chain(
            "chain_deep4",
            &["description", "parlist", "parlist", "listitem"],
        ),
        chain(
            "chain_selective4",
            &["description", "text", "bold", "keyword"],
        ),
        fan("fan_width1", "item", &["location"]),
        fan("fan_width2", "item", &["location", "quantity"]),
        fan("fan_width3", "item", &["location", "quantity", "name"]),
        fan(
            "fan_width4",
            "item",
            &["location", "quantity", "name", "description"],
        ),
    ]
}

/// The E14 grid: every E10 workload plus high-fanout "wide" dense
/// chains. The E10 shapes cap their leaf runs at 1–3 elements (each
/// `text` holds exactly one `bold`/`emph`/`keyword`), which is where a
/// batched append can only tie the scalar kernel; an `item` subtree
/// holds several `keyword`/`emph` descendants (description parlists
/// plus mailbox texts) and `site` is a single always-open ancestor, so
/// these chains give the columnar kernel real runs to retire in bulk.
pub fn vector_workloads() -> Vec<TwigWorkload> {
    let mut ws = twig_workloads();
    ws.push(chain("chain_depth2_wide", &["item", "keyword"]));
    ws.push(chain("chain_depth2_emph", &["item", "emph"]));
    ws.push(chain("chain_depth2_bold", &["item", "bold"]));
    ws.push(chain("chain_depth3_wide", &["site", "item", "keyword"]));
    ws.push(chain("chain_depth3_emph", &["site", "item", "emph"]));
    ws.push(chain("chain_depth3_bold", &["site", "item", "bold"]));
    ws
}

/// The E11 grid: every E10 workload plus two multiplying twigs whose
/// binary cascades materialize intermediate solution lists far larger
/// than any base stream — exactly where a pipelined executor's
/// peak-resident-tuples pays off. An item carries several `keyword`
/// descendants (description markup plus mailbox texts), so a
/// width-w descendant star multiplies to k^w solutions per item.
pub fn pipeline_workloads() -> Vec<TwigWorkload> {
    let mut ws = twig_workloads();
    ws.push(star("star_kw2", "item", &["keyword", "keyword"]));
    // site//item{//keyword,//keyword,//keyword}: depth 3, width 3
    ws.push(TwigWorkload {
        name: "deep_star_kw3".to_string(),
        labels: vec!["site", "item", "keyword", "keyword", "keyword"],
        parents: vec![0, 0, 1, 1, 1],
        axes: vec![algebra::Axis::Descendant; 5],
    });
    // one branch wider: k^4 solutions per item, so the cascade's last
    // two intermediate lists dwarf every base stream
    ws.push(TwigWorkload {
        name: "deep_star_kw4".to_string(),
        labels: vec!["site", "item", "keyword", "keyword", "keyword", "keyword"],
        parents: vec![0, 0, 1, 1, 1, 1],
        axes: vec![algebra::Axis::Descendant; 6],
    });
    ws
}

/// Build the catalog of cached ID streams the twig plans scan.
pub fn twig_catalog(doc: &xmltree::Document) -> algebra::Catalog {
    let mut catalog = algebra::Catalog::new();
    storage::IdStreamIndex::build(doc).register(&mut catalog);
    catalog
}

/// The binary-cascade physical operator, at the same level as
/// [`algebra::twig_join`]: one [`stack_tree_pairs`] (or, with
/// `stacktree = false`, [`nested_loop_pairs`]) per pattern edge, with
/// the intermediate solution list materialized between steps and the
/// join column re-sorted per step — exactly the work a binary-join
/// engine performs, minus the (engine-neutral) tuple formatting.
///
/// [`stack_tree_pairs`]: algebra::stacktree::stack_tree_pairs
/// [`nested_loop_pairs`]: algebra::stacktree::nested_loop_pairs
pub fn cascade_solutions(
    parents: &[usize],
    axes: &[algebra::Axis],
    streams: &[Vec<(xmltree::StructuralId, usize)>],
    stacktree: bool,
) -> Vec<Vec<usize>> {
    use algebra::stacktree::{nested_loop_pairs, stack_tree_pairs};
    let n = streams.len();
    let mut tuples: Vec<Vec<usize>> = streams[0].iter().map(|&(_, p)| vec![p]).collect();
    for k in 1..n {
        let p = parents[k];
        let mut left: Vec<(xmltree::StructuralId, usize)> = tuples
            .iter()
            .enumerate()
            .map(|(ti, t)| (streams[p][t[p]].0, ti))
            .collect();
        let pairs = if stacktree {
            left.sort_unstable_by_key(|&(s, _)| s.pre);
            stack_tree_pairs(&left, &streams[k], axes[k])
        } else {
            nested_loop_pairs(&left, &streams[k], axes[k])
        };
        tuples = pairs
            .into_iter()
            .map(|(ti, di)| {
                let mut t = tuples[ti].clone();
                t.push(di);
                t
            })
            .collect();
    }
    tuples
}

/// One measured row of the twig ablation.
#[derive(Debug, Clone)]
pub struct TwigRow {
    pub name: String,
    /// Output cardinality (identical across all three engines).
    pub rows: usize,
    /// Median wall-clock per engine, nanoseconds.
    pub twig_ns: u128,
    pub cascade_ns: u128,
    pub nested_ns: u128,
}

impl TwigRow {
    /// Cascade-over-twig speedup ratio.
    pub fn speedup_vs_cascade(&self) -> f64 {
        self.cascade_ns as f64 / self.twig_ns.max(1) as f64
    }

    /// Nested-loop-over-twig speedup ratio.
    pub fn speedup_vs_nested(&self) -> f64 {
        self.nested_ns as f64 / self.twig_ns.max(1) as f64
    }
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Run every twig workload under the three physical operators —
/// holistic TwigStack, binary StackTree cascade, naive nested-loop
/// cascade — checking that all three (and the planner-fused logical
/// plan) agree before timing them `reps` times each.
pub fn twig_ablation(doc: &xmltree::Document, reps: usize) -> Vec<TwigRow> {
    use algebra::{twig_join, Evaluator};
    let idx = storage::IdStreamIndex::build(doc);
    let catalog = twig_catalog(doc);
    let mut out = Vec::new();
    for w in twig_workloads() {
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(xmltree::StructuralId, usize)]> =
            streams.iter().map(|s| s.as_slice()).collect();
        // correctness first: all three operators and the planner path
        // must agree on the solution set
        let twig_sols = twig_join(&pattern, &refs);
        let mut stack_sols = cascade_solutions(&w.parents, &w.axes, &streams, true);
        stack_sols.sort_unstable();
        assert_eq!(twig_sols, stack_sols, "{}: twig vs StackTree", w.name);
        let mut nested_sols = cascade_solutions(&w.parents, &w.axes, &streams, false);
        nested_sols.sort_unstable();
        assert_eq!(twig_sols, nested_sols, "{}: twig vs nested loop", w.name);
        let ev = Evaluator::new(&catalog);
        let planned = ev.eval(&w.twig_plan()).expect("twig plan must evaluate");
        assert_eq!(planned.len(), twig_sols.len(), "{}: planner path", w.name);
        // then time each operator
        let time = |f: &dyn Fn() -> usize| {
            let mut samples = Vec::with_capacity(reps.max(1));
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let rows = f();
                samples.push(t0.elapsed().as_nanos());
                assert_eq!(rows, twig_sols.len());
            }
            median_ns(samples)
        };
        let twig_ns = time(&|| twig_join(&pattern, &refs).len());
        let cascade_ns = time(&|| cascade_solutions(&w.parents, &w.axes, &streams, true).len());
        let nested_ns = time(&|| cascade_solutions(&w.parents, &w.axes, &streams, false).len());
        out.push(TwigRow {
            name: w.name,
            rows: twig_sols.len(),
            twig_ns,
            cascade_ns,
            nested_ns,
        });
    }
    out
}

// --------------------------------------------------------------------
// E11 — pipelined batch executor vs materialized evaluation

/// One measured row of the pipeline ablation: the same cascade plan run
/// materialized (the `Evaluator` oracle) and streamed (the batch
/// executor), plus a LIMIT-style run that pulls a handful of rows and
/// cancels.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    pub name: String,
    /// Full output cardinality (identical on both paths).
    pub rows: usize,
    /// Peak resident tuples of materialized evaluation: the maximum,
    /// over operators, of own output plus all direct child outputs
    /// alive while the operator runs.
    pub mat_peak: u64,
    /// The streaming executor's `peak-resident-tuples` gauge.
    pub stream_peak: u64,
    /// Median wall-clock of a full materialized evaluation, ns.
    pub mat_ns: u128,
    /// Median wall-clock of a full streamed drain, ns.
    pub stream_ns: u128,
    /// Rows the LIMIT run pulls before closing the cursor tree.
    pub limit_rows: usize,
    /// Median wall-clock of the LIMIT run (build, pull, close), ns.
    pub limit_ns: u128,
}

impl PipelineRow {
    /// How many times fewer tuples the streamed run keeps resident.
    pub fn residency_reduction(&self) -> f64 {
        self.mat_peak as f64 / self.stream_peak.max(1) as f64
    }

    /// Materialized-eval-over-LIMIT-run speedup (the early-termination
    /// win: a consumer of `limit_rows` rows pays `limit_ns`, not
    /// `mat_ns`).
    pub fn limit_speedup(&self) -> f64 {
        self.mat_ns as f64 / self.limit_ns.max(1) as f64
    }
}

/// Peak resident tuples of a materialized evaluation, from its profiled
/// operator tree: while an operator runs, its direct children's outputs
/// are fully materialized alongside its own output.
fn materialized_peak(prof: &obs::OpProfile) -> u64 {
    let own = prof.out_rows + prof.children.iter().map(|c| c.out_rows).sum::<u64>();
    prof.children
        .iter()
        .map(materialized_peak)
        .chain(std::iter::once(own))
        .max()
        .unwrap_or(0)
}

/// Run every twig workload's binary-cascade plan through both execution
/// paths — materialized `Evaluator::eval` and the pipelined batch
/// executor — checking row-for-row agreement, then measure residency
/// and wall-clock, plus a LIMIT run that pulls `limit_rows` rows and
/// closes the cursor tree.
pub fn pipeline_ablation(
    doc: &xmltree::Document,
    reps: usize,
    batch_size: usize,
    limit_rows: usize,
) -> Vec<PipelineRow> {
    use algebra::{build_cursor, CursorConfig, Evaluator};
    let catalog = twig_catalog(doc);
    let ccfg = CursorConfig {
        batch_size,
        ..Default::default()
    };
    let mut out = Vec::new();
    for w in pipeline_workloads() {
        let plan = w.cascade_plan();
        // correctness + the materialized residency profile
        let (oracle, prof) = Evaluator::new(&catalog)
            .eval_profiled(&plan)
            .expect("cascade plan must evaluate");
        let mat_peak = materialized_peak(&prof);
        let drain = || {
            let mut exec = build_cursor(&plan, &catalog, None, &ccfg).expect("cursor builds");
            let mut n = 0usize;
            let mut tuples = Vec::new();
            while let Some(b) = exec.next_batch().expect("stream") {
                n += b.len();
                tuples.extend(b.tuples);
            }
            let peak = exec.peak_resident();
            exec.close();
            (n, tuples, peak)
        };
        let (n, tuples, stream_peak) = drain();
        assert_eq!(n, oracle.len(), "{}: streamed cardinality", w.name);
        assert_eq!(tuples, oracle.tuples, "{}: streamed rows", w.name);

        let time = |f: &dyn Fn() -> usize, want: usize| {
            let mut samples = Vec::with_capacity(reps.max(1));
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let got = f();
                samples.push(t0.elapsed().as_nanos());
                assert_eq!(got, want);
            }
            median_ns(samples)
        };
        let mat_ns = time(
            &|| Evaluator::new(&catalog).eval(&plan).unwrap().len(),
            oracle.len(),
        );
        let stream_ns = time(&|| drain().0, oracle.len());
        let want_limit = limit_rows.min(oracle.len());
        let limit_ns = time(
            &|| {
                let mut exec = build_cursor(&plan, &catalog, None, &ccfg).unwrap();
                let mut n = 0usize;
                while n < want_limit {
                    match exec.next_batch().unwrap() {
                        Some(b) => n += b.len(),
                        None => break,
                    }
                }
                exec.close();
                n.min(want_limit)
            },
            want_limit,
        );
        out.push(PipelineRow {
            name: w.name,
            rows: oracle.len(),
            mat_peak,
            stream_peak,
            mat_ns,
            stream_ns,
            limit_rows: want_limit,
            limit_ns,
        });
    }
    out
}

// --------------------------------------------------------------------
// E12 — skip-based twig joins: seek indexes × summary pruning

/// One cell of the E12 access-method grid: the holistic twig kernel
/// under one combination of the two knobs.
#[derive(Debug, Clone)]
pub struct SkipCell {
    pub skip_index: bool,
    pub summary_pruning: bool,
    /// Median wall-clock, ns. Pruned cells pay their partition merge
    /// and indexed cells their skip-index build inside the timed
    /// region — each access method must pay for its own setup.
    pub ns: u128,
    /// Counters of one metered run of the cell.
    pub elements_skipped: u64,
    pub blocks_pruned: u64,
    pub partitions_opened: u64,
    pub partitions_total: u64,
    /// Input elements the kernel sees across all streams.
    pub stream_elements: usize,
}

/// One workload row of the E12 grid: the four twig cells plus the
/// StackTree cascade with and without a descendant-side skip index.
#[derive(Debug, Clone)]
pub struct SkipRow {
    pub name: String,
    /// Output cardinality (identical across every cell).
    pub rows: usize,
    pub cells: Vec<SkipCell>,
    pub stacktree_ns: u128,
    pub stacktree_indexed_ns: u128,
}

impl SkipRow {
    /// The cell for a knob combination.
    pub fn cell(&self, skip_index: bool, summary_pruning: bool) -> &SkipCell {
        self.cells
            .iter()
            .find(|c| c.skip_index == skip_index && c.summary_pruning == summary_pruning)
            .expect("grid carries all four cells")
    }

    /// Wall-clock speedup of the fully-enabled cell over the plain
    /// linear kernel (the PR 2 baseline).
    pub fn speedup_full_vs_linear(&self) -> f64 {
        self.cell(false, false).ns as f64 / self.cell(true, true).ns.max(1) as f64
    }
}

fn matcher_axes(axes: &[algebra::Axis]) -> Vec<summary::PatternAxis> {
    axes.iter()
        .enumerate()
        .map(|(i, a)| {
            if i == 0 {
                // axes[0] relates the pattern root to the *document*
                // root; the bench twigs float anywhere
                summary::PatternAxis::Descendant
            } else {
                match a {
                    algebra::Axis::Child => summary::PatternAxis::Child,
                    algebra::Axis::Descendant => summary::PatternAxis::Descendant,
                }
            }
        })
        .collect()
}

/// Run every twig workload through the holistic kernel under the full
/// access-method grid — skip index on/off × summary pruning on/off —
/// plus the StackTree cascade with and without a descendant-side index,
/// checking that every cell reproduces the linear kernel's solutions
/// (as structural IDs — pruned streams renumber positions) before
/// timing `reps` times each.
pub fn skip_ablation(doc: &xmltree::Document, reps: usize) -> Vec<SkipRow> {
    use algebra::{twig_join_indexed, twig_join_indexed_metered, SkipIndex};
    let idx = storage::IdStreamIndex::build(doc);
    let summary = Summary::of_document(doc);
    let pruned_idx = storage::IdStreamIndex::build_with_summary(doc, &summary);
    let mut out = Vec::new();
    for w in twig_workloads() {
        let pattern = w.pattern();
        let full_streams = w.streams(&idx);
        // plan-time partition selection: one candidate set per node
        let allowed =
            summary::compatible_nodes(&summary, &w.labels, &w.parents, &matcher_axes(&w.axes));
        // run-time stream preparation for the pruning-on cells, plus
        // the (opened, total) partition figures it reports and the skip
        // indexes each pruned stream carries (fence levels over exactly
        // its ids — the composed cell seeks through these instead of
        // rebuilding an index over the merged output)
        let prune = || {
            let mut streams = Vec::with_capacity(w.labels.len());
            let mut skips = Vec::with_capacity(w.labels.len());
            let (mut opened, mut total) = (0usize, 0usize);
            for (q, l) in w.labels.iter().enumerate() {
                let p = pruned_idx.pruned_stream(l, xmltree::NodeKind::Element, &allowed[q]);
                opened += p.opened;
                total += p.total;
                streams.push(
                    p.ids
                        .into_iter()
                        .enumerate()
                        .map(|(i, sid)| (sid, i))
                        .collect::<Vec<_>>(),
                );
                skips.push(p.skip);
            }
            (streams, skips, opened, total)
        };
        // solutions as structural IDs: positions renumber under pruning
        let sids = |streams: &[Vec<(xmltree::StructuralId, usize)>], sols: &[Vec<usize>]| {
            let mut v: Vec<Vec<u32>> = sols
                .iter()
                .map(|t| {
                    t.iter()
                        .enumerate()
                        .map(|(q, &p)| streams[q][p].0.pre)
                        .collect()
                })
                .collect();
            v.sort_unstable();
            v
        };
        let run_opts = |streams: &[Vec<(xmltree::StructuralId, usize)>],
                        opts: &[Option<&SkipIndex>],
                        meter: Option<&mut obs::ExecMetrics>| {
            let refs: Vec<&[(xmltree::StructuralId, usize)]> =
                streams.iter().map(|s| s.as_slice()).collect();
            match meter {
                Some(m) => twig_join_indexed_metered(&pattern, &refs, opts, m),
                None => twig_join_indexed(&pattern, &refs, opts),
            }
        };
        let run = |streams: &[Vec<(xmltree::StructuralId, usize)>],
                   skip: bool,
                   meter: Option<&mut obs::ExecMetrics>| {
            let built: Vec<SkipIndex> = if skip {
                streams.iter().map(|s| SkipIndex::build(s)).collect()
            } else {
                Vec::new()
            };
            let opts: Vec<Option<&SkipIndex>> = if skip {
                built.iter().map(Some).collect()
            } else {
                vec![None; streams.len()]
            };
            run_opts(streams, &opts, meter)
        };
        let oracle = sids(&full_streams, &run(&full_streams, false, None));
        let (pruned_streams, pruned_skips, opened, total) = prune();
        let mut cells = Vec::new();
        for (skip, pruning) in [(false, false), (true, false), (false, true), (true, true)] {
            let streams = if pruning {
                &pruned_streams
            } else {
                &full_streams
            };
            // correctness first, collecting the cell's counters (the
            // composed cell seeks through the streams' carried fences)
            let mut m = obs::ExecMetrics::default();
            let sols = if skip && pruning {
                let opts: Vec<Option<&SkipIndex>> = pruned_skips.iter().map(Some).collect();
                run_opts(streams, &opts, Some(&mut m))
            } else {
                run(streams, skip, Some(&mut m))
            };
            assert_eq!(
                sids(streams, &sols),
                oracle,
                "{}: skip={skip} pruning={pruning} vs linear kernel",
                w.name
            );
            // then time the cell end to end: pruned cells re-merge
            // their partitions, indexed cells rebuild their indexes
            let mut samples = Vec::with_capacity(reps.max(1));
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let n = if pruning {
                    let (streams, skips, _, _) = prune();
                    if skip {
                        let opts: Vec<Option<&SkipIndex>> = skips.iter().map(Some).collect();
                        run_opts(&streams, &opts, None).len()
                    } else {
                        run(&streams, false, None).len()
                    }
                } else {
                    run(&full_streams, skip, None).len()
                };
                samples.push(t0.elapsed().as_nanos());
                assert_eq!(n, oracle.len());
            }
            cells.push(SkipCell {
                skip_index: skip,
                summary_pruning: pruning,
                ns: median_ns(samples),
                elements_skipped: m.elements_skipped,
                blocks_pruned: m.blocks_pruned,
                partitions_opened: if pruning { opened as u64 } else { 0 },
                partitions_total: if pruning { total as u64 } else { 0 },
                stream_elements: streams.iter().map(|s| s.len()).sum(),
            });
        }
        // the binary cascade, with and without a descendant-side index
        let time_cascade = |indexed: bool| {
            let mut samples = Vec::with_capacity(reps.max(1));
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let n = cascade_solutions_with(&w.parents, &w.axes, &full_streams, indexed).len();
                samples.push(t0.elapsed().as_nanos());
                assert_eq!(n, oracle.len(), "{}: cascade indexed={indexed}", w.name);
            }
            median_ns(samples)
        };
        let stacktree_ns = time_cascade(false);
        let stacktree_indexed_ns = time_cascade(true);
        out.push(SkipRow {
            name: w.name,
            rows: oracle.len(),
            cells,
            stacktree_ns,
            stacktree_indexed_ns,
        });
    }
    out
}

/// [`cascade_solutions`] over StackTree, optionally handing each step a
/// skip index over its descendant stream (built inside — a cascade
/// cannot reuse stored indexes for its re-sorted intermediates, but the
/// descendant side is always a base stream).
pub fn cascade_solutions_with(
    parents: &[usize],
    axes: &[algebra::Axis],
    streams: &[Vec<(xmltree::StructuralId, usize)>],
    indexed: bool,
) -> Vec<Vec<usize>> {
    use algebra::stacktree::stack_tree_pairs_indexed;
    use algebra::SkipIndex;
    let n = streams.len();
    let indexes: Vec<Option<SkipIndex>> = (0..n)
        .map(|k| (indexed && k > 0).then(|| SkipIndex::build(&streams[k])))
        .collect();
    let mut tuples: Vec<Vec<usize>> = streams[0].iter().map(|&(_, p)| vec![p]).collect();
    for k in 1..n {
        let p = parents[k];
        let mut left: Vec<(xmltree::StructuralId, usize)> = tuples
            .iter()
            .enumerate()
            .map(|(ti, t)| (streams[p][t[p]].0, ti))
            .collect();
        left.sort_unstable_by_key(|&(s, _)| s.pre);
        let pairs = stack_tree_pairs_indexed(&left, &streams[k], axes[k], indexes[k].as_ref());
        tuples = pairs
            .into_iter()
            .map(|(ti, di)| {
                let mut t = tuples[ti].clone();
                t.push(di);
                t
            })
            .collect();
    }
    tuples
}

// --------------------------------------------------------------------
// E14 — columnar kernels: dense-parity grid

/// One measured row of the E14 vectorized-kernel grid: the holistic
/// twig join timed under three access paths over identical streams —
/// scalar linear (no seeks), scalar with XB-tree skip indexes, and the
/// columnar kernel over packed pre/post/depth columns.
#[derive(Debug, Clone)]
pub struct VectorRow {
    pub name: String,
    /// Output cardinality (identical across all three paths).
    pub rows: usize,
    /// Member of the dense grid (plain chains and child fans): the
    /// workloads where seeking cannot discard much, so lane-wide
    /// batching has to carry the win on its own.
    pub dense: bool,
    /// Total elements across the workload's input streams.
    pub stream_elements: usize,
    /// Median wall-clock per access path, nanoseconds. Access
    /// structures (skip indexes, packed columns) are prebuilt outside
    /// the timed region — the store carries both, so steady-state
    /// serving never rebuilds them per query.
    pub linear_ns: u128,
    pub skip_ns: u128,
    pub columnar_ns: u128,
    /// Columnar-kernel counters from a metered correctness pass.
    pub batches_scanned: u64,
    pub vector_compares: u64,
    pub elements_skipped: u64,
}

impl VectorRow {
    /// Columnar speedup over the scalar linear sweep.
    pub fn speedup_vs_linear(&self) -> f64 {
        self.linear_ns as f64 / self.columnar_ns.max(1) as f64
    }

    /// Columnar speedup over the scalar skip-indexed path.
    pub fn speedup_vs_skip(&self) -> f64 {
        self.skip_ns as f64 / self.columnar_ns.max(1) as f64
    }

    /// Skip-indexed speedup over the linear sweep (context column).
    pub fn skip_vs_linear(&self) -> f64 {
        self.linear_ns as f64 / self.skip_ns.max(1) as f64
    }
}

/// Run every twig workload through the holistic kernel under the three
/// access paths of [`VectorRow`], checking that all three produce
/// identical solutions before timing `reps` times each.
pub fn vector_parity(doc: &xmltree::Document, reps: usize) -> Vec<VectorRow> {
    use algebra::{
        twig_join, twig_join_columnar_metered, twig_join_indexed, IdColumns, SkipIndex,
        DEFAULT_BLOCK,
    };
    let idx = storage::IdStreamIndex::build(doc);
    let mut out = Vec::new();
    for w in vector_workloads() {
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(xmltree::StructuralId, usize)]> =
            streams.iter().map(|s| s.as_slice()).collect();
        // prebuilt access structures, exactly as the store serves them
        let skips: Vec<SkipIndex> = streams.iter().map(|s| SkipIndex::build(s)).collect();
        let opts: Vec<Option<&SkipIndex>> = skips.iter().map(Some).collect();
        let cols: Vec<IdColumns> = streams
            .iter()
            .map(|s| IdColumns::from_pairs(s, DEFAULT_BLOCK))
            .collect();
        let col_refs: Vec<&IdColumns> = cols.iter().collect();

        // correctness first, collecting the columnar kernel's counters
        let linear = twig_join(&pattern, &refs);
        let skip_sols = twig_join_indexed(&pattern, &refs, &opts);
        let mut m = obs::ExecMetrics::default();
        let col_sols = twig_join_columnar_metered(&pattern, &col_refs, &mut m);
        assert_eq!(skip_sols, linear, "{}: skip path vs linear", w.name);
        assert_eq!(col_sols, linear, "{}: columnar path vs linear", w.name);

        // interleave the three paths rep-by-rep so clock drift and
        // scheduler interference land on all of them equally instead of
        // skewing whichever path ran its block last
        let paths: [&dyn Fn() -> usize; 3] = [
            &|| twig_join(&pattern, &refs).len(),
            &|| twig_join_indexed(&pattern, &refs, &opts).len(),
            &|| algebra::twig_join_columnar(&pattern, &col_refs).len(),
        ];
        let mut samples: [Vec<u128>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..reps.max(1) {
            for (path, out) in paths.iter().zip(samples.iter_mut()) {
                let t0 = Instant::now();
                let n = path();
                out.push(t0.elapsed().as_nanos());
                assert_eq!(n, linear.len());
            }
        }
        let [lin_s, skip_s, col_s] = samples;
        let linear_ns = median_ns(lin_s);
        let skip_ns = median_ns(skip_s);
        let columnar_ns = median_ns(col_s);

        let dense = w.name.starts_with("chain_depth") || w.name.starts_with("fan_width");
        out.push(VectorRow {
            name: w.name,
            rows: linear.len(),
            dense,
            stream_elements: streams.iter().map(|s| s.len()).sum(),
            linear_ns,
            skip_ns,
            columnar_ns,
            batches_scanned: m.batches_scanned,
            vector_compares: m.vector_compares,
            elements_skipped: m.elements_skipped,
        });
    }
    out
}

// --------------------------------------------------------------------
// E9 — §4.5 minimization

pub fn minimize_demo() -> Vec<String> {
    let doc =
        xmltree::parse_document("<a><f><d><e>1</e></d></f><d><x><e>2</e></x></d></a>").unwrap();
    let s = Summary::of_document(&doc);
    let p = xam_core::parse_xam("//a{ //f{ //d{ //e[id:s] } } }").unwrap();
    let mut out = Vec::new();
    out.push(format!("input pattern ({} nodes):\n{p}", p.pattern_size()));
    for m in containment::minimize_by_contraction(&p, &s) {
        out.push(format!(
            "S-contraction fixpoint ({} nodes):\n{m}",
            m.pattern_size()
        ));
    }
    for m in containment::minimize_global(&p, &s) {
        out.push(format!("global minimum ({} nodes):\n{m}", m.pattern_size()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_14_queries_runs() {
        let ds = datasets::xmark_small();
        let rows = fig4_14_queries(&ds);
        assert_eq!(rows.len(), 20);
        // q7's model is the outlier, as in the paper
        let q7 = rows.iter().find(|r| r.name == "q7").unwrap();
        let max_other = rows
            .iter()
            .filter(|r| r.name != "q7")
            .map(|r| r.model_size)
            .max()
            .unwrap();
        assert!(
            q7.model_size > max_other,
            "{} vs {max_other}",
            q7.model_size
        );
    }

    #[test]
    fn synthetic_experiment_small() {
        let ds = datasets::xmark_small();
        let pts = synthetic_containment(&ds.summary, GenConfig::xmark, &[3, 5], &[1], 8, 1);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            // every pattern is at least self-contained
            assert!(p.positives >= 8, "{p:?}");
        }
    }

    #[test]
    fn pipeline_ablation_paths_agree_on_small_xmark() {
        let doc = xmltree::generate::xmark(3, 11);
        let rows = pipeline_ablation(&doc, 1, 64, 10);
        assert_eq!(rows.len(), 13, "6 chains + 4 fans + 3 stars");
        for r in &rows {
            // both gauges are live, and a LIMIT run never pulls more
            // rows than asked (on shallow joins the streamed build side
            // can legitimately exceed the materialized estimate — the
            // residency win needs multiplying intermediates)
            assert!(r.stream_peak > 0, "{}: dead residency gauge", r.name);
            assert!(r.limit_rows <= 10);
            assert!(r.limit_rows <= r.rows);
        }
        // the multiplying star materializes k^3 solutions per item under
        // the cascade; the pipelined run keeps only build sides plus a
        // batch per operator, so its peak is several times lower at any
        // scale (the full-scale figure is produced by `experiments --
        // pipeline`)
        let deep = rows.iter().find(|r| r.name == "deep_star_kw3").unwrap();
        assert!(deep.rows > 0);
        assert!(
            deep.residency_reduction() > 2.0,
            "multiplying star shows no residency win: {deep:?}"
        );
    }

    #[test]
    fn twig_ablation_engines_agree_on_small_xmark() {
        let doc = xmltree::generate::xmark(3, 11);
        let rows = twig_ablation(&doc, 1);
        assert_eq!(rows.len(), 10, "6 chains + 4 fans");
        // at least the shallow workloads must match something
        assert!(rows.iter().any(|r| r.rows > 0), "{rows:?}");
        // twig_ablation itself asserts all three engines agree per row
        for r in &rows {
            assert!(
                r.twig_ns > 0 && r.cascade_ns > 0 && r.nested_ns > 0,
                "{r:?}"
            );
        }
    }

    #[test]
    fn qep_catalogue_runs_and_agrees() {
        let rows = qep_catalogue();
        assert_eq!(rows.len(), 12);
        // the q-answering plans agree on cardinality
        let q_rows: Vec<usize> = rows
            .iter()
            .filter(|r| {
                r.name.starts_with("QEP1 ")
                    || r.name.starts_with("QEP4")
                    || r.name.starts_with("QEP5")
                    || r.name.starts_with("QEP6")
                    || r.name.starts_with("QEP7")
            })
            .map(|r| r.rows)
            .collect();
        assert!(q_rows.iter().all(|&c| c == q_rows[0]), "{q_rows:?}");
    }

    #[test]
    fn skip_ablation_grid_agrees_and_skips() {
        let doc = xmltree::generate::xmark(4, 7);
        let rows = skip_ablation(&doc, 1);
        assert_eq!(rows.len(), twig_workloads().len());
        // every row carries the full 2×2 grid (agreement is asserted
        // inside skip_ablation before timing)
        for r in &rows {
            assert_eq!(r.cells.len(), 4);
            assert_eq!(r.cell(false, false).elements_skipped, 0, "{}", r.name);
        }
        // the selective twig is the one the index must engage on
        let sel = rows.iter().find(|r| r.name == "chain_selective4").unwrap();
        let skipped = sel
            .cells
            .iter()
            .filter(|c| c.skip_index)
            .map(|c| c.elements_skipped)
            .max()
            .unwrap();
        assert!(skipped > 0, "skip index never engaged: {sel:?}");
        // summary pruning must open fewer partitions than exist
        let pruned = sel.cell(false, true);
        assert!(
            pruned.partitions_opened < pruned.partitions_total,
            "no partitions pruned: {pruned:?}"
        );
    }

    #[test]
    fn minimize_demo_produces_smaller_patterns() {
        let lines = minimize_demo();
        assert!(lines.len() >= 3);
        assert!(lines.last().unwrap().contains("global minimum"));
    }

    #[test]
    // ~22 minutes in a debug build (the full §5.6 rewriting sweep over
    // xmark_small): far too slow for the tier-1 `cargo test` gate. CI
    // runs it explicitly with `--ignored` in a non-blocking job.
    #[ignore = "slow: full rewriting sweep; run with `cargo test -- --ignored`"]
    fn rewriting_experiment_small() {
        let ds = datasets::xmark_small();
        let pts = sec5_6(&ds, &[2], 2);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].avg_found >= 1.0, "{pts:?}");
    }
}
