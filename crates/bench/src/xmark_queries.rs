//! Tree patterns of the 20 XMark benchmark queries (§4.6, Figure 4.14
//! top). The XMark query texts are re-expressed as XAM patterns over the
//! labels of our XMark-like generator, mirroring each query's navigation
//! shape (the paper itself extracts patterns from the queries before
//! testing containment). `q7`, as in the paper, joins three structurally
//! unrelated variables and blows up the canonical model.

use xam_core::{parse_xam, Xam};

/// The 20 query patterns, in XMark order.
pub fn patterns() -> Vec<(String, Xam)> {
    let defs: Vec<(&str, &str)> = vec![
        // Q1: the name of the person with a given id
        (
            "q1",
            r#"//people{ /person[id:s]{ /s @id[val="person0"], /name[val] } }"#,
        ),
        // Q2: initial increases of all bidders
        ("q2", "//open_auction{ /bidder{ /increase[val] } }"),
        // Q3: auctions with initial and bidder increases
        (
            "q3",
            "//open_auctions{ /open_auction[id:s]{ /bidder{ /increase[val] }, /initial[val] } }",
        ),
        // Q4: auctions with bidder personrefs and a reserve
        (
            "q4",
            "//open_auction[id:s]{ /bidder{ /s personref }, /reserve[val] }",
        ),
        // Q5: closed auctions sold above a threshold
        ("q5", "//closed_auction{ /price[id:s,val>40] }"),
        // Q6: all items in regions
        ("q6", "//regions{ //item[id:s] }"),
        // Q7: counts over three unrelated variables (pieces of prose) —
        // the paper's canonical-model blowup case (204 trees)
        (
            "q7",
            "//description[id:s]",
        ),
        // Q8: people and the auctions they bought (pattern part)
        (
            "q8",
            "//people{ /person[id:s]{ /name[val] } }",
        ),
        // Q9: as Q8 plus European items
        (
            "q9",
            "//europe{ /item[id:s]{ /name[val] } }",
        ),
        // Q10: person profiles, many optional properties
        (
            "q10",
            "//person[id:s]{ /emailaddress[val], /? profile1:profile{ /interest[id:s], /? gender[val], /? age[val], /? education[val] } }",
        ),
        // Q11: person incomes (join input)
        ("q11", "//person[id:s]{ /profile{ /@income[val] } }"),
        // Q12: as Q11, restricted incomes
        ("q12", "//person[id:s]{ /profile{ /@income[val>50000] } }"),
        // Q13: Australian items with name and description content
        (
            "q13",
            "//australia{ /item[id:s]{ /name[val], /description[cont] } }",
        ),
        // Q14: items by name with description keyword
        (
            "q14",
            "//item[id:s]{ /name[val], /s description1:description{ //keyword } }",
        ),
        // Q15: the long closed-auction markup chain
        (
            "q15",
            "//closed_auctions{ /closed_auction{ /annotation{ /description{ /parlist{ /listitem{ /parlist{ /listitem[id:s] } } } } } } }",
        ),
        // Q16: as Q15 anchored at the seller
        (
            "q16",
            "//closed_auction[id:s]{ /s seller, /annotation{ /description{ /parlist{ /listitem[id:s] } } } }",
        ),
        // Q17: persons without a homepage (optional edge)
        ("q17", "//person[id:s]{ /name[val], /? homepage[val] }"),
        // Q18: all reserves
        ("q18", "//open_auction{ /reserve[id:s,val] }"),
        // Q19: items with name and location (order-by inputs)
        ("q19", "//item[id:s]{ /name[val], /location[val] }"),
        // Q20: people by income presence
        ("q20", "//person[id:s]{ /? profile1:profile{ /? @income[val] } }"),
    ];
    defs.into_iter()
        .map(|(n, t)| {
            (
                n.to_string(),
                parse_xam(t).unwrap_or_else(|e| panic!("{n}: {e}")),
            )
        })
        .collect()
}

/// The multi-variable `q7` of the paper: three structurally unrelated
/// star-descendant variables under `⊤`, whose canonical model is the
/// product of their individual annotations.
pub fn q7_multivariable() -> Xam {
    use xam_core::ast::{XamEdge, XamNode};
    let mut x = parse_xam("//description[id:s]").unwrap();
    for (name, label) in [("v2", "annotation"), ("v3", "mail")] {
        let mut n = XamNode::star(name);
        n.tag_predicate = Some(label.into());
        n.stores_id = Some(xam_core::IdKind::Structural);
        n.edge = XamEdge::descendant();
        x.add_child(x.root(), n);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn all_patterns_parse_and_are_satisfiable() {
        let ds = datasets::xmark_small();
        for (name, p) in patterns() {
            assert!(
                containment::satisfiable(&p, &ds.summary),
                "{name} unsatisfiable on the XMark summary:\n{p}"
            );
        }
    }

    #[test]
    fn q7_has_a_large_model() {
        let ds = datasets::xmark_small();
        let q7 = q7_multivariable();
        let (_, stats) = containment::canonical_model(&q7, &ds.summary);
        // three unrelated variables multiply the model
        let (_, s1) = containment::canonical_model(
            &xam_core::parse_xam("//description[id:s]").unwrap(),
            &ds.summary,
        );
        assert!(stats.size > 3 * s1.size, "{} vs {}", stats.size, s1.size);
    }

    #[test]
    fn self_containment_holds_for_all() {
        let ds = datasets::xmark_small();
        for (name, p) in patterns() {
            assert!(
                containment::contain(&p, &p, &ds.summary, &containment::ContainOptions::default())
                    .contained,
                "{name} not contained in itself"
            );
        }
    }
}
