//! # storage — XML storage engines uniformly described by XAMs
//!
//! Chapter 2 of the paper argues that storage modules, indices and
//! materialized views can all be described to the optimizer by XAMs. This
//! crate supplies both sides of that argument:
//!
//! * [`store`] — a generic **materialized XAM store**: give it a set of
//!   XAM definitions and a document, and it materializes each as a nested
//!   relation (this is how materialized views exist at runtime — the
//!   rewriting crate plans over them);
//! * [`engines`] — concrete storage engines of §2.1: the *Edge* relation,
//!   tag-partitioned (native #3) and path-partitioned (native #4) stores,
//!   the non-fragmented content store, a composite-key value index
//!   (`booksByYearTitle`) and an IndexFabric-style full-text index;
//! * [`catalog`] — the **XAM model library** of §2.3: ready-made XAM
//!   descriptions of published storage/indexing schemes (Edge, Universal,
//!   Basic/Hybrid-style inlining, DOM access paths, tag/path partitioning,
//!   XISS, T-index, IndexFabric raw paths);
//! * [`qep`] — the QEP catalogue of §2.1: builders for the paper's query
//!   execution plans `QEP1`–`QEP13`, each against the matching engine, so
//!   the flexibility experiment (E8 in DESIGN.md) can count operators and
//!   run them;
//! * [`idstream`] — the columnar ID-stream index: per `(label, kind)`
//!   sorted `StructuralId` columns built once per document and cached in
//!   the catalog, feeding the holistic twig-join operator.

pub mod catalog;
pub mod engines;
pub mod handle;
pub mod idstream;
pub mod qep;
pub mod store;

pub use engines::{
    CompositeIndex, ContentStore, EdgeStore, FullTextIndex, PathPartitionStore, TagPartitionStore,
    XRelStore,
};
pub use handle::{DocumentHandle, DocumentVersion};
pub use idstream::IdStreamIndex;
pub use store::MaterializedStore;
