//! Columnar ID-stream index: per `(label, kind)` sorted
//! [`StructuralId`] columns, built in one pass over a document and
//! cached in a [`Catalog`] as scannable `ids_<label>` relations.
//!
//! The holistic twig operator (`algebra::twig`) consumes one pre-sorted
//! ID stream per pattern node. Before this index, every pattern node
//! re-ran a `nodes_with_label` scan over the whole document; the index
//! pays that scan once per document and serves each stream as a slice.
//! Document order *is* pre order, so the columns come out sorted for
//! free and the catalog entries can declare `OrderSpec::by("ID")` —
//! letting the evaluator skip its defensive re-sort.

use std::collections::HashMap;

use algebra::{OrderSpec, Relation, Schema, Tuple, TupleBatch, Value};
use xmltree::{Document, NodeKind, StructuralId};

use algebra::Catalog;

/// The index: one sorted `Vec<StructuralId>` column per `(label, kind)`.
#[derive(Debug, Default, Clone)]
pub struct IdStreamIndex {
    columns: HashMap<(String, NodeKind), Vec<StructuralId>>,
}

impl IdStreamIndex {
    /// Build all columns in a single document pass (document order is
    /// pre order, so every column is born sorted).
    pub fn build(doc: &Document) -> IdStreamIndex {
        let span = tracing::debug_span!(target: "uload::storage", "idstream_build");
        let _g = span.enter();
        let mut columns: HashMap<(String, NodeKind), Vec<StructuralId>> = HashMap::new();
        for n in doc.all_nodes() {
            let kind = doc.kind(n);
            if kind == NodeKind::Text {
                continue; // text nodes carry no label worth indexing
            }
            columns
                .entry((doc.label(n).to_string(), kind))
                .or_default()
                .push(doc.structural_id(n));
        }
        let idx = IdStreamIndex { columns };
        tracing::debug!(
            target: "uload::storage",
            "built ID-stream index: {} columns, {} ids",
            idx.len(),
            idx.total_ids()
        );
        idx
    }

    /// The sorted ID column for a `(label, kind)` pair; empty when the
    /// document has no such nodes.
    pub fn stream(&self, label: &str, kind: NodeKind) -> &[StructuralId] {
        self.columns
            .get(&(label.to_string(), kind))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Shorthand for element streams (the common twig case).
    pub fn elements(&self, label: &str) -> &[StructuralId] {
        self.stream(label, NodeKind::Element)
    }

    /// Number of distinct `(label, kind)` columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Total IDs stored across all columns.
    pub fn total_ids(&self) -> usize {
        self.columns.values().map(Vec::len).sum()
    }

    /// Stream a `(label, kind)` column as single-attribute `(ID)`
    /// [`TupleBatch`]es of at most `batch_size` rows each — the batched
    /// scan the pipelined executor pulls instead of materializing the
    /// whole `ids_<label>` relation up front. Batches preserve document
    /// order (each one's rows are ID-sorted and contiguous).
    pub fn scan_batches<'a>(
        &'a self,
        label: &str,
        kind: NodeKind,
        batch_size: usize,
    ) -> impl Iterator<Item = TupleBatch> + 'a {
        let batch_size = batch_size.max(1);
        self.stream(label, kind).chunks(batch_size).map(|chunk| {
            TupleBatch::new(
                chunk
                    .iter()
                    .map(|&sid| Tuple::new(vec![Value::Id(sid)]))
                    .collect(),
            )
        })
    }

    /// Catalog name of a label's element column (attributes get an `@`).
    pub fn relation_of(label: &str) -> String {
        format!("ids_{label}")
    }

    /// Cache every column in the catalog as a single-attribute `(ID)`
    /// relation ordered by ID, so plans can scan streams by name and the
    /// evaluator sees them as pre-sorted.
    pub fn register(&self, catalog: &mut Catalog) {
        for ((label, kind), ids) in &self.columns {
            let name = match kind {
                NodeKind::Attribute => format!("ids_@{label}"),
                _ => Self::relation_of(label),
            };
            let tuples = ids
                .iter()
                .map(|&sid| Tuple::new(vec![Value::Id(sid)]))
                .collect();
            catalog.insert_ordered(
                name,
                Relation::new(Schema::atoms(&["ID"]), tuples),
                OrderSpec::by("ID"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;

    #[test]
    fn columns_match_label_scans() {
        let doc = generate::xmark(3, 11);
        let idx = IdStreamIndex::build(&doc);
        for label in ["item", "keyword", "parlist", "listitem", "name"] {
            let want: Vec<StructuralId> = doc
                .nodes_with_label(label, NodeKind::Element)
                .map(|n| doc.structural_id(n))
                .collect();
            assert_eq!(idx.elements(label), want.as_slice(), "{label}");
            assert!(idx.elements(label).windows(2).all(|w| w[0].pre < w[1].pre));
        }
        assert!(idx.elements("no_such_label").is_empty());
        assert!(!idx.is_empty());
        assert!(idx.total_ids() > 0);
    }

    #[test]
    fn attribute_columns_are_separate() {
        let doc = generate::bib_sample();
        let idx = IdStreamIndex::build(&doc);
        let attrs = idx.stream("year", NodeKind::Attribute);
        assert!(!attrs.is_empty(), "bib sample has @year");
        assert!(idx.elements("year").is_empty(), "no year *elements*");
    }

    #[test]
    fn batched_scans_chunk_without_loss_or_reorder() {
        let doc = generate::xmark(3, 11);
        let idx = IdStreamIndex::build(&doc);
        let whole = idx.elements("item");
        assert!(whole.len() > 3);
        for bs in [1, 2, whole.len() - 1, whole.len(), whole.len() + 1] {
            let batches: Vec<TupleBatch> =
                idx.scan_batches("item", NodeKind::Element, bs).collect();
            assert!(batches.iter().all(|b| b.len() <= bs && !b.is_empty()));
            assert_eq!(batches.len(), whole.len().div_ceil(bs), "batch_size {bs}");
            let flat: Vec<StructuralId> = batches
                .iter()
                .flat_map(|b| b.tuples.iter().map(|t| t.get(0).as_id().unwrap()))
                .collect();
            assert_eq!(flat, whole, "batch_size {bs}");
        }
        // degenerate batch size clamps to 1 instead of spinning forever
        let n = idx.scan_batches("item", NodeKind::Element, 0).count();
        assert_eq!(n, whole.len());
        assert_eq!(idx.scan_batches("nope", NodeKind::Element, 8).count(), 0);
    }

    #[test]
    fn register_caches_streams_in_catalog() {
        let doc = generate::xmark(2, 5);
        let idx = IdStreamIndex::build(&doc);
        let mut cat = Catalog::new();
        idx.register(&mut cat);
        let rel = cat.get(&IdStreamIndex::relation_of("item")).unwrap();
        assert_eq!(rel.len(), idx.elements("item").len());
        assert_eq!(rel.schema, Schema::atoms(&["ID"]));
        assert_eq!(
            rel.tuples[0].get(0).as_id().unwrap(),
            idx.elements("item")[0]
        );
    }
}
