//! Columnar ID-stream index: per `(label, kind)` sorted
//! [`StructuralId`] columns, built in one pass over a document and
//! cached in a [`Catalog`] as scannable `ids_<label>` relations.
//!
//! The holistic twig operator (`algebra::twig`) consumes one pre-sorted
//! ID stream per pattern node. Before this index, every pattern node
//! re-ran a `nodes_with_label` scan over the whole document; the index
//! pays that scan once per document and serves each stream as a slice.
//! Document order *is* pre order, so the columns come out sorted for
//! free and the catalog entries can declare `OrderSpec::by("ID")` —
//! letting the evaluator skip its defensive re-sort.
//!
//! Two access-method refinements ride on top of the plain columns:
//!
//! * every column carries an XB-tree-style [`SkipIndex`], so point
//!   lookups ([`IdStreamIndex::seek_descendant_of`] /
//!   [`IdStreamIndex::seek_past`]) and the join kernels jump over
//!   irrelevant stream regions instead of scanning them;
//! * [`IdStreamIndex::build_with_summary`] additionally splits each
//!   column into per-summary-path partitions (φ of Definition 4.2.1),
//!   and [`IdStreamIndex::pruned_stream`] reassembles, in pre order,
//!   only the partitions a query pattern can actually touch — the
//!   partition selection of `summary::matching`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use algebra::{IdColumns, OrderSpec, Relation, Schema, Seek, SkipIndex, Tuple, TupleBatch, Value};
use summary::{Summary, SummaryNodeId};
use xmltree::{Document, NodeKind, StructuralId};

use algebra::Catalog;

/// Keep-fraction above which [`IdStreamIndex::pruned_stream`] serves the
/// whole column instead of merging partitions: when the summary keeps
/// more than 3/4 of a column, the k-way heap merge costs more than the
/// scan it saves *and* its freshly-merged output used to arrive without
/// fences, so skip-seeks silently degraded to linear advances whenever
/// pruning was on. Falling back keeps the stored fences live — this is
/// what makes `skip_index × summary_pruning` compose on dense columns.
const KEEP_FALLBACK_NUM: usize = 3;
const KEEP_FALLBACK_DEN: usize = 4;

/// One summary-path slice of a column: the IDs (in document order) of
/// exactly the nodes classified to `path`.
#[derive(Debug, Clone)]
pub struct Partition {
    pub path: SummaryNodeId,
    pub ids: Vec<StructuralId>,
}

/// A pruned scan's result: the merged IDs plus how many of the column's
/// partitions were opened to produce them — the `partitions_opened /
/// partitions_total` figures of the execution metrics. The stream
/// carries its own fence levels so skip-seeks compose with pruning:
/// either the stored column's index (fallback case) or one built over
/// the merged output.
#[derive(Debug, Clone)]
pub struct PrunedStream {
    /// Pre-sorted merge of the selected partitions.
    pub ids: Vec<StructuralId>,
    /// Fence levels over exactly `ids`, ready for the seek kernels.
    pub skip: SkipIndex,
    pub opened: usize,
    pub total: usize,
}

#[derive(Debug, Clone)]
struct Column {
    ids: Vec<StructuralId>,
    /// The same stream in packed structure-of-arrays layout, for the
    /// vectorized kernels (`columnar_kernels`). Kept alongside the
    /// array-of-structs `ids` so `scan_slices` can stay zero-copy.
    cols: IdColumns,
    skip: SkipIndex,
    /// Summary-path partitions, sorted by path id; empty when the index
    /// was built without a summary.
    partitions: Vec<Partition>,
}

/// The index: one sorted `Vec<StructuralId>` column per `(label, kind)`,
/// each with a skip index and (optionally) summary-path partitions.
#[derive(Debug, Default, Clone)]
pub struct IdStreamIndex {
    columns: HashMap<(String, NodeKind), Column>,
}

impl IdStreamIndex {
    /// Build all columns in a single document pass (document order is
    /// pre order, so every column is born sorted).
    pub fn build(doc: &Document) -> IdStreamIndex {
        IdStreamIndex::build_inner(doc, None)
    }

    /// [`IdStreamIndex::build`] plus per-summary-path partitioning of
    /// every column, using the φ classification of `summary`. A document
    /// that does not conform to the summary gets unpartitioned columns
    /// (pruned scans then degrade to full scans, never to wrong ones).
    pub fn build_with_summary(doc: &Document, summary: &Summary) -> IdStreamIndex {
        IdStreamIndex::build_inner(doc, summary.classify(doc).as_deref())
    }

    fn build_inner(doc: &Document, phi: Option<&[SummaryNodeId]>) -> IdStreamIndex {
        let span = tracing::debug_span!(target: "uload::storage", "idstream_build");
        let _g = span.enter();
        let mut ids: HashMap<(String, NodeKind), Vec<StructuralId>> = HashMap::new();
        let mut parts: HashMap<(String, NodeKind), HashMap<SummaryNodeId, Vec<StructuralId>>> =
            HashMap::new();
        for n in doc.all_nodes() {
            let kind = doc.kind(n);
            if kind == NodeKind::Text {
                continue; // text nodes carry no label worth indexing
            }
            let key = (doc.label(n).to_string(), kind);
            let sid = doc.structural_id(n);
            ids.entry(key.clone()).or_default().push(sid);
            if let Some(phi) = phi {
                parts
                    .entry(key)
                    .or_default()
                    .entry(phi[n.index()])
                    .or_default()
                    .push(sid);
            }
        }
        let columns = ids
            .into_iter()
            .map(|(key, ids)| {
                let mut partitions: Vec<Partition> = parts
                    .remove(&key)
                    .map(|by_path| {
                        by_path
                            .into_iter()
                            .map(|(path, ids)| Partition { path, ids })
                            .collect()
                    })
                    .unwrap_or_default();
                partitions.sort_by_key(|p| p.path);
                let skip = SkipIndex::build(&ids);
                let cols = IdColumns::from_sids(&ids);
                (
                    key,
                    Column {
                        ids,
                        cols,
                        skip,
                        partitions,
                    },
                )
            })
            .collect();
        let idx = IdStreamIndex { columns };
        tracing::debug!(
            target: "uload::storage",
            "built ID-stream index: {} columns, {} ids, partitioned: {}",
            idx.len(),
            idx.total_ids(),
            phi.is_some()
        );
        idx
    }

    fn column(&self, label: &str, kind: NodeKind) -> Option<&Column> {
        self.columns.get(&(label.to_string(), kind))
    }

    /// The sorted ID column for a `(label, kind)` pair; empty when the
    /// document has no such nodes.
    pub fn stream(&self, label: &str, kind: NodeKind) -> &[StructuralId] {
        self.column(label, kind)
            .map(|c| c.ids.as_slice())
            .unwrap_or(&[])
    }

    /// Shorthand for element streams (the common twig case).
    pub fn elements(&self, label: &str) -> &[StructuralId] {
        self.stream(label, NodeKind::Element)
    }

    /// The skip index over a column, if the column exists.
    pub fn skip_index(&self, label: &str, kind: NodeKind) -> Option<&SkipIndex> {
        self.column(label, kind).map(|c| &c.skip)
    }

    /// The packed structure-of-arrays layout of a column, if the column
    /// exists — the physical representation the vectorized kernels
    /// consume. Payloads are positions, matching the order of
    /// [`IdStreamIndex::stream`].
    pub fn columnar(&self, label: &str, kind: NodeKind) -> Option<&IdColumns> {
        self.column(label, kind).map(|c| &c.cols)
    }

    /// Seek the column to the first position at or after `from` whose ID
    /// can still be a descendant of `anchor` (see
    /// [`SkipIndex::seek_descendant_of`]). Missing columns are empty.
    pub fn seek_descendant_of(
        &self,
        label: &str,
        kind: NodeKind,
        from: usize,
        anchor: StructuralId,
    ) -> Seek {
        match self.column(label, kind) {
            Some(c) => c.skip.seek_descendant_of(&c.ids, from, anchor),
            None => Seek {
                pos: 0,
                blocks_pruned: 0,
            },
        }
    }

    /// Seek the column past `anchor`'s whole subtree (see
    /// [`SkipIndex::seek_past`]). Missing columns are empty.
    pub fn seek_past(
        &self,
        label: &str,
        kind: NodeKind,
        from: usize,
        anchor: StructuralId,
    ) -> Seek {
        match self.column(label, kind) {
            Some(c) => c.skip.seek_past(&c.ids, from, anchor),
            None => Seek {
                pos: 0,
                blocks_pruned: 0,
            },
        }
    }

    /// The column's summary-path partitions (empty unless built with
    /// [`IdStreamIndex::build_with_summary`]).
    pub fn partitions(&self, label: &str, kind: NodeKind) -> &[Partition] {
        self.column(label, kind)
            .map(|c| c.partitions.as_slice())
            .unwrap_or(&[])
    }

    /// Reassemble, in pre order, only the partitions whose summary path
    /// is in `allowed` (which must be sorted — `summary::matching`
    /// returns its candidate sets sorted). Without partitions the whole
    /// column is returned and `opened == total == 0` signals that no
    /// pruning was available.
    ///
    /// When the selected partitions hold more than
    /// `KEEP_FALLBACK_NUM/KEEP_FALLBACK_DEN` of the column, the scan
    /// serves the whole column (with its stored fences) instead: the
    /// merge would cost more than the few elements it removes, and the
    /// prebuilt skip index over the full column keeps seek-skipping
    /// effective. `opened == total` reports the declined pruning
    /// honestly. Genuinely pruned merges get a fresh [`SkipIndex`] built
    /// over the merged output, so seeks compose either way.
    pub fn pruned_stream(
        &self,
        label: &str,
        kind: NodeKind,
        allowed: &[SummaryNodeId],
    ) -> PrunedStream {
        debug_assert!(allowed.windows(2).all(|w| w[0] <= w[1]));
        let Some(c) = self.column(label, kind) else {
            return PrunedStream {
                ids: Vec::new(),
                skip: SkipIndex::default(),
                opened: 0,
                total: 0,
            };
        };
        if c.partitions.is_empty() {
            return PrunedStream {
                ids: c.ids.clone(),
                skip: c.skip.clone(),
                opened: 0,
                total: 0,
            };
        }
        let selected: Vec<&Partition> = c
            .partitions
            .iter()
            .filter(|p| allowed.binary_search(&p.path).is_ok())
            .collect();
        let kept: usize = selected.iter().map(|p| p.ids.len()).sum();
        if kept * KEEP_FALLBACK_DEN > c.ids.len() * KEEP_FALLBACK_NUM {
            return PrunedStream {
                ids: c.ids.clone(),
                skip: c.skip.clone(),
                opened: c.partitions.len(),
                total: c.partitions.len(),
            };
        }
        // k-way merge by pre rank via a min-heap of partition heads;
        // partitions are individually sorted, so each element costs
        // O(log k) instead of a linear scan over all open cursors
        let mut ids = Vec::with_capacity(kept);
        let mut cursors = vec![0usize; selected.len()];
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = selected
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.ids.is_empty())
            .map(|(i, p)| Reverse((p.ids[0].pre, i)))
            .collect();
        while let Some(Reverse((_, i))) = heap.pop() {
            ids.push(selected[i].ids[cursors[i]]);
            cursors[i] += 1;
            if let Some(next) = selected[i].ids.get(cursors[i]) {
                heap.push(Reverse((next.pre, i)));
            }
        }
        let skip = SkipIndex::build(&ids);
        PrunedStream {
            ids,
            skip,
            opened: selected.len(),
            total: c.partitions.len(),
        }
    }

    /// Number of distinct `(label, kind)` columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Total IDs stored across all columns.
    pub fn total_ids(&self) -> usize {
        self.columns.values().map(|c| c.ids.len()).sum()
    }

    /// Borrowed view of a column as contiguous ID slices of at most
    /// `batch_size` elements — the zero-copy basis of
    /// [`IdStreamIndex::scan_batches`], and the right entry point for
    /// callers that work on raw IDs.
    pub fn scan_slices<'a>(
        &'a self,
        label: &str,
        kind: NodeKind,
        batch_size: usize,
    ) -> impl Iterator<Item = &'a [StructuralId]> + 'a {
        self.stream(label, kind).chunks(batch_size.max(1))
    }

    /// Stream a `(label, kind)` column as single-attribute `(ID)`
    /// [`TupleBatch`]es of at most `batch_size` rows each — the batched
    /// scan the pipelined executor pulls instead of materializing the
    /// whole `ids_<label>` relation up front. The column itself is never
    /// copied: each slice from [`IdStreamIndex::scan_slices`] is turned
    /// into tuples only at this cursor boundary, one batch at a time.
    /// Batches preserve document order (each one's rows are ID-sorted
    /// and contiguous).
    pub fn scan_batches<'a>(
        &'a self,
        label: &str,
        kind: NodeKind,
        batch_size: usize,
    ) -> impl Iterator<Item = TupleBatch> + 'a {
        self.scan_slices(label, kind, batch_size).map(|chunk| {
            TupleBatch::new(
                chunk
                    .iter()
                    .map(|&sid| Tuple::new(vec![Value::Id(sid)]))
                    .collect(),
            )
        })
    }

    /// Catalog name of a label's element column (attributes get an `@`).
    pub fn relation_of(label: &str) -> String {
        format!("ids_{label}")
    }

    /// Cache every column in the catalog as a single-attribute `(ID)`
    /// relation ordered by ID, so plans can scan streams by name and the
    /// evaluator sees them as pre-sorted.
    pub fn register(&self, catalog: &mut Catalog) {
        for ((label, kind), col) in &self.columns {
            let name = match kind {
                NodeKind::Attribute => format!("ids_@{label}"),
                _ => Self::relation_of(label),
            };
            let tuples = col
                .ids
                .iter()
                .map(|&sid| Tuple::new(vec![Value::Id(sid)]))
                .collect();
            catalog.insert_ordered(
                name,
                Relation::new(Schema::atoms(&["ID"]), tuples),
                OrderSpec::by("ID"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;

    #[test]
    fn columns_match_label_scans() {
        let doc = generate::xmark(3, 11);
        let idx = IdStreamIndex::build(&doc);
        for label in ["item", "keyword", "parlist", "listitem", "name"] {
            let want: Vec<StructuralId> = doc
                .nodes_with_label(label, NodeKind::Element)
                .map(|n| doc.structural_id(n))
                .collect();
            assert_eq!(idx.elements(label), want.as_slice(), "{label}");
            assert!(idx.elements(label).windows(2).all(|w| w[0].pre < w[1].pre));
        }
        assert!(idx.elements("no_such_label").is_empty());
        assert!(!idx.is_empty());
        assert!(idx.total_ids() > 0);
    }

    #[test]
    fn attribute_columns_are_separate() {
        let doc = generate::bib_sample();
        let idx = IdStreamIndex::build(&doc);
        let attrs = idx.stream("year", NodeKind::Attribute);
        assert!(!attrs.is_empty(), "bib sample has @year");
        assert!(idx.elements("year").is_empty(), "no year *elements*");
    }

    #[test]
    fn batched_scans_chunk_without_loss_or_reorder() {
        let doc = generate::xmark(3, 11);
        let idx = IdStreamIndex::build(&doc);
        let whole = idx.elements("item");
        assert!(whole.len() > 3);
        for bs in [1, 2, whole.len() - 1, whole.len(), whole.len() + 1] {
            let batches: Vec<TupleBatch> =
                idx.scan_batches("item", NodeKind::Element, bs).collect();
            assert!(batches.iter().all(|b| b.len() <= bs && !b.is_empty()));
            assert_eq!(batches.len(), whole.len().div_ceil(bs), "batch_size {bs}");
            let flat: Vec<StructuralId> = batches
                .iter()
                .flat_map(|b| b.tuples.iter().map(|t| t.get(0).as_id().unwrap()))
                .collect();
            assert_eq!(flat, whole, "batch_size {bs}");
        }
        // degenerate batch size clamps to 1 instead of spinning forever
        let n = idx.scan_batches("item", NodeKind::Element, 0).count();
        assert_eq!(n, whole.len());
        assert_eq!(idx.scan_batches("nope", NodeKind::Element, 8).count(), 0);
    }

    #[test]
    fn scan_slices_borrow_the_column() {
        let doc = generate::xmark(2, 5);
        let idx = IdStreamIndex::build(&doc);
        let whole = idx.elements("item");
        let slices: Vec<&[StructuralId]> = idx.scan_slices("item", NodeKind::Element, 4).collect();
        let flat: Vec<StructuralId> = slices.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, whole);
        // slices alias the column storage — no copies
        assert_eq!(slices[0].as_ptr(), whole.as_ptr());
    }

    #[test]
    fn register_caches_streams_in_catalog() {
        let doc = generate::xmark(2, 5);
        let idx = IdStreamIndex::build(&doc);
        let mut cat = Catalog::new();
        idx.register(&mut cat);
        let rel = cat.get(&IdStreamIndex::relation_of("item")).unwrap();
        assert_eq!(rel.len(), idx.elements("item").len());
        assert_eq!(rel.schema, Schema::atoms(&["ID"]));
        assert_eq!(
            rel.tuples[0].get(0).as_id().unwrap(),
            idx.elements("item")[0]
        );
    }

    #[test]
    fn column_seeks_match_linear_scans() {
        let doc = generate::xmark(3, 7);
        let idx = IdStreamIndex::build(&doc);
        let keywords = idx.elements("keyword");
        let anchor = idx.elements("item")[2];
        let d = idx.seek_descendant_of("keyword", NodeKind::Element, 0, anchor);
        assert_eq!(
            d.pos,
            keywords.iter().position(|s| s.pre > anchor.pre).unwrap()
        );
        let p = idx.seek_past("keyword", NodeKind::Element, 0, anchor);
        assert_eq!(
            p.pos,
            keywords
                .iter()
                .position(|s| s.pre > anchor.pre && s.post > anchor.post)
                .unwrap()
        );
        assert_eq!(
            idx.seek_past("no_such", NodeKind::Element, 0, anchor).pos,
            0
        );
    }

    #[test]
    fn summary_partitions_cover_each_column_exactly() {
        let doc = generate::xmark(2, 9);
        let s = Summary::of_document(&doc);
        let idx = IdStreamIndex::build_with_summary(&doc, &s);
        for label in ["keyword", "item", "text"] {
            let parts = idx.partitions(label, NodeKind::Element);
            assert!(!parts.is_empty(), "{label} must be partitioned");
            let total: usize = parts.iter().map(|p| p.ids.len()).sum();
            assert_eq!(total, idx.elements(label).len(), "{label}");
            // partitions hold the φ classification: every id's label path
            // is the partition's summary path
            for p in parts {
                assert_eq!(s.label(p.path), label);
            }
        }
        // unsummarized build has no partitions
        let plain = IdStreamIndex::build(&doc);
        assert!(plain.partitions("keyword", NodeKind::Element).is_empty());
    }

    #[test]
    fn pruned_streams_merge_selected_partitions_in_pre_order() {
        let doc = generate::xmark(2, 9);
        let s = Summary::of_document(&doc);
        let idx = IdStreamIndex::build_with_summary(&doc, &s);
        let parts = idx.partitions("keyword", NodeKind::Element);
        assert!(parts.len() >= 2, "need several keyword paths");
        // all partitions selected ⇒ keep-fraction fallback: the full
        // column with its stored fences, opened == total
        let all: Vec<SummaryNodeId> = parts.iter().map(|p| p.path).collect();
        let full = idx.pruned_stream("keyword", NodeKind::Element, &all);
        assert_eq!(full.ids, idx.elements("keyword"));
        assert_eq!(full.opened, full.total);
        assert_eq!(full.skip.len(), full.ids.len());
        // a single small partition (under the keep-fraction threshold)
        // comes back verbatim, still pre-sorted, with fresh fences
        let small = parts.iter().min_by_key(|p| p.ids.len()).unwrap();
        assert!(small.ids.len() * 4 <= idx.elements("keyword").len() * 3);
        let one = idx.pruned_stream("keyword", NodeKind::Element, &[small.path]);
        assert_eq!(one.ids, small.ids);
        assert_eq!(one.opened, 1);
        assert!(one.ids.windows(2).all(|w| w[0].pre < w[1].pre));
        assert_eq!(one.skip.len(), one.ids.len());
        // nothing selected → empty stream, zero opened
        let none = idx.pruned_stream("keyword", NodeKind::Element, &[]);
        assert!(none.ids.is_empty());
        assert_eq!(none.opened, 0);
        assert_eq!(none.total, parts.len());
        // unpartitioned index: full column, opened == total == 0
        let plain = IdStreamIndex::build(&doc);
        let fallback = plain.pruned_stream("keyword", NodeKind::Element, &[]);
        assert_eq!(fallback.ids, plain.elements("keyword"));
        assert_eq!((fallback.opened, fallback.total), (0, 0));
        assert_eq!(fallback.skip.len(), fallback.ids.len());
    }

    #[test]
    fn pruned_streams_carry_composable_fences() {
        // a genuinely pruned merge must arrive with fences over exactly
        // the merged output so skip-seeks compose with pruning
        let doc = generate::xmark(3, 11);
        let s = Summary::of_document(&doc);
        let idx = IdStreamIndex::build_with_summary(&doc, &s);
        let parts = idx.partitions("keyword", NodeKind::Element);
        let mut chosen: Vec<SummaryNodeId> = Vec::new();
        let mut kept = 0usize;
        let limit = idx.elements("keyword").len() / 2;
        for p in parts {
            if kept + p.ids.len() <= limit {
                chosen.push(p.path);
                kept += p.ids.len();
            }
        }
        chosen.sort_unstable();
        assert!(!chosen.is_empty(), "need a sub-threshold selection");
        let pruned = idx.pruned_stream("keyword", NodeKind::Element, &chosen);
        assert!(pruned.ids.len() < idx.elements("keyword").len());
        assert_eq!(pruned.skip.len(), pruned.ids.len());
        // the carried index seeks correctly over the merged stream
        let anchor = idx.elements("item")[2];
        let want = pruned
            .ids
            .iter()
            .position(|s| s.pre > anchor.pre)
            .unwrap_or(pruned.ids.len());
        assert_eq!(
            pruned.skip.seek_descendant_of(&pruned.ids, 0, anchor).pos,
            want
        );
    }

    #[test]
    fn columnar_layout_mirrors_the_streams() {
        let doc = generate::xmark(3, 7);
        let idx = IdStreamIndex::build(&doc);
        for label in ["item", "keyword", "parlist"] {
            let cols = idx.columnar(label, NodeKind::Element).unwrap();
            let ids = idx.elements(label);
            assert_eq!(cols.len(), ids.len(), "{label}");
            for (i, &sid) in ids.iter().enumerate() {
                assert_eq!(cols.sid(i), sid);
                assert_eq!(cols.payload(i), i);
            }
        }
        assert!(idx.columnar("no_such", NodeKind::Element).is_none());
    }
}
