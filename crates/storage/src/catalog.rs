//! The XAM model library (§2.3): ready-made XAM descriptions of published
//! XML storage and indexing schemes, demonstrating the language's
//! expressive power. Each function returns `(name, XAM)` pairs that can be
//! fed to a [`crate::MaterializedStore`] and to the rewriting layer.

use summary::Summary;
use xam_core::{parse_xam, Xam};
use xmltree::NodeKind;

/// The *Edge* approach of Florescu & Kossmann (Figure 2.11a): element values,
/// attribute values, elements by (simple, order-reflecting) ID, and
/// attributes. The `source`-indexed variant adds an `R` marker.
pub fn edge_model() -> Vec<(String, Xam)> {
    vec![
        (
            "edge_elem_val".into(),
            parse_xam("//*[id:o,tag,val]").unwrap(),
        ),
        (
            "edge_attr_val".into(),
            parse_xam("//e:*[id:o]{ /@*[val] }").unwrap(),
        ),
        ("edge_elements".into(), parse_xam("//*[id:o,tag]").unwrap()),
        (
            "edge_source_index".into(),
            parse_xam("//*[id:o!]{ /*[id:o,tag,val] }").unwrap(),
        ),
    ]
}

/// The *Universal table* (Figure 2.11b): one wide tuple per source node
/// with outer-joined child slots — modeled as a XAM with optional child
/// branches for every label in the summary.
pub fn universal_model(s: &Summary) -> Vec<(String, Xam)> {
    let mut labels: Vec<String> = Vec::new();
    for n in s.all_nodes() {
        if s.kind(n) == NodeKind::Element && s.parent(n).is_some() {
            let l = s.label(n).to_string();
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
    }
    let mut body = String::from("//src:*[id:o,tag]{ ");
    for (i, l) in labels.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("/? {l}[id:o,val]"));
    }
    body.push_str(" }");
    vec![("universal".into(), parse_xam(&body).unwrap())]
}

/// DOM access paths (Figure 2.13 a–e): `getElementsByTagName` (tag
/// required), parent-to-child and child-to-parent navigation (IDs
/// required), descendant-by-tag.
pub fn dom_model() -> Vec<(String, Xam)> {
    vec![
        // (a) elements of a given (required) tag
        ("dom_by_tag".into(), parse_xam("//*[id:i,tag!]").unwrap()),
        // (c) getChildNodes: parent ID required, children returned
        (
            "dom_children".into(),
            parse_xam("//*[id:i!]{ /*[id:i,tag,val] }").unwrap(),
        ),
        // (d) getParentNode: child ID required, parent returned
        (
            "dom_parent".into(),
            parse_xam("//*[id:i]{ /*[id:i!] }").unwrap(),
        ),
        // (e) descendants of a known node with a known tag
        (
            "dom_desc_by_tag".into(),
            parse_xam("//*[id:i!]{ //*[id:i,tag!] }").unwrap(),
        ),
    ]
}

/// Tag-partitioned storage (Timber/Natix, §2.3.2): per-tag ID sequences —
/// one XAM per element label of the summary.
pub fn tag_partition_model(s: &Summary) -> Vec<(String, Xam)> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for n in s.all_nodes() {
        if s.kind(n) != NodeKind::Element || s.parent(n).is_none() {
            continue;
        }
        let l = s.label(n).to_string();
        if seen.insert(l.clone()) {
            out.push((
                format!("tagpart_{l}"),
                parse_xam(&format!("//{l}[id:s]")).unwrap(),
            ));
        }
    }
    out
}

/// Path-partitioned storage (XQueC/early Monet, Figure 2.14b — "the
/// preferred representation"): one XAM per rooted path, with `[Tag=c]`
/// filters along the chain, returning structural IDs (and values for
/// leaf-adjacent paths).
pub fn path_partition_model(s: &Summary) -> Vec<(String, Xam)> {
    let mut out = Vec::new();
    for n in s.all_nodes() {
        if s.kind(n) == NodeKind::Text {
            continue;
        }
        // build /l1{ /l2{ … [id:s,val] } }
        let mut chain: Vec<String> = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            let sigil = if s.kind(c) == NodeKind::Attribute {
                "@"
            } else {
                ""
            };
            chain.push(format!("{sigil}{}", s.label(c)));
            cur = s.parent(c);
        }
        chain.reverse();
        let mut text = String::new();
        for (i, l) in chain.iter().enumerate() {
            if i == 0 {
                text.push_str(&format!("/{l}"));
            } else {
                text.push_str(&format!("{{ /{l}"));
            }
            if i == chain.len() - 1 {
                text.push_str("[id:s,val]");
            }
        }
        for _ in 1..chain.len() {
            text.push_str(" }");
        }
        out.push((
            crate::engines::PathPartitionStore::relation_of(&s.path_of(n)),
            parse_xam(&text).unwrap(),
        ));
    }
    out
}

/// XISS indexes (Figure 2.15): element index (tag required), attribute
/// index, structural parent/child indexes, value index.
pub fn xiss_model() -> Vec<(String, Xam)> {
    vec![
        ("xiss_element".into(), parse_xam("//*[id:s,tag!]").unwrap()),
        (
            "xiss_attribute".into(),
            parse_xam("//e:*[id:s]{ /@*[id:s,val] }").unwrap(),
        ),
        (
            "xiss_children".into(),
            parse_xam("//*[id:s!]{ /*[id:s,tag] }").unwrap(),
        ),
        (
            "xiss_parent".into(),
            parse_xam("//*[id:s]{ /*[id:s!] }").unwrap(),
        ),
        ("xiss_value".into(), parse_xam("//*[id:s,val!]").unwrap()),
    ]
}

/// A T-index for a specific query template (Figure 2.16): direct access
/// to `*.book` nodes with a `name/last = "Suciu"`-style condition.
pub fn t_index(label: &str, key_path: &[&str], key_value: &str) -> (String, Xam) {
    let mut text = format!("//*{{ /{label}[id:s]{{ ");
    for (i, k) in key_path.iter().enumerate() {
        if i > 0 {
            text.push_str("{ ");
        }
        text.push_str(&format!("/{k}"));
        if i == key_path.len() - 1 {
            text.push_str(&format!("[val=\"{key_value}\"]"));
        }
    }
    for _ in 1..key_path.len() {
        text.push_str(" }");
    }
    text.push_str(" } }");
    (format!("tindex_{label}"), parse_xam(&text).unwrap())
}

/// IndexFabric raw paths (Figure 2.17): root-to-leaf paths with required
/// leaf values — a full-text-ish lookup keyed by value.
pub fn index_fabric_raw(s: &Summary) -> Vec<(String, Xam)> {
    let mut out = Vec::new();
    for n in s.all_nodes() {
        // leaf element paths only (those with a #text child)
        let has_text = s.children(n).iter().any(|&c| s.kind(c) == NodeKind::Text);
        if !has_text {
            continue;
        }
        let mut chain: Vec<String> = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            chain.push(s.label(c).to_string());
            cur = s.parent(c);
        }
        chain.reverse();
        let mut text = String::new();
        for (i, l) in chain.iter().enumerate() {
            if i == 0 {
                text.push_str(&format!("/{l}"));
            } else {
                text.push_str(&format!("{{ /{l}"));
            }
            if i == chain.len() - 1 {
                text.push_str("[id:s,val!]");
            }
        }
        for _ in 1..chain.len() {
            text.push_str(" }");
        }
        out.push((
            format!("fabric{}", s.path_of(n).replace('/', "-")),
            parse_xam(&text).unwrap(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaterializedStore;
    use xmltree::generate::{bib_document, bib_sample};

    #[test]
    fn edge_model_materializes() {
        let doc = bib_sample();
        let mut store = MaterializedStore::new();
        for (name, xam) in edge_model() {
            if xam.has_access_restrictions() {
                continue; // indexes need bindings; skip materialization
            }
            store.add_view(name, xam, &doc).unwrap();
        }
        assert!(store.relation("edge_elements").unwrap().len() >= 7);
    }

    #[test]
    fn tag_partition_covers_labels() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let model = tag_partition_model(&s);
        let names: Vec<&str> = model.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"tagpart_book"));
        assert!(names.contains(&"tagpart_author"));
        // tags are deduplicated across paths (author under book & phdthesis)
        assert_eq!(names.iter().filter(|n| **n == "tagpart_author").count(), 1);
    }

    #[test]
    fn path_partition_xams_select_by_path() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let model = path_partition_model(&s);
        let mut store = MaterializedStore::new();
        for (name, xam) in model {
            store.add_view(name, xam, &doc).unwrap();
        }
        let book_author = store
            .relation(&crate::engines::PathPartitionStore::relation_of(
                "/bib/book/author",
            ))
            .unwrap();
        assert_eq!(book_author.len(), 4);
        let phd_author = store
            .relation(&crate::engines::PathPartitionStore::relation_of(
                "/bib/phdthesis/author",
            ))
            .unwrap();
        assert_eq!(phd_author.len(), 1);
    }

    #[test]
    fn universal_model_one_wide_tuple_per_node() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let model = universal_model(&s);
        let mut store = MaterializedStore::new();
        for (name, xam) in model {
            store.add_view(name, xam, &doc).unwrap();
        }
        let u = store.relation("universal").unwrap();
        // every element yields at least one source tuple (repeated child
        // labels multiply, as in a full outerjoin of Edge tables)
        assert!(u.len() >= doc.element_count());
    }

    #[test]
    fn t_index_parses_and_models_lookup() {
        let (_, xam) = t_index("book", &["title"], "Data on the Web");
        assert!(xam.pattern_size() >= 3);
        let doc = bib_document();
        let rel = xam_core::evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn index_fabric_requires_values() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let model = index_fabric_raw(&s);
        assert!(!model.is_empty());
        for (_, xam) in &model {
            assert!(xam.has_access_restrictions());
        }
    }

    #[test]
    fn xiss_and_dom_models_parse() {
        assert_eq!(xiss_model().len(), 5);
        assert_eq!(dom_model().len(), 4);
    }
}
