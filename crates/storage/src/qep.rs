//! The QEP catalogue of §2.1: the paper's query execution plans
//! `QEP1`–`QEP13`, each expressed against the storage engine it was
//! written for. The point of the section — and of this module's tests —
//! is *physical data independence*: the same query is answered by wildly
//! different plans over different layouts, producing the same result.
//!
//! The queries:
//! * `q`    — `for $x in //book return <info>{$x/author}{$x/title}</info>`
//! * `q'`   — `//book//section`
//! * `q''`  — books of 1999 titled "Data on the Web", returning authors
//! * `q'''` — book titles containing the word "Web"

use algebra::{Axis, Catalog, CmpOp, JoinKind, LogicalPlan, Operand, Path, Predicate, Value};
use summary::Summary;
use xmltree::Document;

use crate::engines::{
    register_lookup, CompositeIndex, ContentStore, EdgeStore, FullTextIndex, HybridStore,
    PathPartitionStore, TagPartitionStore,
};
use crate::idstream::IdStreamIndex;

/// A ready-to-run plan with its backing catalog.
pub struct Qep {
    pub name: &'static str,
    pub plan: LogicalPlan,
    pub catalog: Catalog,
}

impl Qep {
    /// Operator count — the plan-complexity metric of the §2.1 discussion.
    pub fn operators(&self) -> usize {
        self.plan.size()
    }
}

/// `QEP1` — query `q` on the **Hybrid** relational store: titles are
/// inlined in `book`, authors joined by key/foreign-key.
pub fn qep1(doc: &Document) -> Qep {
    let store = HybridStore::build(doc);
    let plan = LogicalPlan::scan("book")
        .rename(&["bID", "bParentID", "yearValue", "titleValue"])
        .join(
            LogicalPlan::scan("author"),
            Predicate::col_cmp("bID", CmpOp::Eq, "parentID"),
            JoinKind::Inner,
        )
        .sort(&["bID"])
        .project(&["authorValue", "titleValue"]);
    Qep {
        name: "QEP1 (Hybrid relational)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP3` — query `q` on the custom `book-author-title` materialized
/// view: a single scan.
pub fn qep3(doc: &Document) -> Qep {
    let mut store = crate::MaterializedStore::new();
    store
        .add_view(
            "book-author-title",
            xam_core::parse_xam("//book[id:s]{ /? author[val], /? title[val] }").unwrap(),
            doc,
        )
        .unwrap();
    let plan = LogicalPlan::scan("book-author-title");
    Qep {
        name: "QEP3 (book-author-title view)",
        plan,
        catalog: store.catalog().clone(),
    }
}

/// `QEP4` — query `q` on native model #1 (Galax-style `main/name/value`
/// with parent pointers): label selections plus parent-ID equi-joins. We
/// model `main` by the Edge store (same information content).
pub fn qep4(doc: &Document) -> Qep {
    let store = EdgeStore::build(doc);
    let books = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("book")))
        .rename(&["b_src", "b_id", "b_ord", "b_name", "b_flag"]);
    let authors = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("author")))
        .rename(&["a_src", "a_id", "a_ord", "a_name", "a_flag"]);
    let titles = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("title")))
        .rename(&["t_src", "t_id", "t_ord", "t_name", "t_flag"]);
    let plan = books
        .join(
            authors,
            Predicate::col_cmp("b_id", CmpOp::Eq, "a_src"),
            JoinKind::Inner,
        )
        .join(
            titles,
            Predicate::col_cmp("b_id", CmpOp::Eq, "t_src"),
            JoinKind::Inner,
        )
        .project(&["a_id", "t_id"]);
    Qep {
        name: "QEP4 (edge relation, parent-pointer joins)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP5` — query `q` on native model #2: same `main` collection but with
/// structural identifiers, so parent pointers are replaced by structural
/// joins (`main1.ID ≺ main2.ID`).
pub fn qep5(doc: &Document) -> Qep {
    let store = EdgeStore::build(doc);
    let books = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("book")))
        .rename(&["b_src", "b_id", "b_ord", "b_name", "b_flag"]);
    let authors = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("author")))
        .rename(&["a_src", "a_id", "a_ord", "a_name", "a_flag"]);
    let titles = LogicalPlan::scan("edge")
        .select(Predicate::eq("name", Value::str("title")))
        .rename(&["t_src", "t_id", "t_ord", "t_name", "t_flag"]);
    let plan = books
        .struct_join(authors, "b_id", "a_id", Axis::Child, JoinKind::Inner)
        .struct_join(titles, "b_id", "t_id", Axis::Child, JoinKind::Inner)
        .project(&["a_id", "t_id"]);
    Qep {
        name: "QEP5 (structural-ID main collection)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP6` — query `q` on native model #3 (tag partitioning): per-tag ID
/// collections, structural joins, then text recomposition outerjoins.
pub fn qep6(doc: &Document) -> Qep {
    let store = TagPartitionStore::build(doc);
    let plan = LogicalPlan::scan("tag_book")
        .rename(&["b_id"])
        .struct_join(
            LogicalPlan::scan("tag_title").rename(&["t_id"]),
            "b_id",
            "t_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .struct_join(
            LogicalPlan::scan("tag_author").rename(&["a_id"]),
            "b_id",
            "a_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .join(
            LogicalPlan::scan("text").rename(&["tt_id", "tt_text"]),
            Predicate::col_cmp("t_id", CmpOp::Eq, "tt_id"),
            JoinKind::LeftOuter,
        )
        .join(
            LogicalPlan::scan("text").rename(&["at_id", "at_text"]),
            Predicate::col_cmp("a_id", CmpOp::Eq, "at_id"),
            JoinKind::LeftOuter,
        )
        .project(&["at_text", "tt_text"]);
    Qep {
        name: "QEP6 (tag partitioning)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP6t` — `QEP6` after holistic twig fusion: the structural-join
/// cascade collapses into a single `TwigJoin` operator (same catalog,
/// same answer, one fewer operator, no intermediate pair list).
pub fn qep6_twig(doc: &Document) -> Qep {
    let q = qep6(doc);
    Qep {
        name: "QEP6t (tag partitioning, holistic twig)",
        plan: algebra::fuse_struct_joins(&q.plan),
        catalog: q.catalog,
    }
}

/// `QEP14` — query `q` planned over the **columnar ID-stream index**:
/// the per-label `ids_*` columns are built once and cached in the
/// catalog, and the whole `book{/author,/title}` pattern runs as one
/// twig operator over those pre-sorted streams.
pub fn qep14(doc: &Document) -> Qep {
    let mut catalog = Catalog::new();
    IdStreamIndex::build(doc).register(&mut catalog);
    let plan = LogicalPlan::scan(IdStreamIndex::relation_of("book"))
        .rename(&["b_id"])
        .struct_join(
            LogicalPlan::scan(IdStreamIndex::relation_of("author")).rename(&["a_id"]),
            "b_id",
            "a_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .struct_join(
            LogicalPlan::scan(IdStreamIndex::relation_of("title")).rename(&["t_id"]),
            "b_id",
            "t_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .project(&["a_id", "t_id"]);
    Qep {
        name: "QEP14 (columnar ID streams, holistic twig)",
        plan: algebra::fuse_struct_joins(&plan),
        catalog,
    }
}

/// `QEP7` — query `q` on native model #4 (path partitioning): only the
/// `bib-book-*` partitions are touched (more selective disk access than
/// QEP6 — phdthesis titles/authors never enter the joins).
pub fn qep7(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let r = |p: &str| LogicalPlan::scan(PathPartitionStore::relation_of(p));
    let plan = r("/bib/book")
        .rename(&["b_id"])
        .struct_join(
            r("/bib/book/title").rename(&["t_id"]),
            "b_id",
            "t_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .struct_join(
            r("/bib/book/author").rename(&["a_id"]),
            "b_id",
            "a_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .join(
            LogicalPlan::scan("text").rename(&["tt_id", "tt_text"]),
            Predicate::col_cmp("t_id", CmpOp::Eq, "tt_id"),
            JoinKind::LeftOuter,
        )
        .join(
            LogicalPlan::scan("text").rename(&["at_id", "at_text"]),
            Predicate::col_cmp("a_id", CmpOp::Eq, "at_id"),
            JoinKind::LeftOuter,
        )
        .project(&["at_text", "tt_text"]);
    Qep {
        name: "QEP7 (path partitioning)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP8` — query `q'` (`//book//section`) on the path-partitioned store:
/// structural join of the book partition with every section partition
/// (recursion over paths), followed by text recomposition. Here sections
/// live on `/bib/book/body/section`.
pub fn qep8(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let mut section_paths: Vec<String> = store
        .paths
        .iter()
        .filter(|(p, _)| p.ends_with("/section"))
        .map(|(p, _)| p.clone())
        .collect();
    section_paths.sort();
    let r = |p: &str| LogicalPlan::scan(PathPartitionStore::relation_of(p));
    // union the section partitions, then one structural join with books,
    // then re-assemble the textual content of each section subtree
    let mut sections = r(&section_paths[0]).rename(&["s_id"]);
    for p in &section_paths[1..] {
        sections = sections.union(r(p).rename(&["s_id"]));
    }
    let plan = r("/bib/book")
        .rename(&["b_id"])
        .struct_join(sections, "b_id", "s_id", Axis::Descendant, JoinKind::Inner)
        .join(
            LogicalPlan::scan("text").rename(&["t_id", "t_text"]),
            Predicate::col_cmp("s_id", CmpOp::Ancestor, "t_id"),
            JoinKind::LeftOuter,
        )
        .project(&["s_id", "t_text"]);
    Qep {
        name: "QEP8 (q' on path partitioning: fragmented recomposition)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP9` — query `q'` on the **non-fragmented** store: a single
/// structural join against `sectionContent`, no recomposition
/// (the "much simpler than QEP8" plan).
pub fn qep9(doc: &Document, summary: &Summary) -> Qep {
    let path_store = PathPartitionStore::build(doc, summary);
    let blob = ContentStore::build(doc, &["section"]);
    let mut catalog = path_store.catalog;
    catalog.insert(
        "sectionContent",
        blob.catalog.get("sectionContent").unwrap().clone(),
    );
    let plan = LogicalPlan::scan(PathPartitionStore::relation_of("/bib/book"))
        .rename(&["b_id"])
        .struct_join(
            LogicalPlan::scan("sectionContent").rename(&["s_id", "s_content"]),
            "b_id",
            "s_id",
            Axis::Descendant,
            JoinKind::Inner,
        )
        .project(&["s_id", "s_content"]);
    Qep {
        name: "QEP9 (q' on unfragmented sectionContent)",
        plan,
        catalog,
    }
}

/// `QEP10` — query `q''` on the path-partitioned store: value selections
/// on `text` feed structural semijoins before the author join.
pub fn qep10(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let r = |p: &str| LogicalPlan::scan(PathPartitionStore::relation_of(p));
    let title_hits = r("/bib/book/title").rename(&["t_id"]).join(
        LogicalPlan::scan("text")
            .select(Predicate::eq("text", Value::str("Data on the Web")))
            .rename(&["tt_id", "tt_text"]),
        Predicate::col_cmp("t_id", CmpOp::Eq, "tt_id"),
        JoinKind::Semi,
    );
    let year_hits = r("/bib/book/year").rename(&["y_id"]).join(
        LogicalPlan::scan("text")
            .select(Predicate::eq("text", Value::str("1999")))
            .rename(&["yt_id", "yt_text"]),
        Predicate::col_cmp("y_id", CmpOp::Eq, "yt_id"),
        JoinKind::Semi,
    );
    let plan = r("/bib/book")
        .rename(&["b_id"])
        .struct_join(title_hits, "b_id", "t_id", Axis::Child, JoinKind::Semi)
        .struct_join(year_hits, "b_id", "y_id", Axis::Child, JoinKind::Semi)
        .struct_join(
            r("/bib/book/author").rename(&["a_id"]),
            "b_id",
            "a_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .join(
            LogicalPlan::scan("text").rename(&["at_id", "at_text"]),
            Predicate::col_cmp("a_id", CmpOp::Eq, "at_id"),
            JoinKind::Inner,
        )
        .project(&["at_text"]);
    Qep {
        name: "QEP10 (q'' by scans and structural semijoins)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP11` — query `q''` using the `booksByYearTitle` composite index: an
/// index lookup replaces both selections and both semijoins.
pub fn qep11(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let idx = CompositeIndex::build(doc, "book", "year", "title");
    let mut catalog = store.catalog;
    register_lookup(
        &mut catalog,
        "idx_hits",
        idx.lookup("1999", "Data on the Web"),
    );
    let plan = LogicalPlan::scan("idx_hits")
        .rename(&["b_id"])
        .struct_join(
            LogicalPlan::scan(PathPartitionStore::relation_of("/bib/book/author"))
                .rename(&["a_id"]),
            "b_id",
            "a_id",
            Axis::Child,
            JoinKind::Inner,
        )
        .join(
            LogicalPlan::scan("text").rename(&["at_id", "at_text"]),
            Predicate::col_cmp("a_id", CmpOp::Eq, "at_id"),
            JoinKind::Inner,
        )
        .project(&["at_text"]);
    Qep {
        name: "QEP11 (q'' via booksByYearTitle index)",
        plan,
        catalog,
    }
}

/// `QEP12` — query `q'''` by brute force: `σ_contains` over every text
/// value, then a join back to the title partition.
pub fn qep12(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let plan = LogicalPlan::scan("text")
        .select(Predicate::Cmp(
            Operand::Col(Path::new("text")),
            CmpOp::Contains,
            Operand::Const(Value::str("Web")),
        ))
        .rename(&["t_id", "t_text"])
        .join(
            LogicalPlan::scan(PathPartitionStore::relation_of("/bib/book/title"))
                .rename(&["ti_id"]),
            Predicate::col_cmp("t_id", CmpOp::Eq, "ti_id"),
            JoinKind::Semi,
        )
        .project(&["t_id", "t_text"]);
    Qep {
        name: "QEP12 (q''' by string matching over all text)",
        plan,
        catalog: store.catalog,
    }
}

/// `QEP13` — query `q'''` via the full-text index: one lookup, one join.
pub fn qep13(doc: &Document, summary: &Summary) -> Qep {
    let store = PathPartitionStore::build(doc, summary);
    let fti = FullTextIndex::build(doc, "title");
    let mut catalog = store.catalog;
    register_lookup(&mut catalog, "fti_hits", fti.lookup("Web"));
    let plan = LogicalPlan::scan("fti_hits")
        .rename(&["t_id"])
        .join(
            LogicalPlan::scan(PathPartitionStore::relation_of("/bib/book/title"))
                .rename(&["ti_id"]),
            Predicate::col_cmp("t_id", CmpOp::Eq, "ti_id"),
            JoinKind::Semi,
        )
        .join(
            LogicalPlan::scan("text").rename(&["tt_id", "tt_text"]),
            Predicate::col_cmp("t_id", CmpOp::Eq, "tt_id"),
            JoinKind::Inner,
        )
        .project(&["t_id", "tt_text"]);
    Qep {
        name: "QEP13 (q''' via IndexFabric-style FTI)",
        plan,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::Evaluator;
    use xmltree::generate::{bib_document, bib_document_with_sections};

    fn run(q: &Qep, doc: &Document) -> algebra::Relation {
        Evaluator::with_document(&q.catalog, doc)
            .eval(&q.plan)
            .unwrap()
    }

    /// The flexibility claim: q answered identically across layouts.
    #[test]
    fn q_has_same_cardinality_across_stores() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        // (author, title) pairs for books: 3 + 1 = 4
        let counts = vec![
            run(&qep1(&doc), &doc).len(),
            run(&qep4(&doc), &doc).len(),
            run(&qep5(&doc), &doc).len(),
            run(&qep6(&doc), &doc).len(),
            run(&qep7(&doc, &s), &doc).len(),
        ];
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
        assert_eq!(counts[0], 4);
    }

    #[test]
    fn qep3_is_a_single_scan() {
        let doc = bib_document();
        let q = qep3(&doc);
        assert_eq!(q.operators(), 1);
        // one row per (book, author) pair padded with the title — the
        // paper's book-author-title relation
        assert_eq!(run(&q, &doc).len(), 4);
    }

    #[test]
    fn twig_fusion_preserves_qep6() {
        let doc = bib_document();
        let q6 = qep6(&doc);
        let q6t = qep6_twig(&doc);
        // the two structural joins collapsed into one twig operator
        assert!(q6t.operators() < q6.operators());
        let r6 = run(&q6, &doc);
        let r6t = run(&q6t, &doc);
        assert_eq!(r6.schema, r6t.schema);
        assert_eq!(r6.tuples, r6t.tuples);
    }

    #[test]
    fn qep14_answers_q_from_cached_id_streams() {
        let doc = bib_document();
        let q = qep14(&doc);
        assert_eq!(run(&q, &doc).len(), 4);
        assert!(
            format!("{}", q.plan).contains("twig("),
            "{}: expected a fused twig operator",
            q.plan
        );
    }

    #[test]
    fn qep7_touches_fewer_tuples_than_qep6() {
        // the point of path partitioning: phdthesis authors never join
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let tag = TagPartitionStore::build(&doc);
        let path = PathPartitionStore::build(&doc, &s);
        let tag_authors = tag.catalog.get("tag_author").unwrap().len();
        let path_book_authors = path
            .catalog
            .get(&PathPartitionStore::relation_of("/bib/book/author"))
            .unwrap()
            .len();
        assert!(path_book_authors < tag_authors);
    }

    #[test]
    fn qep9_simpler_and_equal_to_qep8() {
        let doc = bib_document_with_sections();
        let s = Summary::of_document(&doc);
        let q8 = qep8(&doc, &s);
        let q9 = qep9(&doc, &s);
        assert!(
            q9.operators() < q8.operators(),
            "{} vs {}",
            q9.operators(),
            q8.operators()
        );
        // both find the same sections
        let r8 = run(&q8, &doc);
        let r9 = run(&q9, &doc);
        let ids8: std::collections::BTreeSet<u32> = r8
            .tuples
            .iter()
            .map(|t| t.get(0).as_id().unwrap().pre)
            .collect();
        let ids9: std::collections::BTreeSet<u32> = r9
            .tuples
            .iter()
            .map(|t| t.get(0).as_id().unwrap().pre)
            .collect();
        assert_eq!(ids8, ids9);
        assert_eq!(ids9.len(), 3);
    }

    #[test]
    fn qep10_and_qep11_agree() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let r10 = run(&qep10(&doc, &s), &doc);
        let r11 = run(&qep11(&doc, &s), &doc);
        assert_eq!(r10.len(), 3); // Abiteboul, Buneman, Suciu
        assert_eq!(r10.len(), r11.len());
        // the index plan is smaller
        assert!(qep11(&doc, &s).operators() < qep10(&doc, &s).operators());
    }

    #[test]
    fn qep12_and_qep13_agree() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let r12 = run(&qep12(&doc, &s), &doc);
        let r13 = run(&qep13(&doc, &s), &doc);
        assert_eq!(r12.len(), 1); // only "Data on the Web" contains "Web"
        assert_eq!(r12.len(), r13.len());
    }
}
