//! The materialized XAM store: named XAM definitions evaluated over a
//! document into nested relations.
//!
//! This is the runtime shape of "the storage is described by a set of
//! XAMs" (§2.2): adding or removing a storage structure is just adding or
//! removing a (name, XAM) pair — no optimizer code changes, which is the
//! paper's physical-data-independence pitch. The rewriting layer reads the
//! definitions; the execution layer scans the materialized relations
//! through an [`algebra::Catalog`].

use algebra::{Catalog, EvalError, OrderSpec, Relation};
use xam_core::Xam;
use xmltree::Document;

/// A set of materialized views/storage modules, each described by a XAM.
#[derive(Debug, Clone, Default)]
pub struct MaterializedStore {
    defs: Vec<(String, Xam)>,
    catalog: Catalog,
}

impl MaterializedStore {
    pub fn new() -> MaterializedStore {
        MaterializedStore::default()
    }

    /// Materialize a XAM over the document and register it under `name`.
    pub fn add_view(
        &mut self,
        name: impl Into<String>,
        xam: Xam,
        doc: &Document,
    ) -> Result<(), EvalError> {
        let name = name.into();
        let span = tracing::debug_span!(target: "uload::storage", "materialize_view");
        let rel = span.in_scope(|| xam_core::evaluate(&xam, doc))?;
        tracing::debug!(
            target: "uload::storage",
            "materialized view `{name}` ← {xam}: {} tuples",
            rel.len()
        );
        let order = xam_core::semantics::output_columns(&xam)
            .first()
            .map(|c| OrderSpec::by(c.path.clone()))
            .unwrap_or_default();
        self.catalog.insert_ordered(name.clone(), rel, order);
        self.defs.push((name, xam));
        Ok(())
    }

    /// Drop a view — the "change the storage by updating the XAM set"
    /// operation of the introduction.
    pub fn drop_view(&mut self, name: &str) -> bool {
        let before = self.defs.len();
        self.defs.retain(|(n, _)| n != name);
        // the algebra catalog has no removal API (plans must not observe
        // dangling names), so rebuild it
        if self.defs.len() != before {
            let mut cat = Catalog::new();
            for (n, _) in &self.defs {
                if let Some(rel) = self.catalog.get(n) {
                    cat.insert(n.clone(), rel.clone());
                }
            }
            self.catalog = cat;
            true
        } else {
            false
        }
    }

    /// The view definitions, in registration order.
    pub fn definitions(&self) -> &[(String, Xam)] {
        &self.defs
    }

    pub fn definition(&self, name: &str) -> Option<&Xam> {
        self.defs.iter().find(|(n, _)| n == name).map(|(_, x)| x)
    }

    /// The relation catalog for plan evaluation.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.catalog.get(name)
    }

    /// Total stored tuples across all views (a size metric for the
    /// experiments).
    pub fn total_tuples(&self) -> usize {
        self.defs
            .iter()
            .filter_map(|(n, _)| self.catalog.get(n))
            .map(|r| r.len())
            .sum()
    }

    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xam_core::parse_xam;
    use xmltree::generate::bib_sample;

    #[test]
    fn add_and_drop_views() {
        let doc = bib_sample();
        let mut store = MaterializedStore::new();
        store
            .add_view("v_books", parse_xam("//book[id:s,cont]").unwrap(), &doc)
            .unwrap();
        store
            .add_view(
                "v_titles",
                parse_xam("//book[id:s]{ /title[val] }").unwrap(),
                &doc,
            )
            .unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.relation("v_books").unwrap().len(), 2);
        assert!(store.total_tuples() >= 4);
        assert!(store.drop_view("v_books"));
        assert!(!store.drop_view("v_books"));
        assert!(store.relation("v_books").is_none());
        assert!(store.relation("v_titles").is_some());
    }

    #[test]
    fn views_are_scannable_through_plans() {
        use algebra::{Evaluator, LogicalPlan};
        let doc = bib_sample();
        let mut store = MaterializedStore::new();
        store
            .add_view("v", parse_xam("//book[id:s]{ /title[val] }").unwrap(), &doc)
            .unwrap();
        let ev = Evaluator::new(store.catalog());
        let rel = ev.eval(&LogicalPlan::scan("v")).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
