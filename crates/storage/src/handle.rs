//! Versioned document handles — the unit the serving layer caches by.
//!
//! Everything below the façade passes `&Document` around freely, but a
//! long-lived server cannot key caches on a borrow: when the physical
//! design (or the document itself) is swapped underneath running
//! sessions, stale cached results must stop matching. [`DocumentHandle`]
//! pairs a shared, immutable [`Document`] with a [`DocumentVersion`]
//! drawn from a process-wide monotonic counter, so
//! `(plan fingerprint, document version)` is a sound result-cache key:
//! a version is never reused, and replacing a document
//! ([`DocumentHandle::reload`]) silently invalidates every cache entry
//! keyed under the old version without any explicit eviction pass.
//!
//! Handles are cheap to clone (an `Arc` bump) and `Send + Sync`; clones
//! share the version, so concurrent readers of the same handle agree on
//! the cache key they are serving under.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xmltree::Document;

/// Process-wide monotonic version source: no two [`DocumentHandle`]s
/// ever share a version unless they are clones of one another.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// A monotonically increasing document version. Fresh handles (and
/// [`DocumentHandle::reload`]ed ones) always carry a strictly greater
/// version than every handle created before them in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocumentVersion(pub u64);

impl std::fmt::Display for DocumentVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A shared, versioned document: the serving path's replacement for raw
/// `&Document` arguments. See the [module docs](self) for why the
/// version exists.
#[derive(Debug, Clone)]
pub struct DocumentHandle {
    doc: Arc<Document>,
    version: DocumentVersion,
}

impl DocumentHandle {
    /// Wrap a document under a fresh version.
    pub fn new(doc: Document) -> DocumentHandle {
        DocumentHandle::from_arc(Arc::new(doc))
    }

    /// Wrap an already-shared document under a fresh version.
    pub fn from_arc(doc: Arc<Document>) -> DocumentHandle {
        DocumentHandle {
            doc,
            version: DocumentVersion(NEXT_VERSION.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// The document this handle serves.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// A shared reference to the underlying allocation.
    pub fn arc(&self) -> Arc<Document> {
        Arc::clone(&self.doc)
    }

    /// This handle's version — one half of the result-cache key.
    pub fn version(&self) -> DocumentVersion {
        self.version
    }

    /// Replace the document, returning a handle with a strictly greater
    /// version. The old handle stays valid for in-flight readers; only
    /// new cache keys move to the new version.
    pub fn reload(&self, doc: Document) -> DocumentHandle {
        DocumentHandle::new(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotonic_and_never_reused() {
        let a = DocumentHandle::new(xmltree::parse_document("<a/>").unwrap());
        let b = DocumentHandle::new(xmltree::parse_document("<b/>").unwrap());
        assert!(b.version() > a.version());
        let a2 = a.reload(xmltree::parse_document("<a><c/></a>").unwrap());
        assert!(a2.version() > b.version());
        assert_eq!(a2.document().len(), 2);
        // clones share document and version
        let c = a2.clone();
        assert_eq!(c.version(), a2.version());
        assert!(Arc::ptr_eq(&c.arc(), &a2.arc()));
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DocumentHandle>();
        assert_send_sync::<DocumentVersion>();
    }
}
