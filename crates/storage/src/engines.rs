//! Concrete storage engines of §2.1, each building an [`algebra::Catalog`]
//! of base relations with its conventional layout. These are the
//! substrates behind the QEP catalogue ([`crate::qep`]) and behind the
//! XAM model library ([`crate::catalog`]), demonstrating that widely
//! different layouts serve the same documents.

use std::collections::HashMap;

use algebra::{Catalog, Field, OrderSpec, Relation, Schema, Tuple, Value};
use summary::Summary;
use xmltree::{Document, NodeKind};

/// The *Edge* store of Florescu & Kossmann (§2.3.1): one tuple per
/// parent-child edge, plus a value table for leaves.
///
/// ```text
/// edge (source, target, ordinal, name, flag)
/// value (vID, value)
/// ```
#[derive(Debug, Clone)]
pub struct EdgeStore {
    pub catalog: Catalog,
}

impl EdgeStore {
    pub fn build(doc: &Document) -> EdgeStore {
        let edge_schema = Schema::atoms(&["source", "target", "ordinal", "name", "flag"]);
        let value_schema = Schema::atoms(&["vID", "value"]);
        let mut edges = Vec::new();
        let mut values = Vec::new();
        for n in doc.all_nodes() {
            let Some(p) = doc.parent(n) else { continue };
            let ordinal = doc.children(p).iter().position(|&c| c == n).unwrap() as i64;
            let flag = match doc.kind(n) {
                NodeKind::Element => "ref",
                NodeKind::Attribute => "attr",
                NodeKind::Text => "val",
            };
            edges.push(Tuple::new(vec![
                Value::Id(doc.structural_id(p)),
                Value::Id(doc.structural_id(n)),
                Value::Int(ordinal),
                Value::str(doc.label(n)),
                Value::str(flag),
            ]));
            if doc.kind(n) != NodeKind::Element {
                values.push(Tuple::new(vec![
                    Value::Id(doc.structural_id(n)),
                    Value::str(doc.value(n)),
                ]));
            }
        }
        let mut catalog = Catalog::new();
        catalog.insert_ordered(
            "edge",
            Relation::new(edge_schema, edges),
            OrderSpec::by("target"),
        );
        catalog.insert("value", Relation::new(value_schema, values));
        EdgeStore { catalog }
    }
}

/// The tag-partitioned store (native model #3, Timber/Natix style): one
/// relation of structural IDs per element tag, plus a `text` relation
/// associating element IDs with their text.
#[derive(Debug, Clone)]
pub struct TagPartitionStore {
    pub catalog: Catalog,
    /// Tags present, in first-seen order.
    pub tags: Vec<String>,
}

impl TagPartitionStore {
    pub fn build(doc: &Document) -> TagPartitionStore {
        let mut by_tag: HashMap<String, Vec<Tuple>> = HashMap::new();
        let mut tags = Vec::new();
        let mut text = Vec::new();
        for n in doc.all_nodes() {
            match doc.kind(n) {
                NodeKind::Element | NodeKind::Attribute => {
                    let key = if doc.kind(n) == NodeKind::Attribute {
                        format!("@{}", doc.label(n))
                    } else {
                        doc.label(n).to_string()
                    };
                    by_tag
                        .entry(key.clone())
                        .or_insert_with(|| {
                            tags.push(key);
                            Vec::new()
                        })
                        .push(Tuple::new(vec![Value::Id(doc.structural_id(n))]));
                }
                NodeKind::Text => {
                    let p = doc.parent(n).unwrap();
                    text.push(Tuple::new(vec![
                        Value::Id(doc.structural_id(p)),
                        Value::str(doc.value(n)),
                    ]));
                }
            }
        }
        let mut catalog = Catalog::new();
        for t in &tags {
            catalog.insert_ordered(
                format!("tag_{t}"),
                Relation::new(Schema::atoms(&["ID"]), by_tag.remove(t).unwrap()),
                OrderSpec::by("ID"),
            );
        }
        catalog.insert_ordered(
            "text",
            Relation::new(Schema::atoms(&["ID", "text"]), text),
            OrderSpec::by("ID"),
        );
        TagPartitionStore { catalog, tags }
    }

    /// Relation name for a tag.
    pub fn relation_of(tag: &str) -> String {
        format!("tag_{tag}")
    }
}

/// The path-partitioned store (native model #4, XQueC/early-Monet style):
/// one relation of structural IDs per *rooted path*, named after the
/// summary path (slashes become `-`), plus the `text` relation.
#[derive(Debug, Clone)]
pub struct PathPartitionStore {
    pub catalog: Catalog,
    /// Path (e.g. `/bib/book/title`) → relation name.
    pub paths: Vec<(String, String)>,
}

impl PathPartitionStore {
    pub fn build(doc: &Document, summary: &Summary) -> PathPartitionStore {
        let phi = summary
            .classify(doc)
            .expect("document must conform to its summary");
        let mut by_path: HashMap<u32, Vec<Tuple>> = HashMap::new();
        let mut text = Vec::new();
        for n in doc.all_nodes() {
            match doc.kind(n) {
                NodeKind::Element | NodeKind::Attribute => {
                    by_path
                        .entry(phi[n.index()].0)
                        .or_default()
                        .push(Tuple::new(vec![Value::Id(doc.structural_id(n))]));
                }
                NodeKind::Text => {
                    let p = doc.parent(n).unwrap();
                    text.push(Tuple::new(vec![
                        Value::Id(doc.structural_id(p)),
                        Value::str(doc.value(n)),
                    ]));
                }
            }
        }
        let mut catalog = Catalog::new();
        let mut paths = Vec::new();
        for sn in summary.all_nodes() {
            if summary.kind(sn) == NodeKind::Text {
                continue;
            }
            let path = summary.path_of(sn);
            let name = Self::relation_of(&path);
            let tuples = by_path.remove(&sn.0).unwrap_or_default();
            catalog.insert_ordered(
                name.clone(),
                Relation::new(Schema::atoms(&["ID"]), tuples),
                OrderSpec::by("ID"),
            );
            paths.push((path, name));
        }
        catalog.insert_ordered(
            "text",
            Relation::new(Schema::atoms(&["ID", "text"]), text),
            OrderSpec::by("ID"),
        );
        PathPartitionStore { catalog, paths }
    }

    /// Relation name for a rooted path like `/bib/book/title`.
    pub fn relation_of(path: &str) -> String {
        format!("path{}", path.replace('/', "-").replace('@', "a_"))
    }
}

/// The non-fragmented ("blob") store of §2.1.1: the full serialized
/// content of every element with a given tag, avoiding recomposition
/// joins (`sectionContent(ID, content)`).
#[derive(Debug, Clone)]
pub struct ContentStore {
    pub catalog: Catalog,
}

impl ContentStore {
    /// Store the content of all elements whose tag is in `tags`.
    pub fn build(doc: &Document, tags: &[&str]) -> ContentStore {
        let mut catalog = Catalog::new();
        for t in tags {
            let tuples = doc
                .nodes_with_label(t, NodeKind::Element)
                .map(|n| {
                    Tuple::new(vec![
                        Value::Id(doc.structural_id(n)),
                        Value::str(doc.content(n)),
                    ])
                })
                .collect();
            catalog.insert_ordered(
                format!("{t}Content"),
                Relation::new(Schema::atoms(&["ID", "content"]), tuples),
                OrderSpec::by("ID"),
            );
        }
        ContentStore { catalog }
    }
}

/// A composite-key value index like `booksByYearTitle` (§2.1.2): for each
/// element with the given tag, the values of two key child paths map to
/// the element ID. Lookups require bindings for the keys — the `R`-marked
/// XAM semantics.
#[derive(Debug, Clone)]
pub struct CompositeIndex {
    /// (key1, key2) → IDs.
    map: HashMap<(String, String), Vec<Value>>,
    pub name: String,
}

impl CompositeIndex {
    /// Index `tag` elements by the values of their `key1` and `key2`
    /// children (e.g. book by (year, title)).
    pub fn build(doc: &Document, tag: &str, key1: &str, key2: &str) -> CompositeIndex {
        let mut map: HashMap<(String, String), Vec<Value>> = HashMap::new();
        for n in doc.nodes_with_label(tag, NodeKind::Element) {
            let k1: Vec<String> = doc
                .children(n)
                .iter()
                .filter(|&&c| doc.label(c) == key1)
                .map(|&c| doc.value(c))
                .collect();
            let k2: Vec<String> = doc
                .children(n)
                .iter()
                .filter(|&&c| doc.label(c) == key2)
                .map(|&c| doc.value(c))
                .collect();
            for a in &k1 {
                for b in &k2 {
                    map.entry((a.clone(), b.clone()))
                        .or_default()
                        .push(Value::Id(doc.structural_id(n)));
                }
            }
        }
        CompositeIndex {
            map,
            name: format!("{tag}sBy{key1}{key2}"),
        }
    }

    /// `idxLookup`: the IDs under a composite key.
    pub fn lookup(&self, key1: &str, key2: &str) -> Relation {
        let tuples = self
            .map
            .get(&(key1.to_string(), key2.to_string()))
            .map(|ids| ids.iter().map(|v| Tuple::new(vec![v.clone()])).collect())
            .unwrap_or_default();
        Relation::new(Schema::atoms(&["ID"]), tuples)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// An IndexFabric-style full-text index (§2.1.2): word → IDs of the
/// elements on a given path whose text contains the word.
#[derive(Debug, Clone)]
pub struct FullTextIndex {
    map: HashMap<String, Vec<Value>>,
    pub scope: String,
}

impl FullTextIndex {
    /// Index the words of the values of all elements with `tag`.
    pub fn build(doc: &Document, tag: &str) -> FullTextIndex {
        let mut map: HashMap<String, Vec<Value>> = HashMap::new();
        for n in doc.nodes_with_label(tag, NodeKind::Element) {
            let val = doc.value(n);
            for w in val.split(|c: char| !c.is_alphanumeric()) {
                if w.is_empty() {
                    continue;
                }
                let e = map.entry(w.to_lowercase()).or_default();
                let id = Value::Id(doc.structural_id(n));
                if e.last() != Some(&id) {
                    e.push(id);
                }
            }
        }
        FullTextIndex {
            map,
            scope: tag.to_string(),
        }
    }

    /// `idxLookup(fti, word)`: IDs of elements containing the word.
    pub fn lookup(&self, word: &str) -> Relation {
        let tuples = self
            .map
            .get(&word.to_lowercase())
            .map(|ids| ids.iter().map(|v| Tuple::new(vec![v.clone()])).collect())
            .unwrap_or_default();
        Relation::new(Schema::atoms(&["ID"]), tuples)
    }

    pub fn vocabulary_size(&self) -> usize {
        self.map.len()
    }
}

/// The XRel/XParent path-based relational store (§2.3.1): a `path` table
/// numbering every rooted path, plus `element`, `attribute` and `text`
/// tables whose tuples carry a foreign key into `path` and region IDs.
#[derive(Debug, Clone)]
pub struct XRelStore {
    pub catalog: Catalog,
}

impl XRelStore {
    pub fn build(doc: &Document, summary: &Summary) -> XRelStore {
        let phi = summary
            .classify(doc)
            .expect("document must conform to its summary");
        let mut catalog = Catalog::new();
        // path(pathID, pathexpr)
        let path_tuples: Vec<Tuple> = summary
            .all_nodes()
            .map(|sn| {
                Tuple::new(vec![
                    Value::Int(sn.path_number() as i64),
                    Value::str(summary.path_of(sn)),
                ])
            })
            .collect();
        catalog.insert(
            "path",
            Relation::new(Schema::atoms(&["pathID", "pathexpr"]), path_tuples),
        );
        let mut elements = Vec::new();
        let mut attributes = Vec::new();
        let mut texts = Vec::new();
        for n in doc.all_nodes() {
            let pid = Value::Int(phi[n.index()].path_number() as i64);
            let id = Value::Id(doc.structural_id(n));
            match doc.kind(n) {
                NodeKind::Element => elements.push(Tuple::new(vec![pid, id])),
                NodeKind::Attribute => {
                    attributes.push(Tuple::new(vec![pid, id, Value::str(doc.value(n))]))
                }
                NodeKind::Text => texts.push(Tuple::new(vec![pid, id, Value::str(doc.value(n))])),
            }
        }
        catalog.insert_ordered(
            "element",
            Relation::new(Schema::atoms(&["pathID", "ID"]), elements),
            OrderSpec::by("ID"),
        );
        catalog.insert(
            "attribute",
            Relation::new(Schema::atoms(&["pathID", "ID", "value"]), attributes),
        );
        catalog.insert(
            "text_nodes",
            Relation::new(Schema::atoms(&["pathID", "ID", "value"]), texts),
        );
        XRelStore { catalog }
    }
}

/// Register an index lookup result as a scannable relation.
pub fn register_lookup(catalog: &mut Catalog, name: &str, rel: Relation) {
    catalog.insert(name, rel);
}

/// Hybrid-style inlined relational store (§2.1.1, relational model #1):
/// one relation per record tag with inlined single-valued children, plus a
/// separate `author` relation with parent pointers.
#[derive(Debug, Clone)]
pub struct HybridStore {
    pub catalog: Catalog,
}

impl HybridStore {
    /// Shred the `bib.xml`-shaped document: `book(ID, parentID, yearValue,
    /// titleValue)`, `phdthesis(…)`, `author(ID, parentID, authorValue)`.
    pub fn build(doc: &Document) -> HybridStore {
        let mut catalog = Catalog::new();
        for tag in ["book", "phdthesis"] {
            let tuples: Vec<Tuple> = doc
                .nodes_with_label(tag, NodeKind::Element)
                .map(|n| {
                    let child_val = |label: &str| -> Value {
                        doc.children(n)
                            .iter()
                            .find(|&&c| doc.label(c) == label)
                            .map(|&c| Value::str(doc.value(c)))
                            .unwrap_or(Value::Null)
                    };
                    Tuple::new(vec![
                        Value::Id(doc.structural_id(n)),
                        Value::Id(doc.structural_id(doc.parent(n).unwrap())),
                        child_val("year"),
                        child_val("title"),
                    ])
                })
                .collect();
            catalog.insert(
                tag,
                Relation::new(
                    Schema::new(vec![
                        Field::atom("ID"),
                        Field::atom("parentID"),
                        Field::atom("yearValue"),
                        Field::atom("titleValue"),
                    ]),
                    tuples,
                ),
            );
        }
        let authors: Vec<Tuple> = doc
            .nodes_with_label("author", NodeKind::Element)
            .map(|n| {
                Tuple::new(vec![
                    Value::Id(doc.structural_id(n)),
                    Value::Id(doc.structural_id(doc.parent(n).unwrap())),
                    Value::str(doc.value(n)),
                ])
            })
            .collect();
        catalog.insert(
            "author",
            Relation::new(Schema::atoms(&["ID", "parentID", "authorValue"]), authors),
        );
        HybridStore { catalog }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::{bib_document, bib_document_with_sections};

    #[test]
    fn edge_store_covers_all_edges() {
        let doc = bib_document();
        let store = EdgeStore::build(&doc);
        let edge = store.catalog.get("edge").unwrap();
        assert_eq!(edge.len(), doc.len() - 1);
        let value = store.catalog.get("value").unwrap();
        assert!(!value.is_empty());
    }

    #[test]
    fn tag_partition_by_label() {
        let doc = bib_document();
        let store = TagPartitionStore::build(&doc);
        assert!(store.tags.contains(&"book".to_string()));
        let books = store.catalog.get("tag_book").unwrap();
        assert_eq!(books.len(), 2);
        let authors = store.catalog.get("tag_author").unwrap();
        assert_eq!(authors.len(), 5);
    }

    #[test]
    fn path_partition_by_summary_path() {
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let store = PathPartitionStore::build(&doc, &s);
        let rel = store
            .catalog
            .get(&PathPartitionStore::relation_of("/bib/book/author"))
            .unwrap();
        assert_eq!(rel.len(), 4);
        let rel = store
            .catalog
            .get(&PathPartitionStore::relation_of("/bib/phdthesis/author"))
            .unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn content_store_serializes_subtrees() {
        let doc = bib_document_with_sections();
        let store = ContentStore::build(&doc, &["section"]);
        let rel = store.catalog.get("sectionContent").unwrap();
        assert_eq!(rel.len(), 3);
        assert!(rel.tuples[0]
            .get(1)
            .as_str()
            .unwrap()
            .contains("<it>Web data</it>"));
    }

    #[test]
    fn composite_index_lookup() {
        let doc = bib_document();
        let idx = CompositeIndex::build(&doc, "book", "year", "title");
        let hit = idx.lookup("1999", "Data on the Web");
        assert_eq!(hit.len(), 1);
        let miss = idx.lookup("1999", "No Such Title");
        assert_eq!(miss.len(), 0);
    }

    #[test]
    fn full_text_index_lookup() {
        let doc = bib_document();
        let fti = FullTextIndex::build(&doc, "title");
        let hits = fti.lookup("Web");
        assert_eq!(hits.len(), 1); // only "Data on the Web"
        assert_eq!(fti.lookup("zzz").len(), 0);
        assert!(fti.vocabulary_size() > 3);
    }

    #[test]
    fn xrel_store_keys_nodes_by_path() {
        use algebra::{CmpOp, Evaluator, JoinKind, LogicalPlan, Predicate, Value};
        let doc = bib_document();
        let s = Summary::of_document(&doc);
        let store = XRelStore::build(&doc, &s);
        // query: IDs of elements on path /bib/book/author, via the path table
        let plan = LogicalPlan::scan("path")
            .select(Predicate::eq("pathexpr", Value::str("/bib/book/author")))
            .rename(&["p_id", "p_expr"])
            .join(
                LogicalPlan::scan("element"),
                Predicate::col_cmp("p_id", CmpOp::Eq, "pathID"),
                JoinKind::Inner,
            )
            .project(&["ID"]);
        let ev = Evaluator::with_document(&store.catalog, &doc);
        let rel = ev.eval(&plan).unwrap();
        assert_eq!(rel.len(), 4);
        // text values ride along their path keys
        let texts = store.catalog.get("text_nodes").unwrap();
        assert!(texts.len() > 5);
    }

    #[test]
    fn hybrid_store_inlines_children() {
        let doc = bib_document();
        let store = HybridStore::build(&doc);
        let books = store.catalog.get("book").unwrap();
        assert_eq!(books.len(), 2);
        assert_eq!(books.tuples[0].get(3).as_str(), Some("Data on the Web"));
        let authors = store.catalog.get("author").unwrap();
        assert_eq!(authors.len(), 5);
    }
}
