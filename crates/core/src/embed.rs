//! Embedding-based XAM semantics (§4.1).
//!
//! The alternative — equivalent — semantics used by the containment
//! machinery: a *(decorated, optional) embedding* maps pattern nodes to
//! document nodes preserving labels, root, `/`/`//` edges and value
//! formulas; optional-edge targets may map to `⊥`, but only when no
//! subtree embedding exists (Definition 4.1.1 and its optional extension).
//!
//! [`evaluate_embed`] enumerates all embeddings by backtracking and
//! returns the set of return-node tuples — ground truth against which the
//! algebraic semantics of [`crate::semantics`] is validated in tests and
//! in the containment experiments.

use std::collections::BTreeSet;

use xmltree::{Document, NodeId, NodeKind};

use crate::ast::{Axis, Xam, XamNodeId};

/// One embedding: the image of each pattern node (index = XAM node index;
/// `None` = `⊥`, only under optional edges; the `⊤` slot is unused).
pub type Embedding = Vec<Option<NodeId>>;

/// Can pattern node `pn` be mapped onto document node `dn` (label, node
/// kind and value formula)?
fn node_matches(xam: &Xam, pn: XamNodeId, doc: &Document, dn: NodeId) -> bool {
    let node = xam.node(pn);
    let kind_ok = if node.is_attribute {
        doc.kind(dn) == NodeKind::Attribute
    } else {
        doc.kind(dn) == NodeKind::Element
    };
    if !kind_ok {
        return false;
    }
    if let Some(t) = &node.tag_predicate {
        if doc.label(dn) != t {
            return false;
        }
    }
    if node.value_predicate != crate::ast::Formula::True
        && !node.value_predicate.eval(&doc.value(dn))
    {
        return false;
    }
    true
}

/// Candidate images for `pn` given its parent's image `parent_image`
/// (`None` = the virtual document node `⊤`).
fn candidates(
    xam: &Xam,
    pn: XamNodeId,
    doc: &Document,
    parent_image: Option<NodeId>,
) -> Vec<NodeId> {
    let axis = xam.node(pn).edge.axis;
    let pool: Vec<NodeId> = match (parent_image, axis) {
        // from ⊤: `/` reaches only the root element, `//` any node
        (None, Axis::Child) => vec![doc.root()],
        (None, Axis::Descendant) => doc.all_nodes().collect(),
        (Some(p), Axis::Child) => doc.children(p).to_vec(),
        (Some(p), Axis::Descendant) => doc.descendants(p).collect(),
    };
    pool.into_iter()
        .filter(|&d| node_matches(xam, pn, doc, d))
        .collect()
}

/// Does *any* (strict) embedding of the subtree rooted at `pn` exist below
/// `parent_image`? (Used for the optional-edge side condition: `⊥` is only
/// allowed when this is false.)
fn subtree_embeddable(
    xam: &Xam,
    pn: XamNodeId,
    doc: &Document,
    parent_image: Option<NodeId>,
) -> bool {
    candidates(xam, pn, doc, parent_image).into_iter().any(|d| {
        xam.children(pn).iter().all(|&c| {
            if xam.node(c).edge.sem.is_optional() {
                true // optional children never block embeddability
            } else {
                subtree_embeddable(xam, c, doc, Some(d))
            }
        })
    })
}

/// Enumerate all (optional) embeddings of the XAM into the document.
pub fn embeddings(xam: &Xam, doc: &Document) -> Vec<Embedding> {
    let mut out = Vec::new();
    let mut cur: Embedding = vec![None; xam.len()];
    // multiple ⊤ children: embed them independently (cartesian semantics)
    #[allow(clippy::too_many_arguments)]
    fn assign(
        xam: &Xam,
        doc: &Document,
        siblings: &[XamNodeId],
        idx: usize,
        parent_image: Option<NodeId>,
        cur: &mut Embedding,
        out: &mut Vec<Embedding>,
        k: &mut dyn FnMut(&mut Embedding, &mut Vec<Embedding>),
    ) {
        if idx == siblings.len() {
            k(cur, out);
            return;
        }
        let pn = siblings[idx];
        let node = xam.node(pn);
        let cands = candidates(xam, pn, doc, parent_image);
        let optional = node.edge.sem.is_optional();
        if optional && !subtree_embeddable(xam, pn, doc, parent_image) {
            // map the whole subtree to ⊥ and continue with next sibling
            assign(xam, doc, siblings, idx + 1, parent_image, cur, out, k);
            return;
        }
        for d in cands {
            cur[pn.index()] = Some(d);
            // then embed pn's children under d, then continue to siblings
            let children: Vec<XamNodeId> = xam.children(pn).to_vec();
            assign(
                xam,
                doc,
                &children,
                0,
                Some(d),
                cur,
                out,
                &mut |cur2, out2| {
                    assign(xam, doc, siblings, idx + 1, parent_image, cur2, out2, k);
                },
            );
            cur[pn.index()] = None;
        }
    }
    let tops: Vec<XamNodeId> = xam.children(XamNodeId::TOP).to_vec();
    assign(
        xam,
        doc,
        &tops,
        0,
        None,
        &mut cur,
        &mut out,
        &mut |cur, out| out.push(cur.clone()),
    );
    out
}

/// The set of return-node tuples produced by embedding semantics (node
/// identities only; attribute projection is a post-step). Tuples are
/// ordered by the pre-order of return nodes.
pub fn evaluate_embed(xam: &Xam, doc: &Document) -> BTreeSet<Vec<Option<NodeId>>> {
    let rets = xam.return_nodes();
    embeddings(xam, doc)
        .into_iter()
        .map(|e| rets.iter().map(|r| e[r.index()]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xam;
    use crate::semantics::evaluate;
    use xmltree::generate::{bib_sample, xmark};

    /// Compare embedding semantics against algebraic semantics on flat
    /// conjunctive patterns: same number of distinct ID tuples.
    fn cross_check(doc: &Document, pattern: &str) {
        let xam = parse_xam(pattern).unwrap();
        let algebraic = evaluate(&xam, doc).unwrap();
        let embedded = evaluate_embed(&xam, doc);
        // algebraic result eliminates duplicates; embedding set is a set
        let mut alg_set = BTreeSet::new();
        for t in &algebraic.tuples {
            let ids: Vec<Option<u32>> = t.0.iter().map(|v| v.as_id().map(|s| s.pre)).collect();
            alg_set.insert(ids);
        }
        let emb_set: BTreeSet<Vec<Option<u32>>> = embedded
            .into_iter()
            .map(|t| t.into_iter().map(|n| n.map(|n| n.0)).collect())
            .collect();
        assert_eq!(alg_set, emb_set, "mismatch for `{pattern}`");
    }

    #[test]
    fn agrees_with_algebraic_on_bib() {
        let doc = bib_sample();
        for p in [
            "//book[id:s]",
            "//book[id:s]{ /title[id:s] }",
            "//book[id:s]{ /author[id:s] }",
            "//*[id:s]{ /author[id:s] }",
            "//library[id:s]{ //author[id:s] }",
            r#"//book[id:s]{ /@year[id:s,val="1999"] }"#,
        ] {
            cross_check(&doc, p);
        }
    }

    #[test]
    fn agrees_with_algebraic_on_optional_edges() {
        let doc = bib_sample();
        cross_check(&doc, "//book[id:s]{ /? @year[id:s] }");
        cross_check(&doc, "//*[id:s]{ /? @year[id:s], /? author[id:s] }");
    }

    #[test]
    fn agrees_on_xmark_fragment() {
        let doc = xmark(2, 3);
        cross_check(&doc, "//item[id:s]{ /name[id:s] }");
        cross_check(&doc, "//listitem[id:s]{ //keyword[id:s] }");
    }

    #[test]
    fn optional_bottom_only_when_no_match() {
        // Definition 4.1.1 (3b): ⊥ is only allowed if no embedding of the
        // optional subtree exists under the parent's image.
        let doc = bib_sample();
        let xam = parse_xam("//book[id:s]{ /? @year[id:s] }").unwrap();
        let res = evaluate_embed(&xam, &doc);
        // book 1 has a year: must NOT produce a (book1, ⊥) tuple
        let with_null: Vec<_> = res.iter().filter(|t| t[1].is_none()).collect();
        assert_eq!(with_null.len(), 1); // only the second book
    }

    #[test]
    fn value_formulas_restrict_embeddings() {
        let doc = bib_sample();
        let xam = parse_xam(r#"//title[id:s,val="Data on the Web"]"#).unwrap();
        assert_eq!(evaluate_embed(&xam, &doc).len(), 1);
        let xam = parse_xam(r#"//title[id:s,val="No Such Book"]"#).unwrap();
        assert_eq!(evaluate_embed(&xam, &doc).len(), 0);
    }

    #[test]
    fn intermediary_nodes_allowed() {
        // //library//author embeds even though authors are 2 levels down
        let doc = bib_sample();
        let xam = parse_xam("//library{ //author[id:s] }").unwrap();
        assert_eq!(evaluate_embed(&xam, &doc).len(), 4);
    }
}
