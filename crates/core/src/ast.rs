//! XAM abstract syntax (grammar of Figure 2.3) and value formulas.

use std::fmt;

/// Index of a node within a [`Xam`]. Node 0 is always the synthetic `⊤`
/// (document-root) node required by every XAM specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XamNodeId(pub u32);

impl XamNodeId {
    pub const TOP: XamNodeId = XamNodeId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for XamNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// ID class stored by a node (line 3 of the grammar): how much structural
/// information the persistent identifiers carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdKind {
    /// `i`: simple identifiers — only uniqueness is known.
    Simple,
    /// `o`: identifiers reflecting document order.
    Ordered,
    /// `s`: structural identifiers — comparing two decides parent/ancestor
    /// relationships (e.g. `(pre, post, depth)` triples).
    Structural,
    /// `p`: navigational structural identifiers — the parent's identifier is
    /// derivable from the child's (Dewey, ORDPATH).
    Parent,
}

impl IdKind {
    /// Can `≺`/`≺≺` predicates be evaluated on these IDs alone?
    pub fn is_structural(self) -> bool {
        matches!(self, IdKind::Structural | IdKind::Parent)
    }
}

impl fmt::Display for IdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IdKind::Simple => "i",
            IdKind::Ordered => "o",
            IdKind::Structural => "s",
            IdKind::Parent => "p",
        };
        write!(f, "{s}")
    }
}

/// Edge semantics (line 8 of the grammar): how a child node's matches
/// combine with the parent's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeSem {
    /// `j`: structural join — parents without matches are dropped, child
    /// data appears flat.
    Join,
    /// `o`: structural left outerjoin — parents without matches survive
    /// with nulls (the *optional edges* of Chapter 4, drawn dashed).
    Outer,
    /// `s`: structural semijoin — the child only filters the parent, no
    /// child data is stored.
    Semi,
    /// `nj`: nest join — child matches are grouped in a nested collection;
    /// parents without matches are dropped.
    NestJoin,
    /// `no`: nest outerjoin — as `nj` but parents without matches survive
    /// with an empty collection (*optional + nested*).
    NestOuter,
}

impl EdgeSem {
    /// Optional edges let parent matches survive without child matches.
    pub fn is_optional(self) -> bool {
        matches!(self, EdgeSem::Outer | EdgeSem::NestOuter)
    }

    /// Nested edges group child matches per parent match.
    pub fn is_nested(self) -> bool {
        matches!(self, EdgeSem::NestJoin | EdgeSem::NestOuter)
    }

    pub fn is_semijoin(self) -> bool {
        self == EdgeSem::Semi
    }
}

impl fmt::Display for EdgeSem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeSem::Join => "j",
            EdgeSem::Outer => "o",
            EdgeSem::Semi => "s",
            EdgeSem::NestJoin => "nj",
            EdgeSem::NestOuter => "no",
        };
        write!(f, "{s}")
    }
}

/// Structural axis of an edge: `/` (parent-child) or `//`
/// (ancestor-descendant). Re-exported from the algebra crate so the two
/// layers agree.
pub use algebra::Axis;

/// Edge specification: axis + semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XamEdge {
    pub axis: Axis,
    pub sem: EdgeSem,
}

impl XamEdge {
    pub fn child() -> XamEdge {
        XamEdge {
            axis: Axis::Child,
            sem: EdgeSem::Join,
        }
    }

    pub fn descendant() -> XamEdge {
        XamEdge {
            axis: Axis::Descendant,
            sem: EdgeSem::Join,
        }
    }
}

impl fmt::Display for XamEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.axis, self.sem)
    }
}

/// A single-variable value formula `φ(v)` (decorated patterns, §4.1):
/// `T`, `F`, comparisons against constants, closed under `∧` and `∨`.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    True,
    False,
    /// `v θ c`.
    Cmp(algebra::CmpOp, FormulaConst),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
}

/// A constant in a value formula: a number or a string (the paper's
/// totally-ordered, enumerable atomic domain `A`).
#[derive(Debug, Clone, PartialEq)]
pub enum FormulaConst {
    Int(i64),
    Str(String),
}

impl fmt::Display for FormulaConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaConst::Int(i) => write!(f, "{i}"),
            FormulaConst::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl Formula {
    pub fn eq_str(s: impl Into<String>) -> Formula {
        Formula::Cmp(algebra::CmpOp::Eq, FormulaConst::Str(s.into()))
    }

    pub fn eq_int(i: i64) -> Formula {
        Formula::Cmp(algebra::CmpOp::Eq, FormulaConst::Int(i))
    }

    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluate the formula on a concrete value (strings compare with the
    /// numeric coercion of the algebra layer).
    pub fn eval(&self, v: &str) -> bool {
        use algebra::CmpOp::*;
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::And(a, b) => a.eval(v) && b.eval(v),
            Formula::Or(a, b) => a.eval(v) || b.eval(v),
            Formula::Cmp(op, c) => {
                let lhs = algebra::Value::str(v);
                let rhs = match c {
                    FormulaConst::Int(i) => algebra::Value::Int(*i),
                    FormulaConst::Str(s) => algebra::Value::str(s),
                };
                match lhs.compare(&rhs) {
                    None => false,
                    Some(ord) => match op {
                        Eq => ord.is_eq(),
                        Ne => !ord.is_eq(),
                        Lt => ord.is_lt(),
                        Le => ord.is_le(),
                        Gt => ord.is_gt(),
                        Ge => ord.is_ge(),
                        Parent | Ancestor => false,
                        Contains => {
                            matches!((&lhs, &rhs), (algebra::Value::Str(a), algebra::Value::Str(b)) if a.contains(b.as_ref()))
                        }
                    },
                }
            }
        }
    }

    /// All constants appearing in the formula.
    fn constants<'a>(&'a self, out: &mut Vec<&'a FormulaConst>) {
        match self {
            Formula::Cmp(_, c) => out.push(c),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.constants(out);
                b.constants(out);
            }
            _ => {}
        }
    }

    /// Decide `self ⟹ other` over the totally ordered domain `A` by
    /// sampling one witness per region delimited by the constants of both
    /// formulas — truth is constant on each region, so this is exact.
    pub fn implies(&self, other: &Formula) -> bool {
        let mut consts = Vec::new();
        self.constants(&mut consts);
        other.constants(&mut consts);
        // Numeric domain when every constant is (coercible to) a number.
        let mut nums: Vec<f64> = Vec::new();
        let mut all_numeric = true;
        for c in &consts {
            match c {
                FormulaConst::Int(i) => nums.push(*i as f64),
                FormulaConst::Str(s) => match s.trim().parse::<f64>() {
                    Ok(x) => nums.push(x),
                    Err(_) => {
                        all_numeric = false;
                        break;
                    }
                },
            }
        }
        let samples: Vec<String> = if all_numeric {
            nums.sort_by(|a, b| a.partial_cmp(b).unwrap());
            nums.dedup();
            let mut pts: Vec<f64> = Vec::new();
            if nums.is_empty() {
                pts.push(0.0);
            } else {
                pts.push(nums[0] - 1.0);
                for w in nums.windows(2) {
                    pts.push((w[0] + w[1]) / 2.0);
                }
                pts.push(nums[nums.len() - 1] + 1.0);
                pts.extend(nums.iter().copied());
            }
            pts.iter()
                .map(|x| {
                    if x.fract() == 0.0 {
                        format!("{}", *x as i64)
                    } else {
                        format!("{x}")
                    }
                })
                .collect()
        } else {
            // string domain: each constant, just-above each constant, and
            // the empty string (below everything non-empty)
            let mut strs: Vec<String> = consts
                .iter()
                .map(|c| match c {
                    FormulaConst::Int(i) => i.to_string(),
                    FormulaConst::Str(s) => s.clone(),
                })
                .collect();
            strs.sort();
            strs.dedup();
            let mut pts = vec![String::new()];
            for s in &strs {
                pts.push(s.clone());
                pts.push(format!("{s}\u{1}"));
            }
            pts
        };
        samples.iter().all(|s| !self.eval(s) || other.eval(s))
    }

    /// Is the formula satisfiable over `A`?
    pub fn satisfiable(&self) -> bool {
        !self.implies(&Formula::False)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "T"),
            Formula::False => write!(f, "F"),
            Formula::Cmp(op, c) => write!(f, "v{op}{c}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

/// A XAM node: name constraint + specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct XamNode {
    /// Symbolic name (`e1`, `x`, …) used in tuples, bindings and figures.
    pub name: String,
    /// Is this an attribute node (names starting with `@` by convention)?
    pub is_attribute: bool,
    pub parent: Option<XamNodeId>,
    pub children: Vec<XamNodeId>,
    /// Specification of the edge from the parent (meaningless on `⊤`).
    pub edge: XamEdge,
    /// Tag predicate `[Tag=c]`: only subtrees with this tag are covered.
    /// `None` = any tag (`*` nodes).
    pub tag_predicate: Option<String>,
    /// Value formula decorating the node (`[Val=c]` generalized to φ(v)).
    /// `Formula::True` = unconstrained.
    pub value_predicate: Formula,
    /// Is the ID stored, and of which class?
    pub stores_id: Option<IdKind>,
    /// Is the tag stored (the `L` attribute of attribute patterns)?
    pub stores_tag: bool,
    /// Is the value stored (`V`)?
    pub stores_val: bool,
    /// Is the serialized content stored (`C`)?
    pub stores_cont: bool,
    /// `R` markers: which stored items are *required* to access the data
    /// (index keys).
    pub requires_id: bool,
    pub requires_tag: bool,
    pub requires_val: bool,
}

impl XamNode {
    /// A bare node matching elements with any tag, storing nothing.
    pub fn star(name: impl Into<String>) -> XamNode {
        XamNode {
            name: name.into(),
            is_attribute: false,
            parent: None,
            children: Vec::new(),
            edge: XamEdge::descendant(),
            tag_predicate: None,
            value_predicate: Formula::True,
            stores_id: None,
            stores_tag: false,
            stores_val: false,
            stores_cont: false,
            requires_id: false,
            requires_tag: false,
            requires_val: false,
        }
    }

    /// Does the node store any attribute (i.e. is it a *return node* in the
    /// Chapter 4 sense)?
    pub fn is_return(&self) -> bool {
        self.stores_id.is_some() || self.stores_tag || self.stores_val || self.stores_cont
    }

    /// Does the node carry any `R` (required) marker?
    pub fn has_required(&self) -> bool {
        self.requires_id || self.requires_tag || self.requires_val
    }

    /// The display label: the tag predicate if one exists, else `*`.
    pub fn display_label(&self) -> &str {
        self.tag_predicate.as_deref().unwrap_or("*")
    }
}

/// An XML Access Module: ordered tree of specified nodes. Node 0 is `⊤`.
#[derive(Debug, Clone, PartialEq)]
pub struct Xam {
    pub nodes: Vec<XamNode>,
    /// Order flag `o`: data is stored in document order.
    pub ordered: bool,
}

impl Xam {
    /// A XAM consisting of just `⊤`.
    pub fn top() -> Xam {
        let mut root = XamNode::star("top");
        root.edge = XamEdge::child();
        Xam {
            nodes: vec![root],
            ordered: true,
        }
    }

    pub fn root(&self) -> XamNodeId {
        XamNodeId::TOP
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of non-`⊤` pattern nodes (the `|p|` of the complexity
    /// analyses).
    pub fn pattern_size(&self) -> usize {
        self.nodes.len() - 1
    }

    pub fn node(&self, id: XamNodeId) -> &XamNode {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: XamNodeId) -> &mut XamNode {
        &mut self.nodes[id.index()]
    }

    /// Add a child node under `parent`, returning its id.
    pub fn add_child(&mut self, parent: XamNodeId, mut node: XamNode) -> XamNodeId {
        let id = XamNodeId(self.nodes.len() as u32);
        node.parent = Some(parent);
        self.nodes.push(node);
        self.nodes[parent.index()].children.push(id);
        id
    }

    pub fn children(&self, id: XamNodeId) -> &[XamNodeId] {
        &self.nodes[id.index()].children
    }

    pub fn parent(&self, id: XamNodeId) -> Option<XamNodeId> {
        self.nodes[id.index()].parent
    }

    /// All node ids in creation (pre-order) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = XamNodeId> + '_ {
        (0..self.nodes.len() as u32).map(XamNodeId)
    }

    /// Non-`⊤` nodes.
    pub fn pattern_nodes(&self) -> impl Iterator<Item = XamNodeId> + '_ {
        (1..self.nodes.len() as u32).map(XamNodeId)
    }

    /// Return nodes in document (creation) order, as used to type the
    /// pattern's result tuples.
    pub fn return_nodes(&self) -> Vec<XamNodeId> {
        self.pattern_nodes()
            .filter(|&n| self.node(n).is_return())
            .collect()
    }

    /// Find a node by its symbolic name.
    pub fn node_by_name(&self, name: &str) -> Option<XamNodeId> {
        self.all_nodes().find(|&n| self.node(n).name == name)
    }

    /// Is the XAM conjunctive: all edges plain joins, no value formulas
    /// beyond equalities, no R markers (the §4.1 base fragment)?
    pub fn is_conjunctive(&self) -> bool {
        self.pattern_nodes().all(|n| {
            let node = self.node(n);
            node.edge.sem == EdgeSem::Join && !node.has_required()
        })
    }

    /// Does any node carry an `R` marker (access restriction)?
    pub fn has_access_restrictions(&self) -> bool {
        self.nodes.iter().any(|n| n.has_required())
    }

    /// The number of `n`-labelled (nested) edges above `id` — the length of
    /// its nesting sequence `|ns(n_i)|` (§4.4.5).
    pub fn nesting_depth(&self, id: XamNodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            if self.node(cur).edge.sem.is_nested() {
                d += 1;
            }
            cur = p;
        }
        d
    }

    /// Depth-first copy of the subtree rooted at `sub` as a standalone XAM
    /// (re-rooted under a fresh `⊤`).
    pub fn subtree(&self, sub: XamNodeId) -> Xam {
        let mut out = Xam::top();
        fn rec(src: &Xam, from: XamNodeId, dst: &mut Xam, under: XamNodeId) {
            let mut node = src.node(from).clone();
            node.children = Vec::new();
            let new_id = dst.add_child(under, node);
            for &c in src.children(from) {
                rec(src, c, dst, new_id);
            }
        }
        rec(self, sub, &mut out, XamNodeId::TOP);
        out
    }
}

impl fmt::Display for Xam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn specs(n: &XamNode) -> String {
            let mut parts = Vec::new();
            if let Some(k) = n.stores_id {
                parts.push(format!("id:{k}{}", if n.requires_id { "!" } else { "" }));
            }
            if n.stores_tag {
                parts.push(format!("tag{}", if n.requires_tag { "!" } else { "" }));
            }
            if let Some(t) = &n.tag_predicate {
                if t != &n.name {
                    parts.push(format!("tag={t:?}"));
                }
            }
            if n.stores_val {
                parts.push(format!("val{}", if n.requires_val { "!" } else { "" }));
            }
            if n.value_predicate != Formula::True {
                parts.push(format!("val:{}", n.value_predicate));
            }
            if n.stores_cont {
                parts.push("cont".to_string());
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("[{}]", parts.join(", "))
            }
        }
        fn rec(x: &Xam, n: XamNodeId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let node = x.node(n);
            if n == XamNodeId::TOP {
                writeln!(f, "⊤")?;
            } else {
                let label = if node.is_attribute {
                    format!("@{}", node.display_label())
                } else {
                    node.display_label().to_string()
                };
                writeln!(
                    f,
                    "{}{} {}:{}{}",
                    "  ".repeat(depth),
                    node.edge,
                    node.name,
                    label,
                    specs(node)
                )?;
            }
            for &c in x.children(n) {
                rec(x, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, XamNodeId::TOP, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_eval() {
        let f = Formula::eq_str("1999");
        assert!(f.eval("1999"));
        assert!(!f.eval("2000"));
        let g = Formula::Cmp(algebra::CmpOp::Lt, FormulaConst::Int(5));
        assert!(g.eval("3"));
        assert!(!g.eval("7"));
        let h = g
            .clone()
            .and(Formula::Cmp(algebra::CmpOp::Gt, FormulaConst::Int(1)));
        assert!(h.eval("3"));
        assert!(!h.eval("0"));
    }

    #[test]
    fn formula_implication_numeric() {
        use algebra::CmpOp::*;
        let lt3 = Formula::Cmp(Lt, FormulaConst::Int(3));
        let lt5 = Formula::Cmp(Lt, FormulaConst::Int(5));
        assert!(lt3.implies(&lt5));
        assert!(!lt5.implies(&lt3));
        let eq3 = Formula::eq_int(3);
        assert!(eq3.implies(&lt5));
        assert!(!eq3.implies(&lt3));
        // (v=3) ⟹ (v>1 ∨ v<0)
        let disj =
            Formula::Cmp(Gt, FormulaConst::Int(1)).or(Formula::Cmp(Lt, FormulaConst::Int(0)));
        assert!(eq3.implies(&disj));
        // contradiction implies everything
        let contra =
            Formula::Cmp(Lt, FormulaConst::Int(0)).and(Formula::Cmp(Gt, FormulaConst::Int(1)));
        assert!(contra.implies(&eq3));
        assert!(!contra.satisfiable());
        assert!(lt3.satisfiable());
    }

    #[test]
    fn formula_implication_strings() {
        use algebra::CmpOp::*;
        let eq = Formula::eq_str("web");
        let ge = Formula::Cmp(Ge, FormulaConst::Str("data".into()));
        assert!(eq.implies(&ge));
        assert!(!ge.implies(&eq));
        assert!(eq.implies(&Formula::True));
        assert!(Formula::False.implies(&eq));
    }

    #[test]
    fn xam_construction() {
        let mut x = Xam::top();
        let mut book = XamNode::star("b");
        book.tag_predicate = Some("book".into());
        book.edge = XamEdge::descendant();
        book.stores_id = Some(IdKind::Structural);
        let b = x.add_child(x.root(), book);
        let mut title = XamNode::star("t");
        title.tag_predicate = Some("title".into());
        title.edge = XamEdge::child();
        title.stores_val = true;
        let t = x.add_child(b, title);
        assert_eq!(x.pattern_size(), 2);
        assert_eq!(x.return_nodes(), vec![b, t]);
        assert!(x.is_conjunctive());
        assert_eq!(x.node_by_name("t"), Some(t));
        assert_eq!(x.nesting_depth(t), 0);
    }

    #[test]
    fn nesting_depth_counts_n_edges() {
        let mut x = Xam::top();
        let mut a = XamNode::star("a");
        a.edge = XamEdge::descendant();
        let a = x.add_child(x.root(), a);
        let mut b = XamNode::star("b");
        b.edge = XamEdge {
            axis: Axis::Child,
            sem: EdgeSem::NestOuter,
        };
        let b = x.add_child(a, b);
        let mut c = XamNode::star("c");
        c.edge = XamEdge {
            axis: Axis::Descendant,
            sem: EdgeSem::NestJoin,
        };
        let c = x.add_child(b, c);
        assert_eq!(x.nesting_depth(a), 0);
        assert_eq!(x.nesting_depth(b), 1);
        assert_eq!(x.nesting_depth(c), 2);
        assert!(!x.is_conjunctive());
    }

    #[test]
    fn subtree_extraction() {
        let mut x = Xam::top();
        let a = x.add_child(x.root(), XamNode::star("a"));
        let b = x.add_child(a, XamNode::star("b"));
        let _c = x.add_child(b, XamNode::star("c"));
        let sub = x.subtree(b);
        assert_eq!(sub.pattern_size(), 2);
        assert_eq!(sub.node(XamNodeId(1)).name, "b");
    }
}
