//! A concrete textual syntax for XAMs.
//!
//! The grammar mirrors Figure 2.3. Every XAM implicitly starts at `⊤`; the
//! text gives the edge to the first real node:
//!
//! ```text
//! //item[id:s, cont] { /name[val], //n? listitem[id:s, cont] }
//! ```
//!
//! * **edges**: `/` (parent-child) or `//` (ancestor-descendant), with an
//!   optional semantics suffix — nothing = `j` (join), `?` = `o`
//!   (outerjoin, *optional*), `n` = `nj` (nest join), `n?` = `no`
//!   (nest outerjoin), `s` = semijoin;
//! * **nodes**: a label (`item`), `*` (any element), or `@name` (an
//!   attribute); a node may be given an explicit symbolic name with
//!   `name:label` (e.g. `x:item`);
//! * **specs** in `[...]`: `id`, `id:i|o|s|p`, `tag`, `val`, `cont` mark
//!   stored items (a trailing `!` marks an `R` access restriction, e.g.
//!   `val!`); `val="c"`, `val<5`, `val>=10` attach value predicates
//!   (several are conjoined); `tag="c"` constrains the tag without storing
//!   it (same as writing the label directly);
//! * **children** in `{...}`, comma-separated.
//!
//! A leading `unordered` keyword clears the order flag.

use std::fmt;

use algebra::CmpOp;

use crate::ast::{Axis, EdgeSem, Formula, FormulaConst, IdKind, Xam, XamEdge, XamNode, XamNodeId};

/// Error produced while parsing a textual XAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XamParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XamParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XAM parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XamParseError {}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
    fresh: u32,
}

/// Parse a XAM from its textual form.
///
/// ```
/// let x = xam_core::parse_xam(r#"//book[id:s]{ /title[val], /@year[val="1999"] }"#).unwrap();
/// assert_eq!(x.pattern_size(), 3);
/// ```
pub fn parse_xam(text: &str) -> Result<Xam, XamParseError> {
    let mut p = P {
        s: text.as_bytes(),
        pos: 0,
        fresh: 0,
    };
    let mut xam = Xam::top();
    p.ws();
    if p.eat_kw("unordered") {
        xam.ordered = false;
        p.ws();
    }
    let edge = p.edge()?;
    p.node(&mut xam, XamNodeId::TOP, edge)?;
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(xam)
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> XamParseError {
        XamParseError {
            offset: self.pos,
            message: m.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, XamParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'#') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn string_lit(&mut self) -> Result<String, XamParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string literal"));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let out = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn edge(&mut self) -> Result<XamEdge, XamParseError> {
        self.ws();
        if !self.eat(b'/') {
            return Err(self.err("expected `/` or `//`"));
        }
        let axis = if self.eat(b'/') {
            Axis::Descendant
        } else {
            Axis::Child
        };
        // semantics suffix: `n`/`s` are only suffixes when followed by `?`
        // or whitespace (otherwise they start the node label, e.g. `/name`)
        let next2 = self.s.get(self.pos + 1).copied();
        let sep = |c: Option<u8>| matches!(c, Some(b' ' | b'\t' | b'\n' | b'\r' | b'?') | None);
        let sem = if self.peek() == Some(b'n') && sep(next2) {
            self.pos += 1;
            if self.eat(b'?') {
                EdgeSem::NestOuter
            } else {
                EdgeSem::NestJoin
            }
        } else if self.eat(b'?') {
            EdgeSem::Outer
        } else if self.peek() == Some(b's') && sep(next2) && next2 != Some(b'?') {
            self.pos += 1;
            EdgeSem::Semi
        } else {
            EdgeSem::Join
        };
        Ok(XamEdge { axis, sem })
    }

    fn node(
        &mut self,
        xam: &mut Xam,
        parent: XamNodeId,
        edge: XamEdge,
    ) -> Result<XamNodeId, XamParseError> {
        self.ws();
        let is_attribute = self.eat(b'@');
        let (mut name, label) = if self.eat(b'*') {
            (String::new(), None)
        } else {
            let first = self.ident()?;
            if !is_attribute && self.eat(b':') {
                if self.eat(b'*') {
                    (first, None)
                } else if self.peek() == Some(b'@') {
                    self.pos += 1;
                    let l = if self.eat(b'*') {
                        None
                    } else {
                        Some(self.ident()?)
                    };
                    let mut node = XamNode::star(first);
                    node.is_attribute = true;
                    node.tag_predicate = l;
                    node.edge = edge;
                    let id = xam.add_child(parent, node);
                    self.specs_and_children(xam, id)?;
                    return Ok(id);
                } else {
                    let l = self.ident()?;
                    (first, Some(l))
                }
            } else {
                (String::new(), Some(first))
            }
        };
        if name.is_empty() {
            self.fresh += 1;
            name = match &label {
                Some(l) => format!("{l}{}", self.fresh),
                None => format!("star{}", self.fresh),
            };
        }
        let mut node = XamNode::star(name);
        node.is_attribute = is_attribute;
        node.tag_predicate = label;
        node.edge = edge;
        let id = xam.add_child(parent, node);
        self.specs_and_children(xam, id)?;
        Ok(id)
    }

    fn specs_and_children(&mut self, xam: &mut Xam, id: XamNodeId) -> Result<(), XamParseError> {
        self.ws();
        if self.eat(b'[') {
            loop {
                self.ws();
                self.spec(xam, id)?;
                self.ws();
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b']') {
                    break;
                }
                return Err(self.err("expected `,` or `]` in specs"));
            }
        }
        self.ws();
        if self.eat(b'{') {
            loop {
                self.ws();
                if self.eat(b'}') {
                    break;
                }
                let edge = self.edge()?;
                self.node(xam, id, edge)?;
                self.ws();
                let _ = self.eat(b',');
            }
        }
        Ok(())
    }

    fn spec(&mut self, xam: &mut Xam, id: XamNodeId) -> Result<(), XamParseError> {
        let word = self.ident()?;
        let node = xam.node_mut(id);
        match word.as_str() {
            "id" => {
                let kind = if self.eat(b':') {
                    match self.ident()?.as_str() {
                        "i" => IdKind::Simple,
                        "o" => IdKind::Ordered,
                        "s" => IdKind::Structural,
                        "p" => IdKind::Parent,
                        other => return Err(self.err(&format!("unknown id class `{other}`"))),
                    }
                } else {
                    IdKind::Simple
                };
                node.stores_id = Some(kind);
                if self.eat(b'!') {
                    node.requires_id = true;
                }
            }
            "tag" => {
                self.ws();
                if self.eat(b'=') {
                    self.ws();
                    let c = self.string_lit()?;
                    node.tag_predicate = Some(c);
                } else {
                    node.stores_tag = true;
                    if self.eat(b'!') {
                        node.requires_tag = true;
                    }
                }
            }
            "val" => {
                self.ws();
                let op = if self.eat(b'=') {
                    Some(CmpOp::Eq)
                } else if self.eat_kw("!=") {
                    Some(CmpOp::Ne)
                } else if self.eat_kw("<=") {
                    Some(CmpOp::Le)
                } else if self.eat_kw(">=") {
                    Some(CmpOp::Ge)
                } else if self.eat(b'<') {
                    Some(CmpOp::Lt)
                } else if self.eat(b'>') {
                    Some(CmpOp::Gt)
                } else {
                    None
                };
                match op {
                    Some(op) => {
                        self.ws();
                        let c = if self.peek() == Some(b'"') {
                            FormulaConst::Str(self.string_lit()?)
                        } else {
                            let start = self.pos;
                            self.eat(b'-');
                            while matches!(self.peek(), Some(b'0'..=b'9')) {
                                self.pos += 1;
                            }
                            let txt = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
                            FormulaConst::Int(
                                txt.parse()
                                    .map_err(|_| self.err("expected integer or string constant"))?,
                            )
                        };
                        let atom = Formula::Cmp(op, c);
                        let prev = std::mem::replace(&mut node.value_predicate, Formula::True);
                        node.value_predicate = prev.and(atom);
                    }
                    None => {
                        node.stores_val = true;
                        if self.eat(b'!') {
                            node.requires_val = true;
                        }
                    }
                }
            }
            "cont" => {
                node.stores_cont = true;
            }
            other => return Err(self.err(&format!("unknown spec `{other}`"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_path() {
        let x = parse_xam("//book[id:s]").unwrap();
        assert_eq!(x.pattern_size(), 1);
        let b = XamNodeId(1);
        assert_eq!(x.node(b).tag_predicate.as_deref(), Some("book"));
        assert_eq!(x.node(b).stores_id, Some(IdKind::Structural));
        assert_eq!(x.node(b).edge.axis, Axis::Descendant);
        assert!(x.ordered);
    }

    #[test]
    fn parses_children_and_edges() {
        let x = parse_xam("//item[id:s,cont]{ /name[val], //n? li:listitem[id:s,cont] }").unwrap();
        assert_eq!(x.pattern_size(), 3);
        let li = x.node_by_name("li").unwrap();
        assert_eq!(x.node(li).edge.sem, EdgeSem::NestOuter);
        assert_eq!(x.node(li).edge.axis, Axis::Descendant);
        assert!(x.node(li).stores_cont);
        let name = x.children(XamNodeId(1))[0];
        assert_eq!(x.node(name).tag_predicate.as_deref(), Some("name"));
        assert!(x.node(name).stores_val);
    }

    #[test]
    fn parses_star_and_attributes() {
        let x = parse_xam(r#"/*{ /@year[val="1999"], /s title }"#).unwrap();
        assert_eq!(x.pattern_size(), 3);
        let star = XamNodeId(1);
        assert_eq!(x.node(star).tag_predicate, None);
        let year = x.children(star)[0];
        assert!(x.node(year).is_attribute);
        assert_eq!(x.node(year).value_predicate, Formula::eq_str("1999"));
        let title = x.children(star)[1];
        assert_eq!(x.node(title).edge.sem, EdgeSem::Semi);
    }

    #[test]
    fn parses_required_markers() {
        let x = parse_xam("//book[tag!]{ /title[val!], /author[id:s,val] }").unwrap();
        let b = XamNodeId(1);
        assert!(x.node(b).stores_tag && x.node(b).requires_tag);
        let t = x.children(b)[0];
        assert!(x.node(t).requires_val);
        assert!(x.has_access_restrictions());
    }

    #[test]
    fn parses_value_inequalities() {
        let x = parse_xam("//g[val>1, val<5]").unwrap();
        let g = XamNodeId(1);
        let f = &x.node(g).value_predicate;
        assert!(f.eval("3"));
        assert!(!f.eval("7"));
    }

    #[test]
    fn parses_named_nodes_and_unordered() {
        let x = parse_xam("unordered //x:item{ /n y:name[val] }").unwrap();
        assert!(!x.ordered);
        let y = x.node_by_name("y").unwrap();
        assert_eq!(x.node(y).edge.sem, EdgeSem::NestJoin);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_xam("book").is_err()); // missing root edge
        assert!(parse_xam("//book[").is_err());
        assert!(parse_xam("//book[zzz]").is_err());
        assert!(parse_xam("//book{/a} trailing").is_err());
        assert!(parse_xam("//book[id:q]").is_err());
    }

    #[test]
    fn roundtrip_through_display() {
        let x = parse_xam("//item[id:s]{ /name[val], //n? listitem[cont] }").unwrap();
        let shown = x.to_string();
        assert!(shown.contains("item"));
        assert!(shown.contains("//no"), "{shown}");
    }
}
