//! # xam-core — XML Access Modules (XAMs)
//!
//! The paper's central contribution: a tree-pattern language that uniformly
//! describes persistent XML storage structures — storage modules, indices
//! and materialized views (Chapter 2) — and doubles as the query-pattern
//! formalism extracted from XQuery (Chapter 3) and reasoned about by the
//! containment and rewriting algorithms (Chapters 4–5).
//!
//! A XAM is an ordered tree `(NS, ES, o)` whose nodes carry *specifications*
//! saying which items are **stored** (ID with its class `i`/`o`/`s`/`p`,
//! Tag, Val, Cont), which are **required** for access (`R` markers, i.e.
//! index keys), and which are **constrained** (`[Tag=c]`, value formulas);
//! and whose edges are `/` or `//` with join / semijoin / outerjoin /
//! nest-join / nest-outerjoin semantics (grammar of Figure 2.3).
//!
//! Modules:
//! * [`ast`] — the XAM abstract syntax and value formulas;
//! * [`parse`] — a concrete textual syntax for XAMs;
//! * [`semantics`] — the algebraic semantics `⟦χ⟧_d` (§2.2.2): a XAM is
//!   evaluated to a nested relation by a structural-join tree isomorphic to
//!   the pattern, built on the [`algebra`] crate;
//! * [`bindings`] — restricted (R-marked) semantics via binding tuples and
//!   the tuple-intersection Algorithm 1;
//! * [`embed`] — the alternative embedding-based semantics (§4.1), used as
//!   ground truth by the containment machinery and the test suite.

pub mod ast;
pub mod bindings;
pub mod embed;
pub mod parse;
pub mod semantics;

pub use ast::{EdgeSem, Formula, IdKind, Xam, XamEdge, XamNode, XamNodeId};
pub use parse::{parse_xam, XamParseError};
pub use semantics::evaluate;
