//! Algebraic XAM semantics `⟦χ⟧_d` (§2.2.2).
//!
//! A XAM is evaluated over a document by constructing a structural-join
//! tree **isomorphic to the XAM tree** (Definition 2.2.4): each non-`⊤`
//! node contributes its tag-derived collection `R_t` / `R_*` (attributes:
//! `R_t^α`), filtered by its value formula; each edge contributes a
//! structural (semi/outer/nest) join; a final projection `Π_χ` retains
//! exactly the stored attributes and eliminates duplicates
//! (Definitions 2.2.3 and 2.2.5 — evaluation internally keeps IDs to run
//! the joins, then projects them away if unstored).
//!
//! The `⊤` node matches the (virtual) document node: a `/`-edge from `⊤`
//! restricts matches to the root element, a `//`-edge matches any element.
//! Multiple children of `⊤` are combined by cartesian product (they share
//! no structural relation other than living in the same document, cf. the
//! `V10 × V11` rewriting of §3.3.3).

use algebra::{
    eval as aeval, Axis, Catalog, EvalError, Evaluator, JoinKind, LogicalPlan, Operand, Path,
    Predicate, Relation, Schema, Value,
};
use xmltree::Document;

use crate::ast::{EdgeSem, Formula, FormulaConst, Xam, XamNodeId};

/// Which stored item a result column corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoredAttr {
    Id,
    Tag,
    Val,
    Cont,
}

impl StoredAttr {
    pub fn suffix(self) -> &'static str {
        match self {
            StoredAttr::Id => "ID",
            StoredAttr::Tag => "Tag",
            StoredAttr::Val => "Val",
            StoredAttr::Cont => "Cont",
        }
    }
}

/// One column of a XAM's result: which node, which item, and the dotted
/// path of the column in the output schema (crossing nest collections).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputColumn {
    pub node: XamNodeId,
    pub attr: StoredAttr,
    pub path: String,
}

/// The base-relation name used for a XAM node in generated catalogs.
fn base_name(xam: &Xam, n: XamNodeId) -> String {
    format!("__xam_base_{}", xam.node(n).name)
}

/// Field name of an attribute of node `n` (unique across the XAM because
/// node names are unique).
pub fn field_name(xam: &Xam, n: XamNodeId, attr: StoredAttr) -> String {
    format!("{}_{}", xam.node(n).name, attr.suffix())
}

/// The dotted output path prefix of every node: nodes below a nested edge
/// live inside the nest collection named after the child node.
fn prefixes(xam: &Xam) -> Vec<String> {
    let mut out = vec![String::new(); xam.len()];
    for n in xam.pattern_nodes() {
        let p = xam.parent(n).unwrap();
        let node = xam.node(n);
        out[n.index()] = if node.edge.sem.is_nested() {
            format!("{}{}.", out[p.index()], node.name)
        } else {
            out[p.index()].clone()
        };
    }
    out
}

/// Is `n` (or any ancestor up to `⊤`) reachable only through a semijoin
/// edge? Such nodes contribute no output columns.
fn under_semijoin(xam: &Xam, n: XamNodeId) -> bool {
    let mut cur = n;
    while let Some(p) = xam.parent(cur) {
        if xam.node(cur).edge.sem.is_semijoin() {
            return true;
        }
        cur = p;
    }
    false
}

/// The output columns of a XAM, in pre-order of nodes then
/// ID/Tag/Val/Cont order — this is the tuple signature of `⟦χ⟧_d`.
pub fn output_columns(xam: &Xam) -> Vec<OutputColumn> {
    let pref = prefixes(xam);
    let mut out = Vec::new();
    for n in xam.pattern_nodes() {
        if under_semijoin(xam, n) {
            continue;
        }
        let node = xam.node(n);
        let mut push = |attr: StoredAttr| {
            out.push(OutputColumn {
                node: n,
                attr,
                path: format!("{}{}", pref[n.index()], field_name(xam, n, attr)),
            });
        };
        if node.stores_id.is_some() {
            push(StoredAttr::Id);
        }
        if node.stores_tag {
            push(StoredAttr::Tag);
        }
        if node.stores_val {
            push(StoredAttr::Val);
        }
        if node.stores_cont {
            push(StoredAttr::Cont);
        }
    }
    out
}

/// Convert a value formula on node `n` into an algebra predicate over its
/// `Val` column.
fn formula_to_predicate(col: &str, f: &Formula) -> Predicate {
    match f {
        Formula::True => Predicate::True,
        Formula::False =>
        // unsatisfiable: Val = Val is true, so use a contradiction
        {
            Predicate::Not(Box::new(Predicate::True))
        }
        Formula::Cmp(op, c) => {
            let v = match c {
                FormulaConst::Int(i) => Value::Int(*i),
                FormulaConst::Str(s) => Value::str(s),
            };
            Predicate::Cmp(Operand::Col(Path::new(col)), *op, Operand::Const(v))
        }
        Formula::And(a, b) => Predicate::And(
            Box::new(formula_to_predicate(col, a)),
            Box::new(formula_to_predicate(col, b)),
        ),
        Formula::Or(a, b) => Predicate::Or(
            Box::new(formula_to_predicate(col, a)),
            Box::new(formula_to_predicate(col, b)),
        ),
    }
}

/// Build the catalog of tag-derived base relations for a XAM over `doc`,
/// with per-node renamed columns `{name}_ID, {name}_Tag, {name}_Val,
/// {name}_Cont`.
pub fn build_catalog(xam: &Xam, doc: &Document) -> Catalog {
    let mut cat = Catalog::new();
    for n in xam.pattern_nodes() {
        let node = xam.node(n);
        let mut rel = match (&node.tag_predicate, node.is_attribute) {
            (Some(t), false) => aeval::tag_derived(doc, t),
            (None, false) => aeval::all_elements(doc),
            (Some(t), true) => aeval::tag_derived_attr(doc, t),
            (None, true) => aeval::all_attributes(doc),
        };
        rel.schema = Schema::atoms(&[
            &field_name(xam, n, StoredAttr::Id),
            &field_name(xam, n, StoredAttr::Tag),
            &field_name(xam, n, StoredAttr::Val),
            &field_name(xam, n, StoredAttr::Cont),
        ]);
        cat.insert(base_name(xam, n), rel);
    }
    cat
}

/// Build the structural-join plan isomorphic to the XAM tree, *without*
/// the final projection (all four columns of every node are kept so the
/// rewriting layer can post-process); apply [`final_projection`] to get
/// `⟦χ⟧_d` proper.
pub fn build_join_plan(xam: &Xam) -> LogicalPlan {
    let top_children = xam.children(XamNodeId::TOP);
    assert!(
        !top_children.is_empty(),
        "a XAM must have at least one node besides ⊤"
    );
    let mut plan: Option<LogicalPlan> = None;
    for &c in top_children {
        let sub = node_plan(xam, c);
        // `/` from ⊤ restricts to the root element: depth = 1
        let sub = if xam.node(c).edge.axis == Axis::Child {
            // the root element is the unique element with no parent; we
            // encode "is root" as pre-rank 0 (document order starts there)
            sub.select(Predicate::Cmp(
                Operand::Col(Path::new(field_name(xam, c, StoredAttr::Id))),
                algebra::CmpOp::Le,
                Operand::Const(Value::Id(xmltree::StructuralId::new(0, u32::MAX, 1))),
            ))
        } else {
            sub
        };
        let sub = if xam.node(c).edge.sem.is_nested() {
            LogicalPlan::NestAll {
                input: Box::new(sub),
                as_name: xam.node(c).name.clone(),
            }
        } else {
            sub
        };
        plan = Some(match plan {
            None => sub,
            Some(p) => p.product(sub),
        });
    }
    plan.unwrap()
}

/// Plan for the subtree rooted at a non-`⊤` node: base relation, value
/// selection, then one structural join per child, bottom-up.
fn node_plan(xam: &Xam, n: XamNodeId) -> LogicalPlan {
    let node = xam.node(n);
    let mut plan = LogicalPlan::scan(base_name(xam, n));
    if node.value_predicate != Formula::True {
        plan = plan.select(formula_to_predicate(
            &field_name(xam, n, StoredAttr::Val),
            &node.value_predicate,
        ));
    }
    for &c in xam.children(n) {
        let child_plan = node_plan(xam, c);
        let edge = xam.node(c).edge;
        let kind = match edge.sem {
            EdgeSem::Join => JoinKind::Inner,
            EdgeSem::Outer => JoinKind::LeftOuter,
            EdgeSem::Semi => JoinKind::Semi,
            EdgeSem::NestJoin => JoinKind::Nest,
            EdgeSem::NestOuter => JoinKind::NestOuter,
        };
        plan = LogicalPlan::StructJoin {
            left: Box::new(plan),
            right: Box::new(child_plan),
            left_attr: Path::new(field_name(xam, n, StoredAttr::Id)),
            right_attr: Path::new(field_name(xam, c, StoredAttr::Id)),
            axis: edge.axis,
            kind,
            nest_as: edge.sem.is_nested().then(|| xam.node(c).name.clone()),
        };
    }
    plan
}

/// Wrap a join plan with the final `Π_χ` projection: keep exactly the
/// stored attributes (by dotted path) and eliminate duplicate tuples.
pub fn final_projection(xam: &Xam, plan: LogicalPlan) -> LogicalPlan {
    let cols: Vec<Path> = output_columns(xam)
        .into_iter()
        .map(|c| Path::new(c.path))
        .collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        cols,
        distinct: true,
    }
}

/// Evaluate a XAM (without access restrictions) over a document:
/// `⟦χ⟧_d`, a nested relation whose schema is given by
/// [`output_columns`].
///
/// ```
/// let doc = xmltree::generate::bib_sample();
/// let xam = xam_core::parse_xam("//book[id:s]{ /title[val] }").unwrap();
/// let rel = xam_core::evaluate(&xam, &doc).unwrap();
/// assert_eq!(rel.len(), 2); // both books have titles
/// ```
pub fn evaluate(xam: &Xam, doc: &Document) -> Result<Relation, EvalError> {
    let cat = build_catalog(xam, doc);
    let plan = final_projection(xam, build_join_plan(xam));
    let ev = Evaluator::with_document(&cat, doc);
    let mut rel = ev.eval(&plan)?;
    if !xam.ordered {
        // unordered XAMs expose set semantics; we keep the tuples but the
        // order carries no meaning (document order is the natural one here)
        rel.schema = rel.schema.clone();
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xam;
    use xmltree::generate::bib_sample;

    #[test]
    fn two_node_xam_chi1() {
        // χ1 of Figure 2.8: ⊤ //j book [Tag] — both books
        let doc = bib_sample();
        let xam = parse_xam("//book[id:s,tag]").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuples[0].get(1).as_str(), Some("book"));
    }

    #[test]
    fn semijoin_chi2() {
        // χ2: books having a year attribute — only the 1999 one
        let doc = bib_sample();
        let xam = parse_xam("//book[id:s,tag]{ /s @year }").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1);
        // semijoin child stores nothing → 2 columns only
        assert_eq!(rel.schema.arity(), 2);
    }

    #[test]
    fn nested_chi3() {
        // χ3: as χ2 plus nested title (ID, Tag, Val)
        let doc = bib_sample();
        let xam = parse_xam("//book[id:s,tag]{ /s @year, /n t:title[id:s,tag,val] }").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1);
        let titles = rel.tuples[0].get(2).as_coll().unwrap();
        assert_eq!(titles.len(), 1);
        assert_eq!(titles.tuples[0].get(2).as_str(), Some("Data on the Web"));
    }

    #[test]
    fn value_predicates_filter() {
        let doc = bib_sample();
        let xam = parse_xam(r#"//*[id:s]{ /@year[val="2004"] }"#).unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1); // only the phdthesis has year=2004
    }

    #[test]
    fn optional_edges_keep_parents() {
        let doc = bib_sample();
        // all books, with optional year value
        let xam = parse_xam("//book[id:s]{ /? y:@year[val] }").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 2);
        let with_year: Vec<bool> = rel.tuples.iter().map(|t| !t.get(1).is_null()).collect();
        assert_eq!(with_year, vec![true, false]);
    }

    #[test]
    fn child_of_top_is_root_only() {
        let doc = bib_sample();
        // `/library` from ⊤ matches the root; `/book` from ⊤ matches nothing
        let xam = parse_xam("/library[id:s]").unwrap();
        assert_eq!(evaluate(&xam, &doc).unwrap().len(), 1);
        let xam = parse_xam("/book[id:s]").unwrap();
        assert_eq!(evaluate(&xam, &doc).unwrap().len(), 0);
    }

    #[test]
    fn star_node_matches_all_elements() {
        let doc = bib_sample();
        let xam = parse_xam("//*[id:s]").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), doc.element_count());
    }

    #[test]
    fn duplicate_elimination_in_projection() {
        let doc = bib_sample();
        // two books have authors; projecting only the (unstored-ID) tag of
        // the parent gives one tuple per distinct tag, not per author
        let xam = parse_xam("//book[tag]{ /author }").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1); // "book" — duplicates eliminated
    }

    #[test]
    fn output_columns_reflect_nesting() {
        let xam = parse_xam("//item[id:s]{ /name[val], //n? li:listitem[cont] }").unwrap();
        let cols = output_columns(&xam);
        let paths: Vec<&str> = cols.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"item1_ID"));
        assert!(paths.iter().any(|p| p.starts_with("li.")));
    }

    #[test]
    fn semijoin_suppresses_descendant_columns() {
        let xam = parse_xam("//a[id:s]{ /s b[val]{ /c[val] } }").unwrap();
        let cols = output_columns(&xam);
        assert_eq!(cols.len(), 1); // only a's ID
    }

    #[test]
    fn cartesian_product_of_top_children() {
        let doc = bib_sample();
        let xam = parse_xam("//x:book[id:s]").unwrap();
        // manually add a second ⊤ child: phdthesis
        let mut xam = xam;
        let mut phd = crate::ast::XamNode::star("y");
        phd.tag_predicate = Some("phdthesis".into());
        phd.stores_id = Some(crate::ast::IdKind::Structural);
        phd.edge = crate::ast::XamEdge::descendant();
        xam.add_child(xam.root(), phd);
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 2); // 2 books × 1 thesis
        assert_eq!(rel.schema.arity(), 2);
    }

    #[test]
    fn figure_2_4_example_join_tree() {
        // the XAM of Fig. 2.4(a): book with year attribute, author with
        // lastname — over bib_sample authors have no lastname children, so
        // use title instead to exercise a 3-level chain
        let doc = bib_sample();
        let xam = parse_xam("//library[id:s]{ /book[id:s]{ /title[val] } }").unwrap();
        let rel = evaluate(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
