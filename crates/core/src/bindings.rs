//! Restricted (access-limited) XAM semantics (§2.2.2, Definition 2.2.6).
//!
//! A XAM with `R` markers models an *index*: its data can only be reached
//! by providing values for the required attributes — a list of **binding
//! tuples** whose type is the projection of the XAM's type over the
//! `R`-marked attributes. The semantics is
//! `⟦χ(B)⟧_d = ⋃_{b∈B, t∈⟦χ°⟧_d} t ∩ b`, where `χ°` erases the markers
//! and `∩` is the *tuple intersection* of Algorithm 1: atomic attributes
//! must agree, common nested collections intersect pairwise, attributes
//! absent from the binding are copied from the data tuple.

use algebra::{
    eval::project_relation, Collection, FieldKind, Path, Relation, Schema, Tuple, Value,
};
use xmltree::Document;

use crate::ast::Xam;
use crate::semantics::{self, output_columns, StoredAttr};

/// The columns of a XAM's output that are `R`-marked, i.e. the signature
/// of its binding tuples.
pub fn required_columns(xam: &Xam) -> Vec<semantics::OutputColumn> {
    output_columns(xam)
        .into_iter()
        .filter(|c| {
            let node = xam.node(c.node);
            match c.attr {
                StoredAttr::Id => node.requires_id,
                StoredAttr::Tag => node.requires_tag,
                StoredAttr::Val => node.requires_val,
                StoredAttr::Cont => false,
            }
        })
        .collect()
}

/// The (possibly nested) schema of binding tuples for a restricted XAM.
pub fn binding_schema(xam: &Xam) -> Schema {
    let paths: Vec<Path> = required_columns(xam)
        .into_iter()
        .map(|c| Path::new(c.path))
        .collect();
    // project an empty relation with the full output schema
    let doc_schema = full_output_schema(xam);
    project_relation(&Relation::empty(doc_schema), &paths)
        .expect("required columns are a subset of output columns")
        .schema
}

/// The full nested output schema of a XAM (what [`crate::evaluate`]
/// returns), computed structurally.
pub fn full_output_schema(xam: &Xam) -> Schema {
    // build by projecting a synthetic empty relation through the same
    // projection the evaluator uses: reconstruct from output column paths
    let paths: Vec<String> = output_columns(xam).into_iter().map(|c| c.path).collect();
    schema_from_paths(&paths)
}

fn schema_from_paths(paths: &[String]) -> Schema {
    use algebra::Field;
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    for p in paths {
        let (head, rest) = match p.split_once('.') {
            Some((h, r)) => (h.to_string(), Some(r.to_string())),
            None => (p.clone(), None),
        };
        let e = groups.entry(head.clone()).or_insert_with(|| {
            order.push(head);
            Vec::new()
        });
        if let Some(r) = rest {
            e.push(r);
        }
    }
    Schema::new(
        order
            .into_iter()
            .map(|h| {
                let subs = &groups[&h];
                if subs.is_empty() {
                    Field::atom(h)
                } else {
                    Field::nested(h, schema_from_paths(subs))
                }
            })
            .collect(),
    )
}

/// Tuple intersection `t ∩ b` (Algorithm 1). `b`'s schema must be a
/// projection of `t`'s schema (matched by field name). Returns the data
/// from `t` accessible given `b`, or `None` (an unsuccessful index
/// lookup).
pub fn tuple_intersect(
    t_schema: &Schema,
    t: &Tuple,
    b_schema: &Schema,
    b: &Tuple,
) -> Option<Tuple> {
    let mut out = t.clone();
    for (bi, bf) in b_schema.fields.iter().enumerate() {
        let ti = t_schema.index_of(&bf.name)?;
        match (&bf.kind, &t_schema.fields[ti].kind) {
            (FieldKind::Atom, FieldKind::Atom) => {
                // atomic attributes must agree (lines 2-7)
                let tv = t.get(ti);
                let bv = b.get(bi);
                if tv.compare(bv) != Some(std::cmp::Ordering::Equal) {
                    return None;
                }
            }
            (FieldKind::Nested(bs), FieldKind::Nested(ts)) => {
                // common complex attributes: pairwise intersections,
                // concatenated (lines 8-11)
                let (Value::Coll(tc), Value::Coll(bc)) = (t.get(ti), b.get(bi)) else {
                    return None;
                };
                let mut kept = Vec::new();
                for tt in &tc.tuples {
                    for bb in &bc.tuples {
                        if let Some(r) = tuple_intersect(ts, tt, bs, bb) {
                            kept.push(r);
                        }
                    }
                }
                if kept.is_empty() {
                    return None;
                }
                out.0[ti] = Value::Coll(Collection {
                    kind: tc.kind,
                    tuples: kept,
                });
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Restricted XAM semantics: evaluate `χ°` (markers erased — evaluation
/// ignores them anyway) and intersect every tuple with every binding
/// (Definition 2.2.6).
pub fn restricted_evaluate(
    xam: &Xam,
    doc: &Document,
    bindings: &Relation,
) -> Result<Relation, algebra::EvalError> {
    let full = crate::semantics::evaluate(xam, doc)?;
    let mut tuples = Vec::new();
    for b in &bindings.tuples {
        for t in &full.tuples {
            if let Some(r) = tuple_intersect(&full.schema, t, &bindings.schema, b) {
                tuples.push(r);
            }
        }
    }
    Ok(Relation::new(full.schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xam;
    use algebra::Field;
    use xmltree::generate::bib_sample;

    /// The χ4 XAM of Figure 2.9: elements with required tag, a required
    /// title value, stored author values.
    fn chi4() -> Xam {
        parse_xam("//e1:*[id:s,tag!]{ /n e2:author[val], /n e3:title[id:s,val!] }").unwrap()
    }

    #[test]
    fn binding_schema_projects_required() {
        let xam = chi4();
        let s = binding_schema(&xam);
        // e1_Tag at top, e3(e3_Val) nested
        assert_eq!(s.to_string(), "(e1_Tag, e3(e3_Val))");
    }

    #[test]
    fn atomic_disagreement_is_failed_lookup() {
        let ts = Schema::atoms(&["A", "B"]);
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let bs = Schema::atoms(&["A"]);
        assert!(tuple_intersect(&ts, &t, &bs, &Tuple::new(vec![Value::Int(1)])).is_some());
        assert!(tuple_intersect(&ts, &t, &bs, &Tuple::new(vec![Value::Int(2)])).is_none());
    }

    #[test]
    fn nested_intersection_keeps_common() {
        // the worked example around Algorithm 1: e2 = [Abiteboul, Suciu],
        // binding asks for [Suciu, Buneman] → keeps [Suciu]
        let ts = Schema::new(vec![
            Field::atom("ID"),
            Field::nested("e2", Schema::atoms(&["Val"])),
        ]);
        let t = Tuple::new(vec![
            Value::Int(2),
            Value::Coll(Collection::list(vec![
                Tuple::new(vec![Value::str("Abiteboul")]),
                Tuple::new(vec![Value::str("Suciu")]),
            ])),
        ]);
        let bs = Schema::new(vec![
            Field::atom("ID"),
            Field::nested("e2", Schema::atoms(&["Val"])),
        ]);
        let b = Tuple::new(vec![
            Value::Int(2),
            Value::Coll(Collection::list(vec![
                Tuple::new(vec![Value::str("Suciu")]),
                Tuple::new(vec![Value::str("Buneman")]),
            ])),
        ]);
        let r = tuple_intersect(&ts, &t, &bs, &b).unwrap();
        let coll = r.get(1).as_coll().unwrap();
        assert_eq!(coll.len(), 1);
        assert_eq!(coll.tuples[0].get(0).as_str(), Some("Suciu"));
        // binding with no overlap fails
        let b2 = Tuple::new(vec![
            Value::Int(2),
            Value::Coll(Collection::list(vec![Tuple::new(vec![Value::str(
                "Buneman",
            )])])),
        ]);
        assert!(tuple_intersect(&ts, &t, &bs, &b2).is_none());
    }

    #[test]
    fn restricted_semantics_example_2_2_2() {
        // Figure 2.9 / Example 2.2.2: bindings for (book, "Data on the
        // Web") and (book, "The Syntactic Web") return both books; a
        // binding for an article returns nothing.
        let doc = bib_sample();
        let xam = chi4();
        let bschema = binding_schema(&xam);
        let mk = |tag: &str, title: &str| {
            Tuple::new(vec![
                Value::str(tag),
                Value::Coll(Collection::list(vec![Tuple::new(vec![Value::str(title)])])),
            ])
        };
        let bindings = Relation::new(
            bschema.clone(),
            vec![
                mk("book", "Data on the Web"),
                mk("book", "The Syntactic Web"),
            ],
        );
        let r = restricted_evaluate(&xam, &doc, &bindings).unwrap();
        assert_eq!(r.len(), 2);
        // an article binding misses
        let none = Relation::new(bschema, vec![mk("article", "Data on the Web")]);
        let r = restricted_evaluate(&xam, &doc, &none).unwrap();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn required_columns_listing() {
        let xam = chi4();
        let req = required_columns(&xam);
        let paths: Vec<&str> = req.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(paths, vec!["e1_Tag", "e3.e3_Val"]);
    }
}
