//! # uload-server — the multi-client serving layer
//!
//! A thread-per-connection front-end over the
//! [`Uload`](rewriting::Uload) engine, turning the embedded query
//! pipeline into a long-lived service:
//!
//! * **Sessions** — one OS thread per TCP or Unix-socket connection,
//!   speaking the newline-delimited [`protocol`];
//! * **Prepared plans** — `PREPARE` plans once and registers the result
//!   under its [plan fingerprint](rewriting::plan_fingerprint); `EXEC`
//!   replays it without re-parsing, re-rewriting or re-planning;
//! * **Versioned result cache** — completed results are memoized under
//!   `(fingerprint, `[`DocumentVersion`](storage::DocumentVersion)`)`;
//!   swapping the served document mints a new version and implicitly
//!   invalidates every stale entry ([`cache`]);
//! * **Admission control** — concurrent uncached executions share a
//!   resident-tuple budget ([`admission`]); each admitted request is
//!   additionally killed if its own `Residency` gauge crosses the
//!   per-query ceiling, so total materialized state stays bounded no
//!   matter how many clients connect;
//! * **Cancellation** — `CANCEL` mid-stream (or a client disconnect)
//!   closes the engine's cursor tree via `QueryResults::close`,
//!   releasing resident state and the admission permit immediately;
//! * **Observability** — `STATS` returns a per-session
//!   [`SessionProfile`](obs::SessionProfile) with result-cache and
//!   `CanonicalCache` hit rates plus absorbed kernel counters;
//!   `METRICS` returns the server-wide [`metrics`] snapshot (latency
//!   histograms with p50/p90/p99/p999, admission-wait and queue-depth
//!   telemetry, cache and `StatsStore` rollups), `SLOWLOG` drains the
//!   structured [`slowlog`] ring of threshold-crossing requests, and
//!   `ULOAD_LOG=uload::server=debug` traces the serving path.
//!
//! ```no_run
//! use uload_server::{Client, Server, ServerConfig};
//! use rewriting::Uload;
//! use storage::DocumentHandle;
//!
//! let doc = Uload::parse_document("<lib><book/></lib>")?;
//! let engine = Uload::builder().document(&doc).build()?;
//! let handle = DocumentHandle::new(doc);
//! let server = Server::start(ServerConfig::default(), engine, handle)?;
//!
//! let mut client = Client::connect(server.addr())?;
//! let fp = client.prepare("for $b in //book return $b")?;
//! let first = client.exec(fp)?; // cold: plans ran
//! let warm = client.exec(fp)?; // warm: served from the result cache
//! assert!(warm.cached && first.rows == warm.rows);
//! server.shutdown();
//! server.wait();
//! # Ok::<(), uload_error::Error>(())
//! ```

pub mod admission;
pub mod cache;
pub mod client;
pub mod conn;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod slowlog;

pub use admission::{Admission, AdmissionError, Permit};
pub use cache::ResultCache;
pub use client::{Client, ExecReply, RowEvent};
pub use conn::BindAddr;
pub use metrics::ServerMetrics;
pub use server::{PreparedSlot, Server, ServerConfig, ServerHandle, ServerState};
pub use slowlog::{SlowDisposition, SlowLog, SlowQueryEntry};
