//! The structured slow-query log.
//!
//! A bounded ring buffer of [`SlowQueryEntry`]s: any request whose
//! end-to-end latency crosses the configured threshold is captured with
//! its plan fingerprint, query text, latency, cache disposition and —
//! when the server re-profiles slow uncached executions — the full
//! `EXPLAIN ANALYZE` [`QueryProfile`]. Clients drain it with the
//! `SLOWLOG` protocol command; the oldest entries are dropped (and
//! counted) once the ring is full, so a storm of slow queries costs
//! bounded memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use obs::{Json, QueryProfile};
use parking_lot::Mutex;

/// How a captured request ended (mirrors the protocol terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowDisposition {
    /// Completed; `cached` on the entry says from which path.
    Done,
    /// Aborted mid-stream by `CANCEL` or disconnect.
    Cancelled,
    /// Killed for exceeding its per-query residency budget.
    BudgetAbort,
    /// Failed with an `ERR` (including admission timeouts).
    Failed,
    /// Not a request at all: the feedback loop re-planned this
    /// fingerprint (the entry's latency is the re-planning time and
    /// its rows are 0). Recorded regardless of the latency threshold
    /// so plan swaps are always auditable.
    Replanned,
}

impl SlowDisposition {
    /// The wire label (`"done"`, `"cancelled"`, `"budget_abort"`,
    /// `"failed"`, `"replan"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SlowDisposition::Done => "done",
            SlowDisposition::Cancelled => "cancelled",
            SlowDisposition::BudgetAbort => "budget_abort",
            SlowDisposition::Failed => "failed",
            SlowDisposition::Replanned => "replan",
        }
    }
}

/// One captured slow request.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Session that ran it.
    pub session_id: u64,
    /// Plan fingerprint (the prepared-plan registry / result-cache key).
    pub fingerprint: u64,
    /// The query text behind the fingerprint.
    pub query: String,
    /// End-to-end latency as the session measured it.
    pub latency_ns: u64,
    /// Was this a result-cache hit?
    pub cached: bool,
    /// Rows streamed before the request ended.
    pub rows: u64,
    /// How the request ended.
    pub disposition: SlowDisposition,
    /// `EXPLAIN ANALYZE` of a follow-up profiled run of the same plan
    /// over the same document version (captured only for completed
    /// uncached executions, and only when profiling capture is on).
    pub profile: Option<QueryProfile>,
}

impl SlowQueryEntry {
    /// One `SLOWLOG` array element.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("session_id", Json::Num(self.session_id as f64)),
            ("fp", Json::Str(format!("{:016x}", self.fingerprint))),
            ("query", Json::Str(self.query.clone())),
            ("latency_ns", Json::Num(self.latency_ns as f64)),
            ("cached", Json::Bool(self.cached)),
            ("rows", Json::Num(self.rows as f64)),
            (
                "disposition",
                Json::Str(self.disposition.as_str().to_string()),
            ),
            (
                "profile",
                match &self.profile {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The ring buffer itself. `record` is called only for requests that
/// already crossed the threshold, so the mutex is far off the fast
/// path; `drain` hands the captured entries to the client and clears.
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl SlowLog {
    /// A log capturing requests slower than `threshold`, keeping the
    /// most recent `capacity` of them (`capacity == 0` disables
    /// capture).
    pub fn new(threshold: Duration, capacity: usize) -> SlowLog {
        SlowLog {
            threshold,
            capacity,
            entries: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The capture threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Ring capacity (0 = capture disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is a request of `latency` worth capturing?
    pub fn qualifies(&self, latency: Duration) -> bool {
        self.capacity > 0 && latency >= self.threshold
    }

    /// Push one entry, evicting the oldest if the ring is full.
    pub fn record(&self, entry: SlowQueryEntry) {
        if self.capacity == 0 {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.entries.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// Take every captured entry (oldest first), leaving the log empty.
    pub fn drain(&self) -> Vec<SlowQueryEntry> {
        self.entries.lock().drain(..).collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries ever captured (drained ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Entries evicted by ring overflow (never drained).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The `"slowlog"` object of the `METRICS` schema.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("threshold_ns", Json::Num(self.threshold.as_nanos() as f64)),
            ("capacity", Json::Num(self.capacity as f64)),
            ("len", Json::Num(self.len() as f64)),
            ("recorded", Json::Num(self.recorded() as f64)),
            ("dropped", Json::Num(self.dropped() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64, latency_ns: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            session_id: 1,
            fingerprint: fp,
            query: "//a".into(),
            latency_ns,
            cached: false,
            rows: 2,
            disposition: SlowDisposition::Done,
            profile: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_drains_in_order() {
        let log = SlowLog::new(Duration::from_millis(10), 2);
        assert!(log.qualifies(Duration::from_millis(10)));
        assert!(!log.qualifies(Duration::from_millis(9)));
        log.record(entry(1, 100));
        log.record(entry(2, 200));
        log.record(entry(3, 300)); // evicts fp=1
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
        let drained = log.drain();
        assert_eq!(
            drained.iter().map(|e| e.fingerprint).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 3, "drain does not reset the counter");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let log = SlowLog::new(Duration::ZERO, 0);
        assert!(!log.qualifies(Duration::from_secs(1)));
        log.record(entry(1, 100));
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 0);
    }

    #[test]
    fn entries_serialize_with_fingerprint_and_disposition() {
        let json = entry(0xabc, 42).to_json().to_string_compact();
        assert!(json.contains("\"fp\":\"0000000000000abc\""), "{json}");
        assert!(json.contains("\"disposition\":\"done\""), "{json}");
        assert!(json.contains("\"profile\":null"), "{json}");
    }
}
