//! Admission control: a counting budget of resident tuples.
//!
//! The pipelined executor already meters every query's materialized
//! state through its `Residency` gauge (build sides, breaker buffers,
//! in-flight batches), and the server enforces a per-query ceiling on
//! that gauge while streaming. What the gauge cannot do alone is bound
//! the *sum* across concurrent sessions — that is this module's job.
//! Every executing request must first [`acquire`](Admission::acquire) a
//! [`Permit`] worth `per_query` budget units (tuples); acquisition
//! blocks while `in_use + per_query` would exceed the configured total,
//! so at any instant
//!
//! ```text
//! Σ (admitted requests) × per_query  ≤  total
//! ```
//!
//! and since each admitted request is individually killed the moment
//! its `Residency` gauge crosses `per_query`, the server's total
//! resident tuples are bounded by `total` (plus at most one batch of
//! slack per request between gauge checks). Permits release on `Drop`,
//! so a session that dies mid-stream — client disconnect, panic, abort —
//! can never leak budget.
//!
//! Cache hits bypass admission entirely: serving memoized rows
//! materializes nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The admission queue stayed full past the configured timeout.
    Timeout,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Timeout => write!(f, "admission queue full past the timeout"),
        }
    }
}

#[derive(Debug, Default)]
struct Gauge {
    in_use: u64,
    peak: u64,
}

/// The shared budget semaphore. See the [module docs](self).
#[derive(Debug)]
pub struct Admission {
    total: u64,
    per_query: u64,
    timeout: Duration,
    gauge: Mutex<Gauge>,
    freed: Condvar,
    admitted: AtomicU64,
    timeouts: AtomicU64,
}

impl Admission {
    /// `total` and `per_query` are in budget units (tuples); callers
    /// validate `0 < per_query ≤ total` up front (`ServerConfig` does).
    pub fn new(total: u64, per_query: u64, timeout: Duration) -> Admission {
        Admission {
            total,
            per_query,
            timeout,
            gauge: Mutex::new(Gauge::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// Block until `per_query` units fit under the total budget, or the
    /// timeout elapses. The returned [`Permit`] holds the units until
    /// dropped.
    pub fn acquire(&self) -> Result<Permit<'_>, AdmissionError> {
        let deadline = std::time::Instant::now() + self.timeout;
        let mut g = self.gauge.lock().unwrap_or_else(|e| e.into_inner());
        while g.in_use + self.per_query > self.total {
            let now = std::time::Instant::now();
            if now >= deadline {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::Timeout);
            }
            let (guard, _) = self
                .freed
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
        g.in_use += self.per_query;
        if g.in_use > g.peak {
            g.peak = g.in_use;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit { ctl: self })
    }

    /// Budget units currently admitted.
    pub fn in_use(&self) -> u64 {
        self.gauge.lock().unwrap_or_else(|e| e.into_inner()).in_use
    }

    /// High-water mark of admitted budget units (never exceeds
    /// [`Admission::total`] by construction).
    pub fn peak(&self) -> u64 {
        self.gauge.lock().unwrap_or_else(|e| e.into_inner()).peak
    }

    /// The configured total budget.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-request budget a [`Permit`] stands for — also the
    /// ceiling enforced on each request's `Residency` gauge.
    pub fn per_query(&self) -> u64 {
        self.per_query
    }

    /// Requests admitted so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests turned away on timeout so far.
    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// RAII admission grant: `per_query` budget units, returned on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    ctl: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut g = self.ctl.gauge.lock().unwrap_or_else(|e| e.into_inner());
        g.in_use = g.in_use.saturating_sub(self.ctl.per_query);
        drop(g);
        self.ctl.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_fit_under_the_total_and_release_on_drop() {
        let a = Admission::new(100, 40, Duration::from_millis(10));
        let p1 = a.acquire().unwrap();
        let p2 = a.acquire().unwrap();
        assert_eq!(a.in_use(), 80);
        // a third permit (120 > 100) must time out while both are held
        assert_eq!(a.acquire().unwrap_err(), AdmissionError::Timeout);
        assert_eq!(a.timeouts_total(), 1);
        drop(p1);
        let p3 = a.acquire().unwrap();
        assert_eq!(a.in_use(), 80);
        drop(p2);
        drop(p3);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.peak(), 80);
        assert_eq!(a.admitted_total(), 3);
    }

    #[test]
    fn oversubscribed_waiters_are_admitted_as_budget_frees() {
        // 8 threads compete for 2 slots; every acquisition must succeed
        // (generous timeout) and the peak must never exceed the total
        let a = Arc::new(Admission::new(2, 1, Duration::from_secs(30)));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let p = a.acquire().expect("must admit eventually");
                        assert!(a.in_use() <= a.total());
                        drop(p);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.in_use(), 0);
        assert!(a.peak() <= a.total());
        assert_eq!(a.admitted_total(), 160);
    }
}
