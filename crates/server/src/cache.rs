//! The versioned result cache.
//!
//! Serialized query outputs memoized under `(plan fingerprint,
//! document version)`. The fingerprint half
//! ([`rewriting::plan_fingerprint`]) makes textually different but
//! plan-equivalent queries share one entry — the `CanonicalCache`
//! already makes rewriting converge on the same plan for equivalent
//! patterns, so this cache inherits that normalization for free. The
//! version half ([`storage::DocumentVersion`]) makes invalidation
//! implicit: swapping the served document mints a fresh version, new
//! requests key under it, and stale entries age out by LRU without any
//! eviction pass.
//!
//! Entries are `Arc`-shared so a hit hands rows to the session without
//! copying; oversized results (more rows than `max_rows`) are served
//! but never cached, bounding the cache's own footprint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obs::ResultCacheCounters;
use parking_lot::Mutex;
use storage::DocumentVersion;

/// Cache key: `(plan fingerprint, document version)`.
pub type ResultKey = (u64, DocumentVersion);

struct Entry {
    rows: Arc<Vec<String>>,
    tick: u64,
}

/// A bounded, LRU-evicting map of memoized result rows. Capacity `0`
/// disables the cache (every lookup misses, nothing is stored).
pub struct ResultCache {
    inner: Mutex<HashMap<ResultKey, Entry>>,
    capacity: usize,
    max_rows: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// `capacity` in entries, `max_rows` the largest result worth
    /// caching (larger ones are served uncached).
    pub fn new(capacity: usize, max_rows: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(HashMap::new()),
            capacity,
            max_rows,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look a key up, bumping its recency. Counts a hit or miss.
    pub fn get(&self, key: ResultKey) -> Option<Arc<Vec<String>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.inner.lock();
        match map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.rows))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize a freshly computed result (no hit/miss accounting —
    /// the preceding [`ResultCache::get`] already counted the miss).
    /// Oversized results and capacity-0 caches are no-ops.
    pub fn insert(&self, key: ResultKey, rows: Arc<Vec<String>>) {
        if self.capacity == 0 || rows.len() > self.max_rows {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.inner.lock();
        if !map.contains_key(&key) && map.len() >= self.capacity {
            if let Some(victim) = map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k) {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, Entry { rows, tick });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop one entry eagerly (no hit/miss accounting), returning
    /// whether it was resident. Version bumps invalidate implicitly;
    /// this explicit path exists for feedback-driven re-plans, which
    /// change the *fingerprint* half of the key while the document
    /// version stays put — the old entry would otherwise keep serving
    /// a plan the server no longer executes.
    pub fn invalidate(&self, key: ResultKey) -> bool {
        let removed = self.inner.lock().remove(&key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Entries currently resident.
    pub fn entries(&self) -> usize {
        self.inner.lock().len()
    }

    /// Cache-global effectiveness counters.
    pub fn counters(&self) -> ResultCacheCounters {
        ResultCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::DocumentHandle;

    fn rows(v: &[&str]) -> Arc<Vec<String>> {
        Arc::new(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn version_bump_invalidates_without_eviction() {
        let doc = || xmltree::parse_document("<a/>").unwrap();
        let h1 = DocumentHandle::new(doc());
        let c = ResultCache::new(8, 1024);
        c.insert((42, h1.version()), rows(&["<r/>"]));
        assert!(c.get((42, h1.version())).is_some());
        // replacing the document mints a new version: same fingerprint,
        // different key → miss, old entry left to age out
        let h2 = h1.reload(doc());
        assert!(c.get((42, h2.version())).is_none());
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_and_oversized_results_stay_out() {
        let h = DocumentHandle::new(xmltree::parse_document("<a/>").unwrap());
        let v = h.version();
        let c = ResultCache::new(2, 2);
        c.insert((1, v), rows(&["a"]));
        c.insert((2, v), rows(&["b"]));
        assert!(c.get((1, v)).is_some()); // bump 1's recency
        c.insert((3, v), rows(&["c"])); // evicts 2 (LRU)
        assert!(c.get((2, v)).is_none());
        assert!(c.get((1, v)).is_some() && c.get((3, v)).is_some());
        assert_eq!(c.counters().evictions, 1);
        // three rows > max_rows=2: served but not cached
        c.insert((4, v), rows(&["x", "y", "z"]));
        assert!(c.get((4, v)).is_none());
        // capacity 0 disables the cache entirely
        let off = ResultCache::new(0, 1024);
        off.insert((1, v), rows(&["a"]));
        assert!(off.get((1, v)).is_none());
        assert_eq!(off.counters().entries, 0);
    }
}
