//! Transport abstraction: one byte-stream trait over TCP and Unix
//! sockets, so the session loop, the client and the tests are written
//! once against [`Conn`] and bind to either family via [`BindAddr`].

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// `host:port`; port `0` asks the OS for a free port (the bound
    /// address is reported back by [`Listener::local_addr`]).
    Tcp(String),
    /// Filesystem path of a Unix-domain socket. A stale socket file
    /// left by a dead process is removed before binding.
    Unix(PathBuf),
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Tcp(a) => write!(f, "tcp://{a}"),
            BindAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// A duplex byte stream with the timeout controls the session loop
/// needs. Implemented for [`TcpStream`] and [`UnixStream`].
pub trait Conn: Read + Write + Send {
    /// Bound read timeout (used by the idle loop to poll shutdown).
    fn set_read_timeout_d(&self, d: Option<Duration>) -> std::io::Result<()>;
    /// Toggle non-blocking mode (used to poll for `CANCEL` mid-stream).
    fn set_nonblocking_d(&self, nb: bool) -> std::io::Result<()>;
    /// An independently-owned handle onto the same socket.
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Conn>>;
    /// Shut both directions down (unblocks a peer mid-read).
    fn shutdown_both(&self) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout_d(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
    fn set_nonblocking_d(&self, nb: bool) -> std::io::Result<()> {
        self.set_nonblocking(nb)
    }
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn shutdown_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl Conn for UnixStream {
    fn set_read_timeout_d(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
    fn set_nonblocking_d(&self, nb: bool) -> std::io::Result<()> {
        self.set_nonblocking(nb)
    }
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn shutdown_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

/// A bound listening socket of either family.
pub enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind to `addr` (removing a stale Unix socket file first).
    pub fn bind(addr: &BindAddr) -> std::io::Result<Listener> {
        match addr {
            BindAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
            BindAddr::Unix(p) => {
                if p.exists() {
                    let _ = std::fs::remove_file(p);
                }
                Ok(Listener::Unix(UnixListener::bind(p)?, p.clone()))
            }
        }
    }

    /// The actually-bound address (resolves a requested port `0`).
    pub fn local_addr(&self) -> std::io::Result<BindAddr> {
        match self {
            Listener::Tcp(l) => Ok(BindAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, p) => Ok(BindAddr::Unix(p.clone())),
        }
    }

    /// Accept the next connection (blocking, honoring any non-blocking
    /// flag the accept loop set via the raw listener).
    pub fn accept(&self) -> std::io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // request/response over small frames: Nagle would stall
                // the DONE write behind the last unacked ROW batch
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }

    /// Put the listener in non-blocking mode so the accept loop can
    /// poll the shutdown flag between `WouldBlock`s.
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Connect a client stream to `addr`.
pub fn connect(addr: &BindAddr) -> std::io::Result<Box<dyn Conn>> {
    match addr {
        BindAddr::Tcp(a) => {
            let s = TcpStream::connect(a.as_str())?;
            // see Listener::accept: the line protocol is latency-bound
            s.set_nodelay(true)?;
            Ok(Box::new(s))
        }
        BindAddr::Unix(p) => Ok(Box::new(UnixStream::connect(p)?)),
    }
}

/// `true` for the error kinds a timed-out / non-blocking read yields
/// (Linux reports `WouldBlock`; other unixes may report `TimedOut`).
pub fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn echo_roundtrip(addr: BindAddr) {
        let l = Listener::bind(&addr).unwrap();
        let bound = l.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut c = l.accept().unwrap();
            let mut r = BufReader::new(c.try_clone_box().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            c.write_all(line.to_uppercase().as_bytes()).unwrap();
        });
        let mut c = connect(&bound).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut r = BufReader::new(c.try_clone_box().unwrap());
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        assert_eq!(reply, "PING\n");
        t.join().unwrap();
    }

    #[test]
    fn tcp_and_unix_echo() {
        echo_roundtrip(BindAddr::Tcp("127.0.0.1:0".into()));
        let path =
            std::env::temp_dir().join(format!("uload-conn-test-{}.sock", std::process::id()));
        echo_roundtrip(BindAddr::Unix(path));
    }
}
