//! A minimal synchronous client for the [line protocol](crate::protocol).
//!
//! Used by the `uload client` CLI, the concurrent bench driver and the
//! integration tests. Two consumption styles:
//!
//! * whole-result: [`Client::query`] / [`Client::exec`] drain the row
//!   stream into an [`ExecReply`];
//! * streaming: [`Client::start_exec`] then [`Client::next_event`] row
//!   by row, with [`Client::cancel`] usable mid-stream — the handshake
//!   behind graceful per-request cancellation.

use std::io::{BufRead, BufReader, Write};

use uload_error::{Error, Result};

use crate::conn::{connect, BindAddr, Conn};
use crate::protocol::unescape;

/// A drained query result.
#[derive(Debug, Clone)]
pub struct ExecReply {
    /// Serialized result rows, in stream order.
    pub rows: Vec<String>,
    /// Whether the server answered from its result cache.
    pub cached: bool,
    /// Fingerprint of the plan that produced the rows.
    pub fingerprint: u64,
    /// Version of the document snapshot the rows came from.
    pub version: u64,
    /// Server-side wall time for the request, nanoseconds.
    pub ns: u64,
}

/// One protocol event while streaming a result.
#[derive(Debug, Clone)]
pub enum RowEvent {
    /// The next result row.
    Row(String),
    /// Normal end of stream.
    Done {
        rows: u64,
        cached: bool,
        fingerprint: u64,
        version: u64,
        ns: u64,
    },
    /// The server honored a `CANCEL` after delivering `rows` rows.
    Cancelled { rows: u64 },
}

/// A connected session.
pub struct Client {
    conn: Box<dyn Conn>,
    reader: BufReader<Box<dyn Conn>>,
}

impl Client {
    /// Connect to a serving [`BindAddr`] (TCP or Unix).
    pub fn connect(addr: &BindAddr) -> Result<Client> {
        let conn = connect(addr)?;
        let reader = BufReader::new(conn.try_clone_box()?);
        Ok(Client { conn, reader })
    }

    fn send_line(&mut self, line: &str) -> Result<()> {
        self.conn.write_all(line.as_bytes())?;
        self.conn.write_all(b"\n")?;
        self.conn.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(Error::Io("server closed the connection".into()));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Plan `query` on the server; returns the plan fingerprint to
    /// [`Client::exec`] under.
    pub fn prepare(&mut self, query: &str) -> Result<u64> {
        self.send_line(&format!("PREPARE {}", crate::protocol::escape(query)))?;
        let line = self.read_line()?;
        match line.split_once(' ') {
            Some(("PREPARED", rest)) => parse_hex_field(rest.trim(), "fp"),
            _ => Err(server_err(&line)),
        }
    }

    /// Run a prepared plan and drain the whole result.
    pub fn exec(&mut self, fp: u64) -> Result<ExecReply> {
        self.start_exec(fp)?;
        self.drain()
    }

    /// One-shot prepare + execute + drain.
    pub fn query(&mut self, query: &str) -> Result<ExecReply> {
        self.send_line(&format!("QUERY {}", crate::protocol::escape(query)))?;
        self.drain()
    }

    /// Send `EXEC` without draining — follow with [`Client::next_event`]
    /// (and optionally [`Client::cancel`]).
    pub fn start_exec(&mut self, fp: u64) -> Result<()> {
        self.send_line(&format!("EXEC {fp:016x}"))
    }

    /// Ask the server to abort the in-flight stream. Keep calling
    /// [`Client::next_event`]: rows already in flight still arrive,
    /// then a [`RowEvent::Cancelled`] terminator.
    pub fn cancel(&mut self) -> Result<()> {
        self.send_line("CANCEL")
    }

    /// Next event of an in-flight stream.
    pub fn next_event(&mut self) -> Result<RowEvent> {
        let line = self.read_line()?;
        let (verb, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        match verb {
            "ROW" => Ok(RowEvent::Row(unescape(rest))),
            "DONE" => Ok(RowEvent::Done {
                rows: parse_dec_field(rest, "rows")?,
                cached: field(rest, "cached")? == "true",
                fingerprint: parse_hex_field(rest, "fp")?,
                version: field(rest, "version")?
                    .trim_start_matches('v')
                    .parse()
                    .map_err(|_| Error::Parse(format!("bad version in {rest:?}")))?,
                ns: parse_dec_field(rest, "ns")?,
            }),
            "CANCELLED" => Ok(RowEvent::Cancelled {
                rows: parse_dec_field(rest, "rows")?,
            }),
            _ => Err(server_err(&line)),
        }
    }

    fn drain(&mut self) -> Result<ExecReply> {
        let mut rows = Vec::new();
        loop {
            match self.next_event()? {
                RowEvent::Row(xml) => rows.push(xml),
                RowEvent::Done {
                    cached,
                    fingerprint,
                    version,
                    ns,
                    ..
                } => {
                    return Ok(ExecReply {
                        rows,
                        cached,
                        fingerprint,
                        version,
                        ns,
                    })
                }
                RowEvent::Cancelled { .. } => {
                    return Err(Error::Eval("stream cancelled server-side".into()))
                }
            }
        }
    }

    /// Plan `query` server-side without executing it, returning the
    /// engine's typed explain — arm choice with its cost and the
    /// rejected alternative's, plus the per-node estimate tree with
    /// feedback provenance — as compact JSON text, evaluated under the
    /// currently served document version's feedback.
    pub fn explain_json(&mut self, query: &str) -> Result<String> {
        self.send_line(&format!("EXPLAIN {}", crate::protocol::escape(query)))?;
        let line = self.read_line()?;
        match line.split_once(' ') {
            Some(("EXPLAIN", json)) => Ok(json.to_string()),
            _ => Err(server_err(&line)),
        }
    }

    /// This session's [`obs::SessionProfile`] as compact JSON text.
    pub fn stats_json(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        let line = self.read_line()?;
        match line.split_once(' ') {
            Some(("STATS", json)) => Ok(json.to_string()),
            _ => Err(server_err(&line)),
        }
    }

    /// The server-wide `METRICS` snapshot as compact JSON text
    /// (latency histograms, counters/gauges, cache and `StatsStore`
    /// rollups — the shape of `schemas/metrics.schema.json`).
    pub fn metrics_json(&mut self) -> Result<String> {
        self.send_line("METRICS")?;
        let line = self.read_line()?;
        match line.split_once(' ') {
            Some(("METRICS", json)) => Ok(json.to_string()),
            _ => Err(server_err(&line)),
        }
    }

    /// Drain the server's slow-query log as a compact JSON array (each
    /// captured entry is delivered to exactly one caller).
    pub fn slowlog_json(&mut self) -> Result<String> {
        self.send_line("SLOWLOG")?;
        let line = self.read_line()?;
        match line.split_once(' ') {
            Some(("SLOWLOG", json)) => Ok(json.to_string()),
            _ => Err(server_err(&line)),
        }
    }

    /// Stop the whole server (it answers `BYE` and begins shutdown).
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send_line("SHUTDOWN")?;
        let line = self.read_line()?;
        if line == "BYE" {
            Ok(())
        } else {
            Err(server_err(&line))
        }
    }

    /// End this session politely.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        let line = self.read_line()?;
        if line == "BYE" {
            Ok(())
        } else {
            Err(server_err(&line))
        }
    }
}

/// Map an unexpected/`ERR` response line onto the engine error type.
fn server_err(line: &str) -> Error {
    match line.split_once(' ') {
        Some(("ERR", msg)) => Error::Eval(format!("server: {}", unescape(msg))),
        _ => Error::Parse(format!("unexpected server response {line:?}")),
    }
}

fn field<'a>(rest: &'a str, key: &str) -> Result<&'a str> {
    rest.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
        .ok_or_else(|| Error::Parse(format!("missing field {key} in {rest:?}")))
}

fn parse_dec_field(rest: &str, key: &str) -> Result<u64> {
    field(rest, key)?
        .parse()
        .map_err(|_| Error::Parse(format!("bad {key} in {rest:?}")))
}

fn parse_hex_field(rest: &str, key: &str) -> Result<u64> {
    u64::from_str_radix(field(rest, key)?, 16)
        .map_err(|_| Error::Parse(format!("bad {key} in {rest:?}")))
}
