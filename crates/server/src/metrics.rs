//! The server's global metrics: one [`MetricsRegistry`] per server,
//! with every handle resolved once at startup so the request path only
//! touches lock-free atomics.
//!
//! Naming convention: `server.*` for request-path counters and
//! latency histograms, `cache.*` for result-cache traffic, `exec.*`
//! for kernel counters absorbed from metered executions. The whole
//! registry is serialized by the `METRICS` command (see
//! `schemas/metrics.schema.json`).

use std::sync::Arc;
use std::time::Duration;

use obs::{Counter, ExecMetrics, Gauge, Histogram, MetricsRegistry, RegistrySnapshot};

/// Pre-resolved handles into the server's [`MetricsRegistry`].
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,

    /// `PREPARE` planning latency.
    pub prepare_ns: Arc<Histogram>,
    /// End-to-end latency of uncached `EXEC`/`QUERY` requests.
    pub exec_uncached_ns: Arc<Histogram>,
    /// End-to-end latency of result-cache hits.
    pub exec_cached_ns: Arc<Histogram>,
    /// Time spent waiting in the admission queue.
    pub admission_wait_ns: Arc<Histogram>,

    /// Requests handled (`EXEC` + `QUERY`, every disposition).
    pub requests: Arc<Counter>,
    /// `PREPARE` commands handled.
    pub prepares: Arc<Counter>,
    /// Result rows streamed to clients.
    pub rows_streamed: Arc<Counter>,
    /// Requests that ended in `ERR` (budget aborts and admission
    /// timeouts included).
    pub errors: Arc<Counter>,
    /// Requests cancelled mid-stream.
    pub cancelled: Arc<Counter>,
    /// Requests killed by the per-query residency budget.
    pub budget_aborts: Arc<Counter>,
    /// Requests rejected because admission timed out.
    pub admission_timeouts: Arc<Counter>,
    /// Requests that crossed the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// Result-cache hits / misses (server-wide).
    pub result_cache_hits: Arc<Counter>,
    pub result_cache_misses: Arc<Counter>,

    /// Feedback-driven re-plans triggered by the mispredict threshold.
    pub replan_triggered: Arc<Counter>,
    /// Re-plans whose new plan was swapped into the prepared registry.
    pub replan_swapped: Arc<Counter>,
    /// Stale result-cache entries invalidated by a re-plan.
    pub replan_cache_invalidated: Arc<Counter>,

    /// Requests currently waiting in (or holding) the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// High-water mark of any single request's resident tuples.
    pub residency_high_water: Arc<Gauge>,

    /// Kernel counters absorbed from metered executions.
    pub exec_comparisons: Arc<Counter>,
    pub exec_elements_skipped: Arc<Counter>,
    pub exec_blocks_pruned: Arc<Counter>,
    pub exec_batches_scanned: Arc<Counter>,
    pub exec_vector_compares: Arc<Counter>,
    pub exec_partitions_opened: Arc<Counter>,
    pub exec_partitions_total: Arc<Counter>,
    pub exec_twig_fallbacks: Arc<Counter>,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        ServerMetrics {
            prepare_ns: registry.histogram("server.prepare_ns"),
            exec_uncached_ns: registry.histogram("server.exec_uncached_ns"),
            exec_cached_ns: registry.histogram("server.exec_cached_ns"),
            admission_wait_ns: registry.histogram("server.admission_wait_ns"),
            requests: registry.counter("server.requests_total"),
            prepares: registry.counter("server.prepares_total"),
            rows_streamed: registry.counter("server.rows_streamed_total"),
            errors: registry.counter("server.errors_total"),
            cancelled: registry.counter("server.cancelled_total"),
            budget_aborts: registry.counter("server.budget_aborts_total"),
            admission_timeouts: registry.counter("server.admission_timeouts_total"),
            slow_queries: registry.counter("server.slow_queries_total"),
            result_cache_hits: registry.counter("cache.result_hits_total"),
            result_cache_misses: registry.counter("cache.result_misses_total"),
            replan_triggered: registry.counter("replan.triggered_total"),
            replan_swapped: registry.counter("replan.swapped_total"),
            replan_cache_invalidated: registry.counter("replan.cache_invalidated_total"),
            queue_depth: registry.gauge("server.admission_queue_depth"),
            residency_high_water: registry.gauge("server.residency_high_water"),
            exec_comparisons: registry.counter("exec.comparisons_total"),
            exec_elements_skipped: registry.counter("exec.elements_skipped_total"),
            exec_blocks_pruned: registry.counter("exec.blocks_pruned_total"),
            exec_batches_scanned: registry.counter("exec.batches_scanned_total"),
            exec_vector_compares: registry.counter("exec.vector_compares_total"),
            exec_partitions_opened: registry.counter("exec.partitions_opened_total"),
            exec_partitions_total: registry.counter("exec.partitions_total"),
            exec_twig_fallbacks: registry.counter("exec.twig_fallbacks_total"),
            registry,
        }
    }

    /// The registry behind the handles (snapshot it for `METRICS`).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Record one uncached execution's latency.
    pub fn record_uncached(&self, latency: Duration) {
        self.exec_uncached_ns.record_duration(latency);
    }

    /// Record one result-cache hit's latency.
    pub fn record_cached(&self, latency: Duration) {
        self.exec_cached_ns.record_duration(latency);
    }

    /// Fold one metered execution's kernel counters into the `exec.*`
    /// totals.
    pub fn absorb_exec(&self, m: &ExecMetrics) {
        self.exec_comparisons.add(m.comparisons);
        self.exec_elements_skipped.add(m.elements_skipped);
        self.exec_blocks_pruned.add(m.blocks_pruned);
        self.exec_batches_scanned.add(m.batches_scanned);
        self.exec_vector_compares.add(m.vector_compares);
        self.exec_partitions_opened.add(m.partitions_opened);
        self.exec_partitions_total.add(m.partitions_total);
        self.exec_twig_fallbacks.add(m.twig_fallbacks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_and_registry_agree() {
        let m = ServerMetrics::new();
        m.requests.inc();
        m.record_uncached(Duration::from_micros(5));
        m.record_cached(Duration::from_nanos(300));
        m.queue_depth.inc();
        let exec = ExecMetrics {
            comparisons: 7,
            batches_scanned: 3,
            ..Default::default()
        };
        m.absorb_exec(&exec);
        let snap = m.snapshot();
        assert_eq!(snap.counter("server.requests_total"), Some(1));
        assert_eq!(snap.counter("exec.comparisons_total"), Some(7));
        assert_eq!(snap.counter("exec.batches_scanned_total"), Some(3));
        assert_eq!(
            snap.histogram("server.exec_uncached_ns").unwrap().count(),
            1
        );
        assert_eq!(snap.histogram("server.exec_cached_ns").unwrap().count(), 1);
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "server.admission_queue_depth" && *v == 1));
    }
}
