//! The line protocol spoken between server and clients.
//!
//! Deliberately thin: newline-delimited UTF-8 frames over a TCP or Unix
//! stream, one request per line, a terminated sequence of response
//! lines per request. No framing library, no handshake — a session is
//! just a socket.
//!
//! Requests:
//!
//! | line                   | meaning                                         |
//! |------------------------|-------------------------------------------------|
//! | `PREPARE <query>`      | plan once, register under the plan fingerprint  |
//! | `EXEC <fp-hex>`        | run a prepared plan, stream rows                |
//! | `QUERY <query>`        | prepare + exec in one round trip                |
//! | `EXPLAIN <query>`      | plan (don't run): typed cost/feedback explain   |
//! | `STATS`                | this session's [`obs::SessionProfile`] as JSON  |
//! | `METRICS`              | server-wide registry snapshot as JSON           |
//! | `SLOWLOG`              | drain the slow-query log as a JSON array        |
//! | `CANCEL`               | abort the in-flight `EXEC`/`QUERY` mid-stream   |
//! | `SHUTDOWN`             | stop the whole server (then `BYE`)              |
//! | `QUIT`                 | end this session (then `BYE`)                   |
//!
//! Responses: `PREPARED fp=<hex>`, zero or more `ROW <escaped-xml>`,
//! then exactly one terminator — `DONE rows=<n> cached=<bool>
//! fp=<hex> version=<v> ns=<n>`, `CANCELLED rows=<n>`, or
//! `ERR <message>`. `STATS` answers `STATS <compact-json>` (the
//! per-session profile); `METRICS` answers `METRICS <compact-json>`
//! (the global view, validated against `schemas/metrics.schema.json`);
//! `SLOWLOG` answers `SLOWLOG <compact-json-array>` and *drains* the
//! log — each captured entry is delivered exactly once. `EXPLAIN`
//! answers `EXPLAIN <compact-json>` — the engine's typed
//! [`Explain`](rewriting::Explain) (arm choice, per-node estimates
//! with feedback provenance) under the currently served document
//! version, without executing anything. `QUIT` and `SHUTDOWN` answer
//! `BYE`.
//!
//! Row payloads and error messages are escaped so embedded newlines
//! cannot break framing ([`escape`]/[`unescape`]).

use storage::DocumentVersion;

/// Escape a payload for single-line transport: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Unknown escapes pass the escaped char through.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Prepare(String),
    Exec(u64),
    Query(String),
    Explain(String),
    Stats,
    Metrics,
    Slowlog,
    Cancel,
    Shutdown,
    Quit,
}

/// Parse one request line (already stripped of its trailing newline).
/// Returns `Err` with a human-readable message for malformed input.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line.trim(), ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "PREPARE" if !rest.is_empty() => Ok(Request::Prepare(unescape(rest))),
        "EXEC" if !rest.is_empty() => u64::from_str_radix(rest, 16)
            .map(Request::Exec)
            .map_err(|_| format!("EXEC expects a hex fingerprint, got {rest:?}")),
        "QUERY" if !rest.is_empty() => Ok(Request::Query(unescape(rest))),
        "EXPLAIN" if !rest.is_empty() => Ok(Request::Explain(unescape(rest))),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "SLOWLOG" => Ok(Request::Slowlog),
        "CANCEL" => Ok(Request::Cancel),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "QUIT" => Ok(Request::Quit),
        "" => Err("empty request".to_string()),
        v => Err(format!("unknown request verb {v:?}")),
    }
}

/// `PREPARED fp=<hex>`
pub fn prepared_line(fp: u64) -> String {
    format!("PREPARED fp={fp:016x}")
}

/// `ROW <escaped-payload>`
pub fn row_line(xml: &str) -> String {
    format!("ROW {}", escape(xml))
}

/// `DONE rows=<n> cached=<bool> fp=<hex> version=<v> ns=<n>`
pub fn done_line(rows: u64, cached: bool, fp: u64, version: DocumentVersion, ns: u64) -> String {
    format!("DONE rows={rows} cached={cached} fp={fp:016x} version={version} ns={ns}")
}

/// `CANCELLED rows=<n>` — rows already delivered before the abort.
pub fn cancelled_line(rows: u64) -> String {
    format!("CANCELLED rows={rows}")
}

/// `ERR <escaped-message>`
pub fn err_line(msg: &str) -> String {
    format!("ERR {}", escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_and_keeps_lines_single() {
        let nasty = "a\\b\nc\rd<e/>";
        let esc = escape(nasty);
        assert!(!esc.contains('\n') && !esc.contains('\r'));
        assert_eq!(unescape(&esc), nasty);
    }

    #[test]
    fn requests_parse_case_insensitively() {
        assert_eq!(
            parse_request("query for $b in //book return $b"),
            Ok(Request::Query("for $b in //book return $b".into()))
        );
        assert_eq!(
            parse_request("EXEC 00000000000000ff"),
            Ok(Request::Exec(255))
        );
        assert_eq!(
            parse_request("explain //book"),
            Ok(Request::Explain("//book".into()))
        );
        assert_eq!(parse_request("STATS\r\n"), Ok(Request::Stats));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(parse_request("Slowlog\r\n"), Ok(Request::Slowlog));
        assert_eq!(parse_request("cancel"), Ok(Request::Cancel));
        assert!(parse_request("EXEC zz").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB x").is_err());
    }

    #[test]
    fn terminators_carry_their_fields() {
        let h = storage::DocumentHandle::new(xmltree::parse_document("<a/>").unwrap());
        let d = done_line(3, true, 0xabc, h.version(), 42);
        assert!(d.contains("rows=3") && d.contains("cached=true"), "{d}");
        assert!(d.contains("fp=0000000000000abc"), "{d}");
        assert!(err_line("boom\nline2").starts_with("ERR boom\\n"));
        assert_eq!(cancelled_line(7), "CANCELLED rows=7");
    }
}
