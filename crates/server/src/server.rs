//! The server proper: config, shared state, accept loop, session loop.
//!
//! One OS thread per connection (the workspace carries no async
//! runtime, and the engine's pipelined executor is synchronous anyway);
//! a session is a plain request/response loop over the
//! [line protocol](crate::protocol). All cross-session state —
//! the engine, the served [`DocumentHandle`], the prepared-plan
//! registry, the [`ResultCache`] and the [`Admission`] budget — lives
//! in one [`ServerState`] shared by `Arc`.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{CacheCounters, ExecMetrics, Json, ResultCacheCounters, SessionProfile};
use parking_lot::{Mutex, RwLock};
use rewriting::{PreparedQuery, Uload};
use storage::{DocumentHandle, DocumentVersion};
use uload_error::{Error, Result};

use crate::admission::{Admission, AdmissionError};
use crate::cache::ResultCache;
use crate::conn::{is_poll_timeout, BindAddr, Conn, Listener};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    cancelled_line, done_line, err_line, parse_request, prepared_line, row_line, Request,
};
use crate::slowlog::{SlowDisposition, SlowLog, SlowQueryEntry};

/// Serving knobs. Builder-style like
/// [`EngineConfig`](rewriting::EngineConfig): start from `default()`,
/// chain `with_*` calls.
///
/// ```
/// use uload_server::{BindAddr, ServerConfig};
/// let cfg = ServerConfig::default()
///     .with_addr(BindAddr::Tcp("127.0.0.1:0".into()))
///     .with_admission(1 << 20, 1 << 18)
///     .with_result_cache(256, 100_000);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen. Default: TCP on a kernel-assigned localhost port.
    pub addr: BindAddr,
    /// Total admission budget in resident tuples, summed over all
    /// concurrently executing (uncached) requests.
    pub admission_total: u64,
    /// Budget one executing request is admitted under — and the ceiling
    /// enforced on its `Residency` gauge while it streams.
    pub admission_per_query: u64,
    /// How long a request waits in the admission queue before `ERR`.
    pub admission_timeout: Duration,
    /// Result-cache capacity in entries (`0` disables it).
    pub result_cache_capacity: usize,
    /// Largest result (rows) worth memoizing; bigger ones are streamed
    /// but not cached.
    pub result_cache_max_rows: usize,
    /// Granularity at which idle sessions and the accept loop notice a
    /// shutdown (and at which a dead client is detected).
    pub idle_poll: Duration,
    /// Pause inserted after each streamed batch (uncached path only).
    /// Zero (the default) streams at full speed; a nonzero value
    /// rate-limits output per session — it also widens the window in
    /// which a mid-stream `CANCEL` is observed, which the cancellation
    /// tests rely on.
    pub stream_throttle: Duration,
    /// Collect server-wide telemetry: latency histograms, registry
    /// counters, per-session `ExecMetrics` (uncached executions run
    /// with per-operator metering forced on — the zero-cost `Meter`
    /// discipline keeps this within the `telemetry_overhead` bench's
    /// ≤5% bound). Off, `METRICS` still answers but histograms and
    /// kernel counters stay empty.
    pub telemetry: bool,
    /// Latency at or above which a request is captured in the
    /// slow-query log.
    pub slow_query_threshold: Duration,
    /// Slow-query ring capacity in entries (`0` disables capture).
    pub slowlog_capacity: usize,
    /// Attach a full `EXPLAIN ANALYZE` profile to slow-log entries by
    /// re-running completed uncached slow queries in profiled mode
    /// (which also feeds the engine's `StatsStore` under the real
    /// document version). The re-run happens on the session thread,
    /// after the rows were already streamed.
    pub slowlog_profile: bool,
    /// Feedback-driven re-planning threshold: once the `StatsStore`
    /// holds at least this many mispredicted plan nodes (or arm
    /// mispredicts) for a prepared plan under the served document
    /// version, the next `EXEC` re-plans it under feedback, swaps the
    /// registry entry and invalidates the stale result-cache entry —
    /// at most once per `(plan, version)`. `0` disables re-planning.
    pub replan_mispredicts: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: BindAddr::Tcp("127.0.0.1:0".into()),
            admission_total: 1 << 20,
            admission_per_query: 1 << 18,
            admission_timeout: Duration::from_secs(5),
            result_cache_capacity: 256,
            result_cache_max_rows: 100_000,
            idle_poll: Duration::from_millis(50),
            stream_throttle: Duration::ZERO,
            telemetry: true,
            slow_query_threshold: Duration::from_millis(250),
            slowlog_capacity: 128,
            slowlog_profile: true,
            replan_mispredicts: 1,
        }
    }
}

impl ServerConfig {
    /// Listen address.
    pub fn with_addr(mut self, addr: BindAddr) -> ServerConfig {
        self.addr = addr;
        self
    }

    /// Admission budget: `total` tuples shared by all executing
    /// requests, `per_query` tuples per admitted request.
    pub fn with_admission(mut self, total: u64, per_query: u64) -> ServerConfig {
        self.admission_total = total;
        self.admission_per_query = per_query;
        self
    }

    /// Admission-queue wait bound.
    pub fn with_admission_timeout(mut self, d: Duration) -> ServerConfig {
        self.admission_timeout = d;
        self
    }

    /// Result-cache shape: `capacity` entries, `max_rows` per entry.
    pub fn with_result_cache(mut self, capacity: usize, max_rows: usize) -> ServerConfig {
        self.result_cache_capacity = capacity;
        self.result_cache_max_rows = max_rows;
        self
    }

    /// Shutdown/cancel polling granularity.
    pub fn with_idle_poll(mut self, d: Duration) -> ServerConfig {
        self.idle_poll = d;
        self
    }

    /// Per-batch output pacing (zero = full speed).
    pub fn with_stream_throttle(mut self, d: Duration) -> ServerConfig {
        self.stream_throttle = d;
        self
    }

    /// Server-wide telemetry collection on/off.
    pub fn with_telemetry(mut self, on: bool) -> ServerConfig {
        self.telemetry = on;
        self
    }

    /// Slow-query log shape: capture requests at or over `threshold`,
    /// keep the most recent `capacity` (0 disables capture).
    pub fn with_slowlog(mut self, threshold: Duration, capacity: usize) -> ServerConfig {
        self.slow_query_threshold = threshold;
        self.slowlog_capacity = capacity;
        self
    }

    /// Attach `EXPLAIN ANALYZE` profiles to slow-log entries (a
    /// profiled re-run of the offending plan) on/off.
    pub fn with_slowlog_profile(mut self, on: bool) -> ServerConfig {
        self.slowlog_profile = on;
        self
    }

    /// Feedback re-planning threshold in mispredicted nodes (0
    /// disables adaptive re-planning entirely).
    pub fn with_replan(mut self, mispredicts: u64) -> ServerConfig {
        self.replan_mispredicts = mispredicts;
        self
    }

    /// Reject nonsensical combinations up front.
    pub fn validate(&self) -> Result<()> {
        if self.admission_per_query == 0 {
            return Err(Error::Config("admission_per_query must be > 0".into()));
        }
        if self.admission_per_query > self.admission_total {
            return Err(Error::Config(format!(
                "admission_per_query ({}) exceeds admission_total ({}): no request could ever be admitted",
                self.admission_per_query, self.admission_total
            )));
        }
        if self.idle_poll.is_zero() {
            return Err(Error::Config("idle_poll must be > 0".into()));
        }
        Ok(())
    }
}

/// One prepared-plan registry entry: the plan the server currently
/// executes for a registration fingerprint, plus the bookkeeping that
/// makes feedback-driven re-planning idempotent per document version.
///
/// The registry key stays the fingerprint `PREPARE` answered with even
/// after a re-plan swaps in a plan with a different fingerprint —
/// clients keep `EXEC`ing the handle they know, and the swap is
/// invisible except for the `replan.*` counters (and better latency).
pub struct PreparedSlot {
    current: RwLock<Arc<PreparedQuery>>,
    /// Document versions already re-planned (or attempted) for this
    /// slot — each `(plan, version)` pair re-plans at most once.
    replanned_versions: Mutex<HashSet<u64>>,
}

impl PreparedSlot {
    fn new(prep: PreparedQuery) -> PreparedSlot {
        PreparedSlot {
            current: RwLock::new(Arc::new(prep)),
            replanned_versions: Mutex::new(HashSet::new()),
        }
    }

    /// The plan the server would execute right now (post-swap after a
    /// re-plan; its fingerprint can differ from the registry key).
    pub fn current(&self) -> Arc<PreparedQuery> {
        self.current.read().clone()
    }
}

/// Everything the sessions share.
pub struct ServerState {
    engine: Uload,
    handle: RwLock<DocumentHandle>,
    prepared: RwLock<HashMap<u64, Arc<PreparedSlot>>>,
    cache: ResultCache,
    admission: Admission,
    metrics: ServerMetrics,
    slowlog: SlowLog,
    config: ServerConfig,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    sessions_active: AtomicU64,
    sessions_total: AtomicU64,
}

impl ServerState {
    fn new(engine: Uload, handle: DocumentHandle, config: ServerConfig) -> ServerState {
        ServerState {
            engine,
            handle: RwLock::new(handle),
            prepared: RwLock::new(HashMap::new()),
            cache: ResultCache::new(config.result_cache_capacity, config.result_cache_max_rows),
            admission: Admission::new(
                config.admission_total,
                config.admission_per_query,
                config.admission_timeout,
            ),
            metrics: ServerMetrics::new(),
            slowlog: SlowLog::new(config.slow_query_threshold, config.slowlog_capacity),
            config,
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            sessions_active: AtomicU64::new(0),
            sessions_total: AtomicU64::new(0),
        }
    }

    /// The engine this server answers with.
    pub fn engine(&self) -> &Uload {
        &self.engine
    }

    /// Snapshot of the currently served document (cheap `Arc` clone).
    pub fn document(&self) -> DocumentHandle {
        self.handle.read().clone()
    }

    /// Replace the served document. In-flight requests keep streaming
    /// from their snapshot; all result-cache entries for the old
    /// version stop matching at the next lookup (the version is part of
    /// the cache key), so there is no explicit invalidation step. The
    /// engine's `StatsStore` is bounded the same way: feedback for
    /// versions no longer resident is evicted here (version 0 — the
    /// embedded/bench key — is kept).
    pub fn swap_document(&self, doc: xmltree::Document) -> DocumentVersion {
        let v = {
            let mut h = self.handle.write();
            *h = h.reload(doc);
            h.version()
        };
        let (nodes, arms) = self.engine.stats_store().retain_versions(&[0, v.0]);
        if nodes + arms > 0 {
            tracing::debug!(
                target: "uload::server",
                "document swap to {v}: evicted {nodes} node / {arms} arm feedback series"
            );
        }
        v
    }

    /// The shared admission budget (for observability and tests).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The shared result cache (for observability and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The server's global metrics (histograms, counters, gauges).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The slow-query log (drained by the `SLOWLOG` command).
    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// The `METRICS` response: the whole-server observability snapshot
    /// — session/admission/slowlog state, cache counters, the
    /// `StatsStore` rollup and the full registry (counters, gauges,
    /// latency histograms). Validated against
    /// `schemas/metrics.schema.json`.
    pub fn metrics_json(&self) -> Json {
        // point-in-time gauges are refreshed at snapshot time
        let admission = Json::obj(vec![
            ("total", Json::Num(self.admission.total() as f64)),
            ("per_query", Json::Num(self.admission.per_query() as f64)),
            ("in_use", Json::Num(self.admission.in_use() as f64)),
            ("peak", Json::Num(self.admission.peak() as f64)),
            (
                "admitted_total",
                Json::Num(self.admission.admitted_total() as f64),
            ),
            (
                "timeouts_total",
                Json::Num(self.admission.timeouts_total() as f64),
            ),
        ]);
        let rc = self.cache.counters();
        let result_cache = Json::obj(vec![
            ("hits", Json::Num(rc.hits as f64)),
            ("misses", Json::Num(rc.misses as f64)),
            ("insertions", Json::Num(rc.insertions as f64)),
            ("evictions", Json::Num(rc.evictions as f64)),
            ("entries", Json::Num(rc.entries as f64)),
            ("hit_rate", Json::Num(rc.hit_rate())),
        ]);
        let canonical = match self.engine.cache_stats() {
            Some(s) => Json::obj(vec![
                ("hits", Json::Num(s.hits as f64)),
                ("misses", Json::Num(s.misses as f64)),
                ("evictions", Json::Num(s.evictions as f64)),
                (
                    "entries",
                    Json::Num((s.verdict_entries + s.model_entries + s.annotation_entries) as f64),
                ),
            ]),
            None => Json::Null,
        };
        Json::obj(vec![
            (
                "server",
                Json::obj(vec![
                    ("telemetry", Json::Bool(self.config.telemetry)),
                    ("sessions_active", Json::Num(self.sessions_active() as f64)),
                    ("sessions_total", Json::Num(self.sessions_total() as f64)),
                    ("prepared_plans", Json::Num(self.prepared_count() as f64)),
                    ("admission", admission),
                ]),
            ),
            (
                "caches",
                Json::obj(vec![("result", result_cache), ("canonical", canonical)]),
            ),
            ("slowlog", self.slowlog.summary_json()),
            ("stats_store", self.engine.stats_store().summary_json()),
            ("registry", self.metrics.snapshot().to_json()),
        ])
    }

    /// Prepared plans currently registered.
    pub fn prepared_count(&self) -> usize {
        self.prepared.read().len()
    }

    /// Sessions currently connected.
    pub fn sessions_active(&self) -> u64 {
        self.sessions_active.load(Ordering::Relaxed)
    }

    /// Sessions ever accepted.
    pub fn sessions_total(&self) -> u64 {
        self.sessions_total.load(Ordering::Relaxed)
    }

    /// `true` once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Register a prepared plan under its fingerprint, returning the
    /// fingerprint. Re-preparing an equivalent query is a no-op hit on
    /// the registry.
    fn register(&self, prep: PreparedQuery) -> u64 {
        let fp = prep.fingerprint();
        self.prepared
            .write()
            .entry(fp)
            .or_insert_with(|| Arc::new(PreparedSlot::new(prep)));
        fp
    }

    fn lookup(&self, fp: u64) -> Option<Arc<PreparedSlot>> {
        self.prepared.read().get(&fp).cloned()
    }

    /// The plan currently executing for a registered fingerprint —
    /// after a feedback re-plan this is the swapped-in plan, whose own
    /// fingerprint (and epoch/arm) can differ from the registry key.
    pub fn prepared_plan(&self, fp: u64) -> Option<Arc<PreparedQuery>> {
        self.lookup(fp).map(|slot| slot.current())
    }

    /// Adaptive re-planning checkpoint, run at the top of every `EXEC`
    /// against the request's document snapshot: when the `StatsStore`
    /// rollup says the current plan has mispredicted past the
    /// configured threshold under this version, re-plan it under
    /// feedback, invalidate the now-stale result-cache entry and swap
    /// the slot — exactly once per `(plan, version)`. Returns the plan
    /// the request should execute.
    fn maybe_replan(
        &self,
        session_id: u64,
        slot: &PreparedSlot,
        handle: &DocumentHandle,
    ) -> Arc<PreparedQuery> {
        let prep = slot.current();
        let threshold = self.config.replan_mispredicts;
        if threshold == 0 {
            return prep;
        }
        let version = handle.version().0;
        let stats = self.engine.stats_store();
        let fp = prep.fingerprint();
        let node_mis = stats.mispredicted_nodes_for(version, fp);
        let arm_mis = stats.arm(version, fp).map_or(0, |a| a.mispredicts);
        if node_mis.max(arm_mis) < threshold {
            return prep;
        }
        if !slot.replanned_versions.lock().insert(version) {
            return prep; // this (plan, version) already got its shot
        }
        self.metrics.replan_triggered.inc();
        let t = Instant::now();
        let replanned = match self.engine.replan_prepared(&prep, version) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                tracing::warn!(
                    target: "uload::server",
                    "re-plan of fp={fp:016x} failed: {e}; keeping the current plan"
                );
                return prep;
            }
        };
        if replanned.fingerprint() != fp {
            // the plan actually changed: the memoized rows under the
            // old (fingerprint, version) key will never be looked up
            // again by this slot — drop them eagerly
            if self.cache.invalidate((fp, handle.version())) {
                self.metrics.replan_cache_invalidated.inc();
            }
        }
        tracing::info!(
            target: "uload::server",
            "re-planned fp={fp:016x} for version {version}: arm {} -> {} ({}), epoch {}",
            prep.arm(),
            replanned.arm(),
            replanned.arm_source(),
            replanned.epoch()
        );
        self.slowlog.record(SlowQueryEntry {
            session_id,
            fingerprint: fp,
            query: prep.query().to_string(),
            latency_ns: t.elapsed().as_nanos() as u64,
            cached: false,
            rows: 0,
            disposition: SlowDisposition::Replanned,
            profile: None,
        });
        *slot.current.write() = Arc::clone(&replanned);
        self.metrics.replan_swapped.inc();
        replanned
    }
}

/// A running server: join handle + shared state.
pub struct ServerHandle {
    addr: BindAddr,
    state: Arc<ServerState>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The actually-bound listen address (port resolved).
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// The shared server state (stats, admission gauge, caches).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Ask the server to stop: the accept loop exits, idle sessions
    /// disconnect at their next poll, in-flight requests finish.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Block until the accept loop (and every session it spawned) has
    /// exited. Call [`ServerHandle::shutdown`] first, or this blocks
    /// until a client sends `SHUTDOWN`.
    pub fn wait(&self) {
        if let Some(t) = self.accept.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Bind and start serving `handle` with `engine` under `config`.
    /// Returns once the listener is bound; serving happens on
    /// background threads until [`ServerHandle::shutdown`] (or a client
    /// `SHUTDOWN`).
    pub fn start(
        config: ServerConfig,
        engine: Uload,
        handle: DocumentHandle,
    ) -> Result<ServerHandle> {
        config.validate()?;
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let idle = config.idle_poll;
        let state = Arc::new(ServerState::new(engine, handle, config));
        tracing::info!(target: "uload::server", "listening on {addr}");

        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("uload-accept".into())
            .spawn(move || accept_loop(listener, accept_state, idle))
            .map_err(|e| Error::Io(e.to_string()))?;

        Ok(ServerHandle {
            addr,
            state,
            accept: Mutex::new(Some(accept)),
        })
    }
}

fn accept_loop(listener: Listener, state: Arc<ServerState>, idle: Duration) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok(conn) => {
                let id = state.next_session.fetch_add(1, Ordering::Relaxed);
                state.sessions_total.fetch_add(1, Ordering::Relaxed);
                state.sessions_active.fetch_add(1, Ordering::Relaxed);
                let st = Arc::clone(&state);
                let t = std::thread::Builder::new()
                    .name(format!("uload-session-{id}"))
                    .spawn(move || {
                        let _ = session_loop(id, conn, &st);
                        st.sessions_active.fetch_sub(1, Ordering::Relaxed);
                        tracing::debug!(target: "uload::server", "session {id} ended");
                    });
                match t {
                    Ok(t) => sessions.push(t),
                    Err(e) => {
                        state.sessions_active.fetch_sub(1, Ordering::Relaxed);
                        tracing::warn!(target: "uload::server", "spawn failed: {e}");
                    }
                }
                sessions.retain(|t| !t.is_finished());
            }
            Err(ref e) if is_poll_timeout(e) => std::thread::sleep(idle),
            Err(e) => {
                tracing::warn!(target: "uload::server", "accept failed: {e}");
                std::thread::sleep(idle);
            }
        }
    }
    for t in sessions {
        let _ = t.join();
    }
    tracing::info!(target: "uload::server", "accept loop exited");
}

/// Per-session counters behind [`SessionProfile`]. Result-cache hits
/// and misses are attributed to the session that looked them up;
/// insertion/eviction/entry counts in `STATS` come from the shared
/// cache.
#[derive(Default)]
struct SessionCounters {
    queries: u64,
    prepared: u64,
    rows: u64,
    cancelled: u64,
    budget_aborts: u64,
    admission_timeouts: u64,
    rc_hits: u64,
    rc_misses: u64,
    /// Kernel counters absorbed from this session's metered uncached
    /// executions (telemetry on only).
    exec: ExecMetrics,
}

fn session_profile(id: u64, c: &SessionCounters, state: &ServerState) -> SessionProfile {
    let shared = state.cache.counters();
    SessionProfile {
        session_id: id,
        queries: c.queries,
        prepared: c.prepared,
        rows: c.rows,
        cancelled: c.cancelled,
        budget_aborts: c.budget_aborts,
        admission_timeouts: c.admission_timeouts,
        result_cache: ResultCacheCounters {
            hits: c.rc_hits,
            misses: c.rc_misses,
            insertions: shared.insertions,
            evictions: shared.evictions,
            entries: shared.entries,
        },
        canonical: state.engine.cache_stats().map(|s| CacheCounters {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            verdict_entries: s.verdict_entries,
            model_entries: s.model_entries,
            annotation_entries: s.annotation_entries,
        }),
        exec: c.exec,
    }
}

/// How one `EXEC` ended (drives the terminator line).
enum ExecEnd {
    Done {
        rows: u64,
        cached: bool,
        version: DocumentVersion,
        ns: u64,
    },
    Cancelled {
        rows: u64,
    },
    Failed(String),
}

fn session_loop(id: u64, conn: Box<dyn Conn>, state: &ServerState) -> std::io::Result<()> {
    conn.set_read_timeout_d(Some(state.config.idle_poll))?;
    let mut writer = BufWriter::new(conn.try_clone_box()?);
    let mut reader = BufReader::new(conn.try_clone_box()?);
    // Persistent partial-line buffer: a timed-out (or non-blocking,
    // during mid-stream cancel polling) read may have already consumed
    // a line fragment, which must survive until the newline arrives on
    // a later read. Cleared only once a complete line is parsed.
    let mut line = String::new();
    let mut counters = SessionCounters::default();
    tracing::debug!(target: "uload::server", "session {id} started");

    loop {
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => break,
                Err(ref e) if is_poll_timeout(e) => {
                    if state.is_shutting_down() {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let req = parse_request(&line);
        line.clear();
        let req = match req {
            Ok(r) => r,
            Err(msg) => {
                send(&mut writer, &err_line(&msg))?;
                continue;
            }
        };
        match req {
            Request::Prepare(text) => {
                let span = tracing::debug_span!(target: "uload::server", "prepare");
                let _g = span.enter();
                let t = Instant::now();
                match state.engine.prepare_query(&text) {
                    Ok(prep) => {
                        counters.prepared += 1;
                        state.metrics.prepares.inc();
                        if state.config.telemetry {
                            state.metrics.prepare_ns.record_duration(t.elapsed());
                        }
                        let fp = state.register(prep);
                        tracing::debug!(
                            target: "uload::server",
                            "session {id}: prepared fp={fp:016x} in {}ns",
                            t.elapsed().as_nanos()
                        );
                        send(&mut writer, &prepared_line(fp))?;
                    }
                    Err(e) => {
                        state.metrics.errors.inc();
                        send(&mut writer, &err_line(&e.to_string()))?
                    }
                }
            }
            Request::Exec(fp) => {
                let span = tracing::debug_span!(target: "uload::server", "exec");
                let _g = span.enter();
                match state.lookup(fp) {
                    Some(slot) => {
                        let end = execute(
                            state,
                            id,
                            &slot,
                            &mut reader,
                            &mut writer,
                            &mut line,
                            &mut counters,
                        )?;
                        finish(&mut writer, fp, end, &mut counters)?;
                    }
                    None => {
                        state.metrics.errors.inc();
                        send(
                            &mut writer,
                            &err_line(&format!("no prepared plan under fingerprint {fp:016x}")),
                        )?
                    }
                }
            }
            Request::Query(text) => {
                let span = tracing::debug_span!(target: "uload::server", "query");
                let _g = span.enter();
                match state.engine.prepare_query(&text) {
                    Ok(prep) => {
                        let fp = state.register(prep);
                        let slot = state.lookup(fp).expect("just registered");
                        let end = execute(
                            state,
                            id,
                            &slot,
                            &mut reader,
                            &mut writer,
                            &mut line,
                            &mut counters,
                        )?;
                        finish(&mut writer, fp, end, &mut counters)?;
                    }
                    Err(e) => {
                        state.metrics.errors.inc();
                        send(&mut writer, &err_line(&e.to_string()))?
                    }
                }
            }
            Request::Explain(text) => {
                let span = tracing::debug_span!(target: "uload::server", "explain");
                let _g = span.enter();
                let version = state.document().version().0;
                match state.engine.explain_for_version(&text, version) {
                    Ok(explain) => send(
                        &mut writer,
                        &format!("EXPLAIN {}", explain.to_json().to_string_compact()),
                    )?,
                    Err(e) => {
                        state.metrics.errors.inc();
                        send(&mut writer, &err_line(&e.to_string()))?
                    }
                }
            }
            Request::Stats => {
                let json = session_profile(id, &counters, state).to_json();
                send(&mut writer, &format!("STATS {}", json.to_string_compact()))?;
            }
            Request::Metrics => {
                let json = state.metrics_json();
                send(
                    &mut writer,
                    &format!("METRICS {}", json.to_string_compact()),
                )?;
            }
            Request::Slowlog => {
                let entries = state.slowlog().drain();
                let json = Json::Arr(entries.iter().map(SlowQueryEntry::to_json).collect());
                send(
                    &mut writer,
                    &format!("SLOWLOG {}", json.to_string_compact()),
                )?;
            }
            Request::Cancel => {
                // nothing in flight: acknowledge as a zero-row cancel
                send(&mut writer, &cancelled_line(0))?;
            }
            Request::Shutdown => {
                state.request_shutdown();
                send(&mut writer, "BYE")?;
                return Ok(());
            }
            Request::Quit => {
                send(&mut writer, "BYE")?;
                return Ok(());
            }
        }
    }
}

fn send(w: &mut BufWriter<Box<dyn Conn>>, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn finish(
    w: &mut BufWriter<Box<dyn Conn>>,
    fp: u64,
    end: ExecEnd,
    counters: &mut SessionCounters,
) -> std::io::Result<()> {
    counters.queries += 1;
    match end {
        ExecEnd::Done {
            rows,
            cached,
            version,
            ns,
        } => {
            counters.rows += rows;
            send(w, &done_line(rows, cached, fp, version, ns))
        }
        ExecEnd::Cancelled { rows } => {
            counters.rows += rows;
            counters.cancelled += 1;
            send(w, &cancelled_line(rows))
        }
        ExecEnd::Failed(msg) => send(w, &err_line(&msg)),
    }
}

/// Run one prepared plan for a session, streaming `ROW` lines.
///
/// First the adaptive checkpoint: if execution feedback says the
/// slot's current plan has been mispredicting under this document
/// version, it is re-planned and swapped before anything runs
/// ([`ServerState::maybe_replan`]). Then — cache hit: the memoized
/// rows are written straight out — no admission, no executor, nothing
/// materialized. Miss: admission first (bounded wait), then the
/// engine's streaming cursor with a per-batch ceiling check on its
/// `Residency` gauge and a per-batch poll for a client `CANCEL` (or
/// disconnect); completed results are memoized for the snapshot's
/// document version.
fn execute(
    state: &ServerState,
    session_id: u64,
    slot: &PreparedSlot,
    reader: &mut BufReader<Box<dyn Conn>>,
    writer: &mut BufWriter<Box<dyn Conn>>,
    line: &mut String,
    counters: &mut SessionCounters,
) -> std::io::Result<ExecEnd> {
    let started = Instant::now();
    let telemetry = state.config.telemetry;
    state.metrics.requests.inc();
    let handle = state.document(); // snapshot: swaps don't affect us mid-stream
    let prep = state.maybe_replan(session_id, slot, &handle);
    let prep = prep.as_ref();
    let key = (prep.fingerprint(), handle.version());

    if let Some(rows) = state.cache.get(key) {
        counters.rc_hits += 1;
        state.metrics.result_cache_hits.inc();
        for xml in rows.iter() {
            writer.write_all(row_line(xml).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        let elapsed = started.elapsed();
        let n = rows.len() as u64;
        state.metrics.rows_streamed.add(n);
        if telemetry {
            state.metrics.record_cached(elapsed);
        }
        observe_slow(
            state,
            session_id,
            prep,
            &handle,
            elapsed,
            true,
            n,
            SlowDisposition::Done,
        );
        return Ok(ExecEnd::Done {
            rows: n,
            cached: true,
            version: handle.version(),
            ns: elapsed.as_nanos() as u64,
        });
    }
    counters.rc_misses += 1;
    state.metrics.result_cache_misses.inc();

    state.metrics.queue_depth.inc();
    let wait = Instant::now();
    let acquired = state.admission.acquire();
    state.metrics.queue_depth.dec();
    if telemetry {
        state
            .metrics
            .admission_wait_ns
            .record_duration(wait.elapsed());
    }
    let _permit = match acquired {
        Ok(p) => p,
        Err(AdmissionError::Timeout) => {
            counters.admission_timeouts += 1;
            state.metrics.admission_timeouts.inc();
            state.metrics.errors.inc();
            observe_slow(
                state,
                session_id,
                prep,
                &handle,
                started.elapsed(),
                false,
                0,
                SlowDisposition::Failed,
            );
            return Ok(ExecEnd::Failed(
                "admission queue full: server at its resident-tuple budget".into(),
            ));
        }
    };

    // with telemetry on, per-operator metering is forced on so kernel
    // counters reach the session and registry totals (the zero-cost
    // `Meter` kernels keep the metered run within the bench's bound)
    let stream = if telemetry {
        state.engine.stream_prepared_metered(prep, &handle)
    } else {
        state.engine.stream_prepared(prep, &handle)
    };
    let mut results = match stream {
        Ok(r) => r,
        Err(e) => {
            state.metrics.errors.inc();
            return Ok(ExecEnd::Failed(e.to_string()));
        }
    };

    let per_query = state.admission.per_query();
    let mut emitted: u64 = 0;
    let mut budget_abort = false;
    let mut collected: Option<Vec<String>> = Some(Vec::new());
    let outcome = loop {
        match results.next_batch() {
            Ok(Some(batch)) => {
                for t in batch.tuples.iter() {
                    let xml = t.get(0).as_str().unwrap_or("").to_string();
                    writer.write_all(row_line(&xml).as_bytes())?;
                    writer.write_all(b"\n")?;
                    emitted += 1;
                    if let Some(c) = collected.as_mut() {
                        if c.len() < state.config.result_cache_max_rows {
                            c.push(xml);
                        } else {
                            collected = None; // too big to memoize
                        }
                    }
                }
                writer.flush()?;
                if results.peak_resident_tuples() > per_query {
                    results.close();
                    counters.budget_aborts += 1;
                    budget_abort = true;
                    break ExecEnd::Failed(format!(
                        "per-query budget exceeded: {} resident tuples > {per_query}",
                        results.peak_resident_tuples()
                    ));
                }
                if !state.config.stream_throttle.is_zero() {
                    std::thread::sleep(state.config.stream_throttle);
                }
                match poll_cancel(reader, line)? {
                    Poll::Cancel => {
                        results.close();
                        break ExecEnd::Cancelled { rows: emitted };
                    }
                    Poll::Disconnect => {
                        results.close();
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "client disconnected mid-stream",
                        ));
                    }
                    Poll::Quiet => {}
                }
            }
            Ok(None) => {
                if let Some(rows) = collected.take() {
                    state.cache.insert(key, Arc::new(rows));
                }
                break ExecEnd::Done {
                    rows: emitted,
                    cached: false,
                    version: handle.version(),
                    ns: started.elapsed().as_nanos() as u64,
                };
            }
            Err(e) => {
                results.close();
                break ExecEnd::Failed(e.to_string());
            }
        }
    };

    let elapsed = started.elapsed();
    state
        .metrics
        .residency_high_water
        .set_max(results.peak_resident_tuples());
    if telemetry {
        let sp = results.stream_profile();
        let mut totals = ExecMetrics::default();
        for op in &sp.ops {
            totals.absorb(&op.metrics);
        }
        counters.exec.absorb(&totals);
        state.metrics.absorb_exec(&totals);
    }
    drop(results); // release resident state before any profiled re-run

    let (rows_out, disposition) = match &outcome {
        ExecEnd::Done { rows, .. } => {
            if telemetry {
                state.metrics.record_uncached(elapsed);
            }
            state.metrics.rows_streamed.add(*rows);
            (*rows, SlowDisposition::Done)
        }
        ExecEnd::Cancelled { rows } => {
            state.metrics.cancelled.inc();
            state.metrics.rows_streamed.add(*rows);
            (*rows, SlowDisposition::Cancelled)
        }
        ExecEnd::Failed(_) => {
            state.metrics.errors.inc();
            if budget_abort {
                state.metrics.budget_aborts.inc();
            }
            (
                emitted,
                if budget_abort {
                    SlowDisposition::BudgetAbort
                } else {
                    SlowDisposition::Failed
                },
            )
        }
    };
    observe_slow(
        state,
        session_id,
        prep,
        &handle,
        elapsed,
        false,
        rows_out,
        disposition,
    );
    // permit drops here, after the stream released its resident state
    Ok(outcome)
}

/// Count a request against the slow-query threshold and, when it
/// qualifies, capture it in the ring — for completed uncached
/// executions optionally with a profiled re-run of the same plan over
/// the same document snapshot (which also records its measured
/// cardinalities in the engine's `StatsStore` under the real document
/// version). The re-run happens after the rows were streamed and the
/// cursor's resident state was released, but still under the session's
/// admission permit, so it cannot over-admit the server.
#[allow(clippy::too_many_arguments)]
fn observe_slow(
    state: &ServerState,
    session_id: u64,
    prep: &PreparedQuery,
    handle: &DocumentHandle,
    latency: Duration,
    cached: bool,
    rows: u64,
    disposition: SlowDisposition,
) {
    if latency >= state.config.slow_query_threshold {
        state.metrics.slow_queries.inc();
    }
    if !state.slowlog.qualifies(latency) {
        return;
    }
    let profile = if state.config.slowlog_profile && !cached && disposition == SlowDisposition::Done
    {
        state.engine.profile_prepared(prep, handle).ok()
    } else {
        None
    };
    tracing::debug!(
        target: "uload::server",
        "session {session_id}: slow query fp={:016x} latency={}ns rows={rows} ({})",
        prep.fingerprint(),
        latency.as_nanos(),
        disposition.as_str()
    );
    state.slowlog.record(SlowQueryEntry {
        session_id,
        fingerprint: prep.fingerprint(),
        query: prep.query().to_string(),
        latency_ns: latency.as_nanos() as u64,
        cached,
        rows,
        disposition,
        profile,
    });
}

enum Poll {
    Quiet,
    Cancel,
    Disconnect,
}

/// Non-blocking peek for a `CANCEL` between batches. A partial line
/// (no newline yet) stays in the session's persistent `line` buffer
/// across polls — and across the end of the stream, so a `CANCEL`
/// whose tail arrives late still parses (as a no-op cancel) in the
/// main loop. Any complete non-`CANCEL` line mid-stream is ignored.
fn poll_cancel(reader: &mut BufReader<Box<dyn Conn>>, line: &mut String) -> std::io::Result<Poll> {
    reader.get_ref().set_nonblocking_d(true)?;
    let mut out = Poll::Quiet;
    loop {
        match reader.read_line(line) {
            Ok(0) => {
                out = Poll::Disconnect;
                break;
            }
            Ok(_) => {
                let cancel = matches!(parse_request(line), Ok(Request::Cancel));
                line.clear();
                if cancel {
                    out = Poll::Cancel;
                    break;
                }
                // anything else sent mid-stream is swallowed
            }
            Err(ref e) if is_poll_timeout(e) => break,
            Err(e) => {
                reader.get_ref().set_nonblocking_d(false)?;
                return Err(e);
            }
        }
    }
    reader.get_ref().set_nonblocking_d(false)?;
    Ok(out)
}
