//! The server proper: config, shared state, accept loop, session loop.
//!
//! One OS thread per connection (the workspace carries no async
//! runtime, and the engine's pipelined executor is synchronous anyway);
//! a session is a plain request/response loop over the
//! [line protocol](crate::protocol). All cross-session state —
//! the engine, the served [`DocumentHandle`], the prepared-plan
//! registry, the [`ResultCache`] and the [`Admission`] budget — lives
//! in one [`ServerState`] shared by `Arc`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{CacheCounters, ResultCacheCounters, SessionProfile};
use parking_lot::{Mutex, RwLock};
use rewriting::{PreparedQuery, Uload};
use storage::{DocumentHandle, DocumentVersion};
use uload_error::{Error, Result};

use crate::admission::{Admission, AdmissionError};
use crate::cache::ResultCache;
use crate::conn::{is_poll_timeout, BindAddr, Conn, Listener};
use crate::protocol::{
    cancelled_line, done_line, err_line, parse_request, prepared_line, row_line, Request,
};

/// Serving knobs. Builder-style like
/// [`EngineConfig`](rewriting::EngineConfig): start from `default()`,
/// chain `with_*` calls.
///
/// ```
/// use uload_server::{BindAddr, ServerConfig};
/// let cfg = ServerConfig::default()
///     .with_addr(BindAddr::Tcp("127.0.0.1:0".into()))
///     .with_admission(1 << 20, 1 << 18)
///     .with_result_cache(256, 100_000);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen. Default: TCP on a kernel-assigned localhost port.
    pub addr: BindAddr,
    /// Total admission budget in resident tuples, summed over all
    /// concurrently executing (uncached) requests.
    pub admission_total: u64,
    /// Budget one executing request is admitted under — and the ceiling
    /// enforced on its `Residency` gauge while it streams.
    pub admission_per_query: u64,
    /// How long a request waits in the admission queue before `ERR`.
    pub admission_timeout: Duration,
    /// Result-cache capacity in entries (`0` disables it).
    pub result_cache_capacity: usize,
    /// Largest result (rows) worth memoizing; bigger ones are streamed
    /// but not cached.
    pub result_cache_max_rows: usize,
    /// Granularity at which idle sessions and the accept loop notice a
    /// shutdown (and at which a dead client is detected).
    pub idle_poll: Duration,
    /// Pause inserted after each streamed batch (uncached path only).
    /// Zero (the default) streams at full speed; a nonzero value
    /// rate-limits output per session — it also widens the window in
    /// which a mid-stream `CANCEL` is observed, which the cancellation
    /// tests rely on.
    pub stream_throttle: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: BindAddr::Tcp("127.0.0.1:0".into()),
            admission_total: 1 << 20,
            admission_per_query: 1 << 18,
            admission_timeout: Duration::from_secs(5),
            result_cache_capacity: 256,
            result_cache_max_rows: 100_000,
            idle_poll: Duration::from_millis(50),
            stream_throttle: Duration::ZERO,
        }
    }
}

impl ServerConfig {
    /// Listen address.
    pub fn with_addr(mut self, addr: BindAddr) -> ServerConfig {
        self.addr = addr;
        self
    }

    /// Admission budget: `total` tuples shared by all executing
    /// requests, `per_query` tuples per admitted request.
    pub fn with_admission(mut self, total: u64, per_query: u64) -> ServerConfig {
        self.admission_total = total;
        self.admission_per_query = per_query;
        self
    }

    /// Admission-queue wait bound.
    pub fn with_admission_timeout(mut self, d: Duration) -> ServerConfig {
        self.admission_timeout = d;
        self
    }

    /// Result-cache shape: `capacity` entries, `max_rows` per entry.
    pub fn with_result_cache(mut self, capacity: usize, max_rows: usize) -> ServerConfig {
        self.result_cache_capacity = capacity;
        self.result_cache_max_rows = max_rows;
        self
    }

    /// Shutdown/cancel polling granularity.
    pub fn with_idle_poll(mut self, d: Duration) -> ServerConfig {
        self.idle_poll = d;
        self
    }

    /// Per-batch output pacing (zero = full speed).
    pub fn with_stream_throttle(mut self, d: Duration) -> ServerConfig {
        self.stream_throttle = d;
        self
    }

    /// Reject nonsensical combinations up front.
    pub fn validate(&self) -> Result<()> {
        if self.admission_per_query == 0 {
            return Err(Error::Config("admission_per_query must be > 0".into()));
        }
        if self.admission_per_query > self.admission_total {
            return Err(Error::Config(format!(
                "admission_per_query ({}) exceeds admission_total ({}): no request could ever be admitted",
                self.admission_per_query, self.admission_total
            )));
        }
        if self.idle_poll.is_zero() {
            return Err(Error::Config("idle_poll must be > 0".into()));
        }
        Ok(())
    }
}

/// Everything the sessions share.
pub struct ServerState {
    engine: Uload,
    handle: RwLock<DocumentHandle>,
    prepared: RwLock<HashMap<u64, Arc<PreparedQuery>>>,
    cache: ResultCache,
    admission: Admission,
    config: ServerConfig,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    sessions_active: AtomicU64,
    sessions_total: AtomicU64,
}

impl ServerState {
    fn new(engine: Uload, handle: DocumentHandle, config: ServerConfig) -> ServerState {
        ServerState {
            engine,
            handle: RwLock::new(handle),
            prepared: RwLock::new(HashMap::new()),
            cache: ResultCache::new(config.result_cache_capacity, config.result_cache_max_rows),
            admission: Admission::new(
                config.admission_total,
                config.admission_per_query,
                config.admission_timeout,
            ),
            config,
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            sessions_active: AtomicU64::new(0),
            sessions_total: AtomicU64::new(0),
        }
    }

    /// The engine this server answers with.
    pub fn engine(&self) -> &Uload {
        &self.engine
    }

    /// Snapshot of the currently served document (cheap `Arc` clone).
    pub fn document(&self) -> DocumentHandle {
        self.handle.read().clone()
    }

    /// Replace the served document. In-flight requests keep streaming
    /// from their snapshot; all result-cache entries for the old
    /// version stop matching at the next lookup (the version is part of
    /// the cache key), so there is no explicit invalidation step.
    pub fn swap_document(&self, doc: xmltree::Document) -> DocumentVersion {
        let mut h = self.handle.write();
        *h = h.reload(doc);
        h.version()
    }

    /// The shared admission budget (for observability and tests).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The shared result cache (for observability and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Prepared plans currently registered.
    pub fn prepared_count(&self) -> usize {
        self.prepared.read().len()
    }

    /// Sessions currently connected.
    pub fn sessions_active(&self) -> u64 {
        self.sessions_active.load(Ordering::Relaxed)
    }

    /// Sessions ever accepted.
    pub fn sessions_total(&self) -> u64 {
        self.sessions_total.load(Ordering::Relaxed)
    }

    /// `true` once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Register a prepared plan under its fingerprint, returning the
    /// fingerprint. Re-preparing an equivalent query is a no-op hit on
    /// the registry.
    fn register(&self, prep: PreparedQuery) -> u64 {
        let fp = prep.fingerprint();
        self.prepared
            .write()
            .entry(fp)
            .or_insert_with(|| Arc::new(prep));
        fp
    }

    fn lookup(&self, fp: u64) -> Option<Arc<PreparedQuery>> {
        self.prepared.read().get(&fp).cloned()
    }
}

/// A running server: join handle + shared state.
pub struct ServerHandle {
    addr: BindAddr,
    state: Arc<ServerState>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The actually-bound listen address (port resolved).
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// The shared server state (stats, admission gauge, caches).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Ask the server to stop: the accept loop exits, idle sessions
    /// disconnect at their next poll, in-flight requests finish.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Block until the accept loop (and every session it spawned) has
    /// exited. Call [`ServerHandle::shutdown`] first, or this blocks
    /// until a client sends `SHUTDOWN`.
    pub fn wait(&self) {
        if let Some(t) = self.accept.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Bind and start serving `handle` with `engine` under `config`.
    /// Returns once the listener is bound; serving happens on
    /// background threads until [`ServerHandle::shutdown`] (or a client
    /// `SHUTDOWN`).
    pub fn start(
        config: ServerConfig,
        engine: Uload,
        handle: DocumentHandle,
    ) -> Result<ServerHandle> {
        config.validate()?;
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let idle = config.idle_poll;
        let state = Arc::new(ServerState::new(engine, handle, config));
        tracing::info!(target: "uload::server", "listening on {addr}");

        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("uload-accept".into())
            .spawn(move || accept_loop(listener, accept_state, idle))
            .map_err(|e| Error::Io(e.to_string()))?;

        Ok(ServerHandle {
            addr,
            state,
            accept: Mutex::new(Some(accept)),
        })
    }
}

fn accept_loop(listener: Listener, state: Arc<ServerState>, idle: Duration) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok(conn) => {
                let id = state.next_session.fetch_add(1, Ordering::Relaxed);
                state.sessions_total.fetch_add(1, Ordering::Relaxed);
                state.sessions_active.fetch_add(1, Ordering::Relaxed);
                let st = Arc::clone(&state);
                let t = std::thread::Builder::new()
                    .name(format!("uload-session-{id}"))
                    .spawn(move || {
                        let _ = session_loop(id, conn, &st);
                        st.sessions_active.fetch_sub(1, Ordering::Relaxed);
                        tracing::debug!(target: "uload::server", "session {id} ended");
                    });
                match t {
                    Ok(t) => sessions.push(t),
                    Err(e) => {
                        state.sessions_active.fetch_sub(1, Ordering::Relaxed);
                        tracing::warn!(target: "uload::server", "spawn failed: {e}");
                    }
                }
                sessions.retain(|t| !t.is_finished());
            }
            Err(ref e) if is_poll_timeout(e) => std::thread::sleep(idle),
            Err(e) => {
                tracing::warn!(target: "uload::server", "accept failed: {e}");
                std::thread::sleep(idle);
            }
        }
    }
    for t in sessions {
        let _ = t.join();
    }
    tracing::info!(target: "uload::server", "accept loop exited");
}

/// Per-session counters behind [`SessionProfile`]. Result-cache hits
/// and misses are attributed to the session that looked them up;
/// insertion/eviction/entry counts in `STATS` come from the shared
/// cache.
#[derive(Default)]
struct SessionCounters {
    queries: u64,
    prepared: u64,
    rows: u64,
    cancelled: u64,
    budget_aborts: u64,
    admission_timeouts: u64,
    rc_hits: u64,
    rc_misses: u64,
}

fn session_profile(id: u64, c: &SessionCounters, state: &ServerState) -> SessionProfile {
    let shared = state.cache.counters();
    SessionProfile {
        session_id: id,
        queries: c.queries,
        prepared: c.prepared,
        rows: c.rows,
        cancelled: c.cancelled,
        budget_aborts: c.budget_aborts,
        admission_timeouts: c.admission_timeouts,
        result_cache: ResultCacheCounters {
            hits: c.rc_hits,
            misses: c.rc_misses,
            insertions: shared.insertions,
            evictions: shared.evictions,
            entries: shared.entries,
        },
        canonical: state.engine.cache_stats().map(|s| CacheCounters {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            verdict_entries: s.verdict_entries,
            model_entries: s.model_entries,
            annotation_entries: s.annotation_entries,
        }),
    }
}

/// How one `EXEC` ended (drives the terminator line).
enum ExecEnd {
    Done {
        rows: u64,
        cached: bool,
        version: DocumentVersion,
        ns: u64,
    },
    Cancelled {
        rows: u64,
    },
    Failed(String),
}

fn session_loop(id: u64, conn: Box<dyn Conn>, state: &ServerState) -> std::io::Result<()> {
    conn.set_read_timeout_d(Some(state.config.idle_poll))?;
    let mut writer = BufWriter::new(conn.try_clone_box()?);
    let mut reader = BufReader::new(conn.try_clone_box()?);
    // Persistent partial-line buffer: a timed-out (or non-blocking,
    // during mid-stream cancel polling) read may have already consumed
    // a line fragment, which must survive until the newline arrives on
    // a later read. Cleared only once a complete line is parsed.
    let mut line = String::new();
    let mut counters = SessionCounters::default();
    tracing::debug!(target: "uload::server", "session {id} started");

    loop {
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => break,
                Err(ref e) if is_poll_timeout(e) => {
                    if state.is_shutting_down() {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let req = parse_request(&line);
        line.clear();
        let req = match req {
            Ok(r) => r,
            Err(msg) => {
                send(&mut writer, &err_line(&msg))?;
                continue;
            }
        };
        match req {
            Request::Prepare(text) => match state.engine.prepare_query(&text) {
                Ok(prep) => {
                    counters.prepared += 1;
                    let fp = state.register(prep);
                    send(&mut writer, &prepared_line(fp))?;
                }
                Err(e) => send(&mut writer, &err_line(&e.to_string()))?,
            },
            Request::Exec(fp) => match state.lookup(fp) {
                Some(prep) => {
                    let end = execute(
                        state,
                        &prep,
                        &mut reader,
                        &mut writer,
                        &mut line,
                        &mut counters,
                    )?;
                    finish(&mut writer, fp, end, &mut counters)?;
                }
                None => send(
                    &mut writer,
                    &err_line(&format!("no prepared plan under fingerprint {fp:016x}")),
                )?,
            },
            Request::Query(text) => match state.engine.prepare_query(&text) {
                Ok(prep) => {
                    let fp = state.register(prep);
                    let prep = state.lookup(fp).expect("just registered");
                    let end = execute(
                        state,
                        &prep,
                        &mut reader,
                        &mut writer,
                        &mut line,
                        &mut counters,
                    )?;
                    finish(&mut writer, fp, end, &mut counters)?;
                }
                Err(e) => send(&mut writer, &err_line(&e.to_string()))?,
            },
            Request::Stats => {
                let json = session_profile(id, &counters, state).to_json();
                send(&mut writer, &format!("STATS {}", json.to_string_compact()))?;
            }
            Request::Cancel => {
                // nothing in flight: acknowledge as a zero-row cancel
                send(&mut writer, &cancelled_line(0))?;
            }
            Request::Shutdown => {
                state.request_shutdown();
                send(&mut writer, "BYE")?;
                return Ok(());
            }
            Request::Quit => {
                send(&mut writer, "BYE")?;
                return Ok(());
            }
        }
    }
}

fn send(w: &mut BufWriter<Box<dyn Conn>>, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn finish(
    w: &mut BufWriter<Box<dyn Conn>>,
    fp: u64,
    end: ExecEnd,
    counters: &mut SessionCounters,
) -> std::io::Result<()> {
    counters.queries += 1;
    match end {
        ExecEnd::Done {
            rows,
            cached,
            version,
            ns,
        } => {
            counters.rows += rows;
            send(w, &done_line(rows, cached, fp, version, ns))
        }
        ExecEnd::Cancelled { rows } => {
            counters.rows += rows;
            counters.cancelled += 1;
            send(w, &cancelled_line(rows))
        }
        ExecEnd::Failed(msg) => send(w, &err_line(&msg)),
    }
}

/// Run one prepared plan for a session, streaming `ROW` lines.
///
/// Cache hit: the memoized rows are written straight out — no
/// admission, no executor, nothing materialized. Miss: admission first
/// (bounded wait), then the engine's streaming cursor with a
/// per-batch ceiling check on its `Residency` gauge and a per-batch
/// poll for a client `CANCEL` (or disconnect); completed results are
/// memoized for the snapshot's document version.
fn execute(
    state: &ServerState,
    prep: &PreparedQuery,
    reader: &mut BufReader<Box<dyn Conn>>,
    writer: &mut BufWriter<Box<dyn Conn>>,
    line: &mut String,
    counters: &mut SessionCounters,
) -> std::io::Result<ExecEnd> {
    let started = Instant::now();
    let handle = state.document(); // snapshot: swaps don't affect us mid-stream
    let key = (prep.fingerprint(), handle.version());

    if let Some(rows) = state.cache.get(key) {
        counters.rc_hits += 1;
        for xml in rows.iter() {
            writer.write_all(row_line(xml).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        return Ok(ExecEnd::Done {
            rows: rows.len() as u64,
            cached: true,
            version: handle.version(),
            ns: started.elapsed().as_nanos() as u64,
        });
    }
    counters.rc_misses += 1;

    let _permit = match state.admission.acquire() {
        Ok(p) => p,
        Err(AdmissionError::Timeout) => {
            counters.admission_timeouts += 1;
            return Ok(ExecEnd::Failed(
                "admission queue full: server at its resident-tuple budget".into(),
            ));
        }
    };

    let mut results = match state.engine.stream_prepared(prep, &handle) {
        Ok(r) => r,
        Err(e) => return Ok(ExecEnd::Failed(e.to_string())),
    };

    let per_query = state.admission.per_query();
    let mut emitted: u64 = 0;
    let mut collected: Option<Vec<String>> = Some(Vec::new());
    let outcome = loop {
        match results.next_batch() {
            Ok(Some(batch)) => {
                for t in batch.tuples.iter() {
                    let xml = t.get(0).as_str().unwrap_or("").to_string();
                    writer.write_all(row_line(&xml).as_bytes())?;
                    writer.write_all(b"\n")?;
                    emitted += 1;
                    if let Some(c) = collected.as_mut() {
                        if c.len() < state.config.result_cache_max_rows {
                            c.push(xml);
                        } else {
                            collected = None; // too big to memoize
                        }
                    }
                }
                writer.flush()?;
                if results.peak_resident_tuples() > per_query {
                    results.close();
                    counters.budget_aborts += 1;
                    break ExecEnd::Failed(format!(
                        "per-query budget exceeded: {} resident tuples > {per_query}",
                        results.peak_resident_tuples()
                    ));
                }
                if !state.config.stream_throttle.is_zero() {
                    std::thread::sleep(state.config.stream_throttle);
                }
                match poll_cancel(reader, line)? {
                    Poll::Cancel => {
                        results.close();
                        break ExecEnd::Cancelled { rows: emitted };
                    }
                    Poll::Disconnect => {
                        results.close();
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "client disconnected mid-stream",
                        ));
                    }
                    Poll::Quiet => {}
                }
            }
            Ok(None) => {
                if let Some(rows) = collected.take() {
                    state.cache.insert(key, Arc::new(rows));
                }
                break ExecEnd::Done {
                    rows: emitted,
                    cached: false,
                    version: handle.version(),
                    ns: started.elapsed().as_nanos() as u64,
                };
            }
            Err(e) => {
                results.close();
                break ExecEnd::Failed(e.to_string());
            }
        }
    };
    // permit drops here, after the stream released its resident state
    Ok(outcome)
}

enum Poll {
    Quiet,
    Cancel,
    Disconnect,
}

/// Non-blocking peek for a `CANCEL` between batches. A partial line
/// (no newline yet) stays in the session's persistent `line` buffer
/// across polls — and across the end of the stream, so a `CANCEL`
/// whose tail arrives late still parses (as a no-op cancel) in the
/// main loop. Any complete non-`CANCEL` line mid-stream is ignored.
fn poll_cancel(reader: &mut BufReader<Box<dyn Conn>>, line: &mut String) -> std::io::Result<Poll> {
    reader.get_ref().set_nonblocking_d(true)?;
    let mut out = Poll::Quiet;
    loop {
        match reader.read_line(line) {
            Ok(0) => {
                out = Poll::Disconnect;
                break;
            }
            Ok(_) => {
                let cancel = matches!(parse_request(line), Ok(Request::Cancel));
                line.clear();
                if cancel {
                    out = Poll::Cancel;
                    break;
                }
                // anything else sent mid-stream is swallowed
            }
            Err(ref e) if is_poll_timeout(e) => break,
            Err(e) => {
                reader.get_ref().set_nonblocking_d(false)?;
                return Err(e);
            }
        }
    }
    reader.get_ref().set_nonblocking_d(false)?;
    Ok(out)
}
