//! # uload-error — the unified error type of the ULoad engine
//!
//! Every fallible public entry point of the workspace returns
//! [`Result`]: parsing (XML, XAMs, XQuery), translation and pattern
//! extraction, containment preconditions, rewriting, storage and plan
//! evaluation. Dependency crates convert their internal error types via
//! `From` impls they define themselves (the enum lives below every
//! other crate in the graph), and the root `uload` façade re-exports it
//! as `uload::Error`.

use std::fmt;

/// The engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong across the engine layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Textual input (XML document, XAM, XQuery) failed to parse.
    Parse(String),
    /// A query parsed but could not be translated into patterns/plans.
    Translate(String),
    /// A pattern has no embedding into the summary — no conforming
    /// document can produce a result for it.
    UnsatisfiablePattern(String),
    /// No total rewriting of the query exists over the current views.
    /// The payload carries the index and text of the failing pattern.
    NoRewriting {
        pattern_index: usize,
        pattern: String,
    },
    /// A storage operation (view materialization, catalog lookup) failed.
    Storage(String),
    /// A logical plan failed to evaluate.
    Eval(String),
    /// Invalid engine configuration (thread counts, cache sizes…).
    Config(String),
    /// Filesystem / IO failure (CLI document loading).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Translate(m) => write!(f, "translation error: {m}"),
            Error::UnsatisfiablePattern(p) => {
                write!(f, "pattern is unsatisfiable under the summary:\n{p}")
            }
            Error::NoRewriting {
                pattern_index,
                pattern,
            } => write!(
                f,
                "query pattern #{pattern_index} cannot be rewritten over the views:\n{pattern}"
            ),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = Error::NoRewriting {
            pattern_index: 2,
            pattern: "//book".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("#2") && msg.contains("//book"), "{msg}");
        assert!(Error::Parse("x".into()).to_string().contains("parse"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(Error::from(io), Error::Io(_)));
    }
}
