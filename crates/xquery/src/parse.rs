//! Parser for the XQuery subset `Q` (§3.2).
//!
//! Supported grammar (matching the paper's items 1–5):
//!
//! ```text
//! query   := flwr | concat
//! concat  := item ("," item)*
//! item    := path | constructor | flwr | "(" query ")"
//! flwr    := "for" $v "in" path ("," $v "in" path)*
//!            ("where" cond ("and" cond)*)?
//!            "return" item
//! cond    := path cmp const | path cmp path | path ("ftcontains" str)?
//! path    := ("doc(" str ")" | "document(" str ")" | $v) step*
//!            | "/" … (leading absolute form, doc implied)
//! step    := ("/" | "//") (name | "*" | "@name" | "text()") pred*
//! pred    := "[" relpath (cmp const)? "]"
//! constructor := "<" tag ">" "{" query "}" … "</" tag ">"
//! ```

use std::fmt;

use algebra::CmpOp;

/// Error from the query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Node test of a path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// `*` — any element.
    Star,
    /// An element label.
    Label(String),
    /// `@name` — an attribute.
    Attr(String),
    /// `text()` — the node's value.
    Text,
}

/// One navigation step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// `true` for `//`, `false` for `/`.
    pub descendant: bool,
    pub test: NameTest,
    /// Bracketed predicates `[...]`.
    pub preds: Vec<Pred>,
}

/// A bracketed predicate: an existential relative path, optionally
/// compared to a constant (`[d/text() = 5]`, `[author]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub path: Vec<Step>,
    pub cmp: Option<(CmpOp, Const)>,
}

/// A constant in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    Str(String),
    Int(i64),
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRoot {
    /// `doc("name.xml")` or an absolute leading `/`.
    Doc(String),
    /// `$var`.
    Var(String),
}

/// A path expression: a root plus steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    pub root: PathRoot,
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Does the path end in `text()`?
    pub fn ends_in_text(&self) -> bool {
        matches!(
            self.steps.last(),
            Some(Step {
                test: NameTest::Text,
                ..
            })
        )
    }
}

/// A `where` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `path θ const`.
    CmpConst(PathExpr, CmpOp, Const),
    /// `path θ path` (a value join).
    CmpPath(PathExpr, CmpOp, PathExpr),
    /// `path ftcontains "word"` — full-text containment (§2.1.2's q''').
    FtContains(PathExpr, String),
}

/// A query in `Q`.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Path(PathExpr),
    /// `e1, e2` — concatenation.
    Concat(Vec<Query>),
    /// `<t>{ e }</t>` — element constructor.
    Element {
        tag: String,
        content: Vec<Query>,
    },
    /// for-where-return.
    Flwr {
        bindings: Vec<(String, PathExpr)>,
        conditions: Vec<Cond>,
        ret: Box<Query>,
    },
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

/// Parse a `Q` query.
///
/// ```
/// let q = xquery::parse_query(
///     r#"for $x in doc("bib.xml")//book where $x/year = "1999" return $x/author"#,
/// ).unwrap();
/// assert!(matches!(q, xquery::Query::Flwr { .. }));
/// ```
pub fn parse_query(text: &str) -> Result<Query, QueryParseError> {
    let mut p = P {
        s: text.as_bytes(),
        pos: 0,
    };
    let q = p.query()?;
    p.ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: m.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        let b = kw.as_bytes();
        self.s[self.pos..].starts_with(b)
            && !self
                .s
                .get(self.pos + b.len())
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn string_lit(&mut self) -> Result<String, QueryParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string literal"));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let out = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn query(&mut self) -> Result<Query, QueryParseError> {
        self.ws();
        let first = self.item()?;
        let mut items = vec![first];
        loop {
            self.ws();
            if self.eat(b',') {
                items.push(self.item()?);
            } else {
                break;
            }
        }
        if items.len() == 1 {
            Ok(items.pop().unwrap())
        } else {
            Ok(Query::Concat(items))
        }
    }

    fn item(&mut self) -> Result<Query, QueryParseError> {
        self.ws();
        if self.at_kw("for") {
            return self.flwr();
        }
        if self.peek() == Some(b'<') {
            return self.constructor();
        }
        if self.eat(b'(') {
            let q = self.query()?;
            self.ws();
            if !self.eat(b')') {
                return Err(self.err("expected `)`"));
            }
            return Ok(q);
        }
        Ok(Query::Path(self.path()?))
    }

    fn flwr(&mut self) -> Result<Query, QueryParseError> {
        self.ws();
        if !self.eat_kw("for") {
            return Err(self.err("expected `for`"));
        }
        let mut bindings = Vec::new();
        loop {
            self.ws();
            if !self.eat(b'$') {
                return Err(self.err("expected `$variable`"));
            }
            let var = self.ident()?;
            self.ws();
            if !self.eat_kw("in") {
                return Err(self.err("expected `in`"));
            }
            let path = self.path()?;
            bindings.push((var, path));
            self.ws();
            if self.eat(b',') {
                continue;
            }
            break;
        }
        self.ws();
        let mut conditions = Vec::new();
        if self.eat_kw("where") {
            loop {
                conditions.push(self.cond()?);
                self.ws();
                if self.eat_kw("and") {
                    continue;
                }
                break;
            }
        }
        self.ws();
        if !self.eat_kw("return") {
            return Err(self.err("expected `return`"));
        }
        let ret = self.item()?;
        Ok(Query::Flwr {
            bindings,
            conditions,
            ret: Box::new(ret),
        })
    }

    fn cond(&mut self) -> Result<Cond, QueryParseError> {
        let left = self.path()?;
        self.ws();
        if self.eat_kw("ftcontains") {
            self.ws();
            let w = self.string_lit()?;
            return Ok(Cond::FtContains(left, w));
        }
        let op = self.cmp_op()?;
        self.ws();
        match self.peek() {
            Some(b'"') => Ok(Cond::CmpConst(left, op, Const::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                Ok(Cond::CmpConst(left, op, Const::Int(self.int_lit()?)))
            }
            Some(b'$') | Some(b'd') | Some(b'/') => Ok(Cond::CmpPath(left, op, self.path()?)),
            _ => Err(self.err("expected constant or path after comparison")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryParseError> {
        self.ws();
        if self.eat_kw("!=") {
            Ok(CmpOp::Ne)
        } else if self.eat_kw("<=") {
            Ok(CmpOp::Le)
        } else if self.eat_kw(">=") {
            Ok(CmpOp::Ge)
        } else if self.eat(b'=') {
            Ok(CmpOp::Eq)
        } else if self.eat(b'<') {
            Ok(CmpOp::Lt)
        } else if self.eat(b'>') {
            Ok(CmpOp::Gt)
        } else {
            Err(self.err("expected comparison operator"))
        }
    }

    fn int_lit(&mut self) -> Result<i64, QueryParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("expected integer"))
    }

    fn path(&mut self) -> Result<PathExpr, QueryParseError> {
        self.ws();
        let root = if self.eat(b'$') {
            PathRoot::Var(self.ident()?)
        } else if self.eat_kw("doc") || self.eat_kw("document") {
            self.ws();
            if !self.eat(b'(') {
                return Err(self.err("expected `(`"));
            }
            self.ws();
            let name = self.string_lit()?;
            self.ws();
            if !self.eat(b')') {
                return Err(self.err("expected `)`"));
            }
            PathRoot::Doc(name)
        } else if self.peek() == Some(b'/') {
            PathRoot::Doc(String::new()) // absolute path, implicit document
        } else {
            return Err(self.err("expected `doc(…)`, `$var` or `/`"));
        };
        let mut steps = Vec::new();
        loop {
            self.ws();
            if self.peek() != Some(b'/') {
                break;
            }
            self.pos += 1;
            let descendant = self.eat(b'/');
            let test = self.name_test()?;
            let mut preds = Vec::new();
            while self.peek() == Some(b'[') {
                preds.push(self.pred()?);
            }
            steps.push(Step {
                descendant,
                test,
                preds,
            });
        }
        if steps.is_empty() && matches!(root, PathRoot::Doc(_)) {
            return Err(self.err("absolute path needs at least one step"));
        }
        Ok(PathExpr { root, steps })
    }

    fn name_test(&mut self) -> Result<NameTest, QueryParseError> {
        self.ws();
        if self.eat(b'*') {
            return Ok(NameTest::Star);
        }
        if self.eat(b'@') {
            return Ok(NameTest::Attr(self.ident()?));
        }
        let id = self.ident()?;
        if id == "text" && self.eat(b'(') {
            if !self.eat(b')') {
                return Err(self.err("expected `)` after text("));
            }
            return Ok(NameTest::Text);
        }
        Ok(NameTest::Label(id))
    }

    fn pred(&mut self) -> Result<Pred, QueryParseError> {
        if !self.eat(b'[') {
            return Err(self.err("expected `[`"));
        }
        // relative path inside the predicate (no leading slash needed)
        let mut steps = Vec::new();
        loop {
            self.ws();
            let descendant = if self.peek() == Some(b'/') {
                self.pos += 1;
                self.eat(b'/')
            } else if steps.is_empty() {
                false // first step given without slash: child
            } else {
                break;
            };
            if self.peek() == Some(b']') || self.peek() == Some(b'=') {
                break;
            }
            let test = self.name_test()?;
            steps.push(Step {
                descendant,
                test,
                preds: Vec::new(),
            });
            if !matches!(self.peek(), Some(b'/')) {
                break;
            }
        }
        self.ws();
        let cmp = if matches!(self.peek(), Some(b'=' | b'<' | b'>' | b'!')) {
            let op = self.cmp_op()?;
            self.ws();
            let c = match self.peek() {
                Some(b'"') => Const::Str(self.string_lit()?),
                _ => Const::Int(self.int_lit()?),
            };
            Some((op, c))
        } else {
            None
        };
        self.ws();
        if !self.eat(b']') {
            return Err(self.err("expected `]`"));
        }
        Ok(Pred { path: steps, cmp })
    }

    fn constructor(&mut self) -> Result<Query, QueryParseError> {
        if !self.eat(b'<') {
            return Err(self.err("expected `<`"));
        }
        let tag = self.ident()?;
        self.ws();
        if !self.eat(b'>') {
            return Err(self.err("expected `>`"));
        }
        let mut content = Vec::new();
        loop {
            self.ws();
            if self.s[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.ident()?;
                if close != tag {
                    return Err(self.err(&format!(
                        "mismatched constructor: <{tag}> closed by </{close}>"
                    )));
                }
                self.ws();
                if !self.eat(b'>') {
                    return Err(self.err("expected `>`"));
                }
                break;
            }
            if self.eat(b'{') {
                let q = self.query()?;
                self.ws();
                if !self.eat(b'}') {
                    return Err(self.err("expected `}`"));
                }
                content.push(q);
            } else if self.peek() == Some(b'<') {
                content.push(self.constructor()?);
            } else if self.at_kw("for") {
                // the paper writes nested FLWRs directly inside element
                // content (Fig. 3.1); accept them without enclosing braces
                content.push(self.flwr()?);
            } else {
                return Err(self.err("expected `{…}`, nested element, or close tag"));
            }
            // allow commas between enclosed expressions
            self.ws();
            let _ = self.eat(b',');
        }
        Ok(Query::Element { tag, content })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_and_doc_paths() {
        let q = parse_query(r#"doc("bib.xml")//book/title"#).unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(p.root, PathRoot::Doc("bib.xml".into()));
        assert_eq!(p.steps.len(), 2);
        assert!(p.steps[0].descendant);
        assert!(!p.steps[1].descendant);
        // leading-slash form
        let q = parse_query("/a/b//c").unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(p.steps.len(), 3);
    }

    #[test]
    fn parses_name_tests() {
        let q = parse_query(r#"doc("d")//*/@id/text()"#).unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(p.steps[0].test, NameTest::Star);
        assert_eq!(p.steps[1].test, NameTest::Attr("id".into()));
        assert_eq!(p.steps[2].test, NameTest::Text);
        assert!(p.ends_in_text());
    }

    #[test]
    fn parses_predicates() {
        let q = parse_query(r#"//a[b/c]//e[d/text() = 5]"#).unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(p.steps[0].preds.len(), 1);
        assert_eq!(p.steps[0].preds[0].path.len(), 2);
        assert!(p.steps[0].preds[0].cmp.is_none());
        let pr = &p.steps[1].preds[0];
        assert_eq!(pr.cmp, Some((CmpOp::Eq, Const::Int(5))));
        assert_eq!(pr.path.last().unwrap().test, NameTest::Text);
    }

    #[test]
    fn parses_flwr() {
        let q = parse_query(
            r#"for $x in doc("bib.xml")//book
               where $x/year = "1999" and $x/title = "Data on the Web"
               return $x/author"#,
        )
        .unwrap();
        let Query::Flwr {
            bindings,
            conditions,
            ret,
        } = q
        else {
            panic!()
        };
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].0, "x");
        assert_eq!(conditions.len(), 2);
        assert!(matches!(*ret, Query::Path(_)));
    }

    #[test]
    fn parses_nested_flwr_with_constructors() {
        let q = parse_query(
            r#"for $x in doc("X")//item return
               <res_item>{$x/name},
                 for $y in $x//description return <res_desc>{$y//listitem}</res_desc>
               </res_item>"#,
        )
        .unwrap();
        let Query::Flwr { ret, .. } = q else { panic!() };
        let Query::Element { tag, content } = *ret else {
            panic!()
        };
        assert_eq!(tag, "res_item");
        assert_eq!(content.len(), 2);
        assert!(matches!(content[1], Query::Flwr { .. }));
    }

    #[test]
    fn parses_multi_variable_for() {
        let q =
            parse_query("for $x in /a/*, $y in $x//b where $y/c > 3 return <r>{$x/d}{$y/e}</r>")
                .unwrap();
        let Query::Flwr { bindings, .. } = q else {
            panic!()
        };
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[1].1.root, PathRoot::Var("x".into()));
    }

    #[test]
    fn parses_value_join_condition() {
        let q = parse_query("for $x in //a, $y in //b where $x/k = $y/k return <r>{$x}</r>");
        // `$x` alone (no steps) is a valid variable path
        assert!(q.is_ok(), "{q:?}");
    }

    #[test]
    fn parses_ftcontains() {
        let q = parse_query(
            r#"for $x in doc("bib.xml")//book/title where $x ftcontains "Web" return $x"#,
        )
        .unwrap();
        let Query::Flwr { conditions, .. } = q else {
            panic!()
        };
        assert!(matches!(conditions[0], Cond::FtContains(..)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("for $x doc(\"d\")//a return $x").is_err());
        assert!(parse_query("<r>{//a}</s>").is_err());
        assert!(parse_query("//a[").is_err());
        assert!(parse_query("for $x in //a return").is_err());
        assert!(parse_query("").is_err());
    }
}
