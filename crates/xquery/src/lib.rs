//! # xquery — the XQuery subset `Q`, its translation and pattern extraction
//!
//! Chapter 3 of the paper. The crate provides:
//!
//! * [`parse`] — a parser for the query language `Q` of §3.2: core XPath
//!   (`/`, `//`, `*`, `[]`, `text()`, attribute steps), paths rooted in a
//!   document or a variable, concatenation, element constructors and
//!   (nested) for-where-return blocks;
//! * [`extract`] — the pattern extraction algorithm of §3.3: a query is
//!   decomposed into **maximal** XAM query patterns — crucially able to
//!   span *across nested FLWR blocks* (the chapter's headline claim) — plus
//!   a combination skeleton (cartesian products, value joins, compensating
//!   selections) and a tagging template;
//! * [`translate`] — the algebraic translation `alg(q)`: an executable
//!   [`algebra::LogicalPlan`] over the extracted patterns, ending in the
//!   `xml` construction operator, so the whole pipeline can actually run
//!   queries (§1.2's architecture).

pub mod extract;
pub mod parse;
pub mod translate;

pub use extract::{extract_patterns, ExtractedQuery};
pub use parse::{parse_query, NameTest, PathExpr, Query, QueryParseError, Step};
pub use translate::{execute_query, execute_query_with_plan, query_plan};
