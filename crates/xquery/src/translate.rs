//! Algebraic translation `alg(q)` (§3.3.1–3.3.2) and end-to-end execution.
//!
//! The combined plan mirrors the paper's final form of §3.3.3:
//!
//! ```text
//! alg(q) = xml_templ( σ_post( ⟦XQ_1⟧ × ⟦XQ_2⟧ × … ) )
//! ```
//!
//! where each `⟦XQ_i⟧` is the structural-join tree of one maximal query
//! pattern (its algebraic XAM semantics, Chapter 2), `σ_post` applies the
//! value joins / `ftcontains` residue, and `xml_templ` tags the result.
//! [`execute_query`] runs the pipeline directly against the tag-derived
//! collections of a document — the "default storage" path; the rewriting
//! crate substitutes materialized views for the pattern plans instead.

use algebra::{Catalog, EvalError, Evaluator, LogicalPlan, Path, Relation};
use xmltree::Document;

use crate::extract::{extract_patterns, ExtractError, ExtractedQuery};
use crate::parse::{parse_query, Query, QueryParseError};

/// Everything that can go wrong when running a query.
#[derive(Debug)]
pub enum QueryError {
    Parse(QueryParseError),
    Extract(ExtractError),
    Eval(EvalError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Extract(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryParseError> for QueryError {
    fn from(e: QueryParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<ExtractError> for QueryError {
    fn from(e: ExtractError) -> Self {
        QueryError::Extract(e)
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        QueryError::Eval(e)
    }
}

/// Build the executable logical plan of an extracted query, where each
/// pattern is answered by the given per-pattern plan (index-aligned with
/// `ex.patterns`). The rewriting layer passes view-based plans here; the
/// default path passes the patterns' own structural-join plans.
pub fn combine_plans(ex: &ExtractedQuery, pattern_plans: Vec<LogicalPlan>) -> LogicalPlan {
    let mut iter = pattern_plans.into_iter();
    let mut plan = iter.next().expect("at least one pattern");
    for p in iter {
        plan = plan.product(p);
    }
    for f in &ex.post_filters {
        plan = plan.select(f.clone());
    }
    LogicalPlan::XmlTemplate {
        input: Box::new(plan),
        templ: ex.template.clone(),
    }
}

/// The default per-pattern plan: the pattern's own algebraic semantics
/// over tag-derived collections, projected (duplicate-preserving — FLWR
/// iteration keeps multiplicities) to its output columns.
pub fn default_pattern_plan(xam: &xam_core::Xam) -> LogicalPlan {
    let cols: Vec<Path> = xam_core::semantics::output_columns(xam)
        .into_iter()
        .map(|c| Path::new(c.path))
        .collect();
    LogicalPlan::Project {
        input: Box::new(xam_core::semantics::build_join_plan(xam)),
        cols,
        distinct: false,
    }
}

/// Translate a query text to (extraction, combined logical plan).
pub fn query_plan(text: &str) -> Result<(ExtractedQuery, LogicalPlan), QueryError> {
    let q: Query = parse_query(text)?;
    let ex = extract_patterns(&q)?;
    let plans = ex.patterns.iter().map(default_pattern_plan).collect();
    let plan = combine_plans(&ex, plans);
    Ok((ex, plan))
}

/// Parse, extract, translate and execute a query over a document,
/// returning one serialized XML string per result item.
///
/// ```
/// let doc = xmltree::generate::bib_sample();
/// let out = xquery::execute_query(
///     r#"for $b in doc("bib.xml")//book return <info>{$b/title}</info>"#,
///     &doc,
/// ).unwrap();
/// assert_eq!(out.len(), 2);
/// assert!(out[0].contains("<title>Data on the Web</title>"));
/// ```
pub fn execute_query(text: &str, doc: &Document) -> Result<Vec<String>, QueryError> {
    execute_query_with_plan(text, doc).map(|(out, _)| out)
}

/// [`execute_query`], additionally returning the combined logical plan
/// that was executed (callers fingerprint or inspect it).
pub fn execute_query_with_plan(
    text: &str,
    doc: &Document,
) -> Result<(Vec<String>, LogicalPlan), QueryError> {
    let (ex, plan) = query_plan(text)?;
    let mut catalog = Catalog::new();
    for p in &ex.patterns {
        merge_catalog(&mut catalog, xam_core::semantics::build_catalog(p, doc));
    }
    let ev = Evaluator::with_document(&catalog, doc);
    let rel: Relation = ev.eval(&plan)?;
    let out = rel
        .tuples
        .iter()
        .map(|t| t.get(0).as_str().unwrap_or("").to_string())
        .collect();
    Ok((out, plan))
}

fn merge_catalog(into: &mut Catalog, from: Catalog) {
    for name in from.names().map(str::to_string).collect::<Vec<_>>() {
        if let Some(rel) = from.get(&name) {
            into.insert(name.clone(), rel.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::{bib_document, bib_sample, xmark};

    #[test]
    fn simple_flwr_executes() {
        let doc = bib_sample();
        let out = execute_query(
            r#"for $b in doc("bib.xml")//book return <info>{$b/author}{$b/title}</info>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("<author>Abiteboul</author>"));
        assert!(out[0].contains("<author>Suciu</author>"));
        assert!(out[0].contains("<title>Data on the Web</title>"));
        assert!(out[1].contains("The Syntactic Web"));
    }

    #[test]
    fn where_filters() {
        let doc = bib_document();
        let out = execute_query(
            r#"for $x in doc("bib.xml")//book where $x/year = "1999" return <t>{$x/title/text()}</t>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out, vec!["<t>Data on the Web</t>"]);
    }

    #[test]
    fn empty_subexpressions_still_construct() {
        // the §3.1 requirement: constructors emit even for empty content
        let doc = bib_sample();
        let out =
            execute_query(r#"for $x in doc("d")//book return <r>{$x/@year}</r>"#, &doc).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], "<r></r>"); // the second book has no year
    }

    #[test]
    fn nested_blocks_group_correctly() {
        let doc = xmark(2, 5);
        let out = execute_query(
            r#"for $x in doc("X")//item return
               <res_item>{$x/name/text()},
                 for $y in $x//description return <res_desc>{$y//listitem}</res_desc>
               </res_item>"#,
            &doc,
        )
        .unwrap();
        // one result per item
        let items = doc.elements().filter(|&n| doc.label(n) == "item").count();
        assert_eq!(out.len(), items);
        for o in &out {
            assert!(o.starts_with("<res_item>"));
        }
        // at least one item has listitems inside its res_desc
        assert!(out.iter().any(|o| o.contains("<res_desc><listitem")));
    }

    #[test]
    fn ftcontains_query_runs() {
        let doc = bib_sample();
        let out = execute_query(
            r#"for $t in doc("d")//book/title where $t ftcontains "Web" return <hit>{$t/text()}</hit>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 2); // both book titles contain "Web"
    }

    #[test]
    fn value_join_across_patterns() {
        // books and theses published the same year
        let doc = bib_sample();
        let out = execute_query(
            r#"for $b in doc("d")//book, $p in doc("d")//phdthesis
               where $b/@year = $p/@year
               return <pair>{$b/title/text()}</pair>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 0); // 1999 ≠ 2004
        let out = execute_query(
            r#"for $b in doc("d")//book, $p in doc("d")//phdthesis
               where $b/@year < $p/@year
               return <pair>{$b/title/text()}</pair>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("Data on the Web"));
    }

    #[test]
    fn plain_path_query() {
        let doc = bib_sample();
        let out = execute_query(r#"doc("d")//book/title"#, &doc).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("<title>"));
    }

    #[test]
    fn multiplicity_preserved() {
        // two authors on the first book → two rows for the author query
        let doc = bib_sample();
        let out = execute_query(
            r#"for $a in doc("d")//book/author return <a>{$a/text()}</a>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn bracket_predicate_filters_binding() {
        let doc = bib_sample();
        let out = execute_query(
            r#"for $b in doc("d")//book[author] return <t>{$b/title/text()}</t>"#,
            &doc,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let out =
            execute_query(r#"doc("d")//book[title = "Data on the Web"]/author"#, &doc).unwrap();
        assert_eq!(out.len(), 2); // Abiteboul, Suciu
    }
}
