//! Pattern extraction (§3.3): from a `Q` query to **maximal** XAM query
//! patterns plus a combination skeleton and a tagging template.
//!
//! The extractor walks the query, maintaining a mapping from variables to
//! pattern nodes:
//!
//! * a `for` binding rooted at `doc(…)` opens a **new pattern** (distinct
//!   patterns combine by cartesian product, as in the `V10 × V11`
//!   rewriting of §3.3.3);
//! * a binding rooted at a variable **extends that variable's pattern** —
//!   this is what makes patterns *span nested FLWR blocks*, the chapter's
//!   headline improvement over per-block extraction;
//! * `where` conditions against constants become value predicates on
//!   semijoin branches inside the pattern; conditions relating two paths
//!   (value joins) and `ftcontains` become *post-filters* on the combined
//!   plan — exactly the residue that tree patterns cannot absorb;
//! * `return` expressions become nest-outerjoin (`no`) branches storing
//!   `Cont` (or `Val` after `text()`): optional because element
//!   constructors must produce output even for empty sub-results (§3.1),
//!   nested because all matches are grouped into one constructed element.
//!
//! Where the paper's flat example patterns need a compensating selection
//! (the `d → e` dependency of §3.1), our extractor places inner-block
//! branches *under* the binding node with nested edges, so the dependency
//! is captured structurally.

use std::collections::HashMap;

use algebra::{CmpOp, Operand, Path as APath, Predicate, Template, Value};
use xam_core::ast::{
    Axis, EdgeSem, Formula, FormulaConst, IdKind, Xam, XamEdge, XamNode, XamNodeId,
};

use crate::parse::{Cond, Const, NameTest, PathExpr, PathRoot, Pred, Query, Step};

/// The result of pattern extraction.
#[derive(Debug, Clone)]
pub struct ExtractedQuery {
    /// The maximal query patterns (`XQ_1 … XQ_n` of Figure 5.1), combined
    /// by cartesian product in order.
    pub patterns: Vec<Xam>,
    /// Post-filters on the combined schema: value joins between patterns
    /// and other residue the pattern language cannot express.
    pub post_filters: Vec<Predicate>,
    /// The tagging template producing the serialized result.
    pub template: Template,
}

/// Extraction error (unbound variables, unsupported shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern extraction error: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

struct Extractor {
    patterns: Vec<Xam>,
    /// variable → (pattern index, node id)
    vars: HashMap<String, (usize, XamNodeId)>,
    /// node → (pattern index, dotted nest prefix of its columns)
    prefixes: Vec<HashMap<XamNodeId, String>>,
    post_filters: Vec<Predicate>,
    counter: u32,
}

impl Extractor {
    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}{}", self.counter)
    }

    /// Column path of a stored attribute of a node.
    fn col(&self, pat: usize, n: XamNodeId, suffix: &str) -> String {
        let name = &self.patterns[pat].node(n).name;
        format!("{}{}_{}", self.prefixes[pat][&n], name, suffix)
    }

    /// Append one pattern node for a step.
    fn add_step_node(
        &mut self,
        pat: usize,
        under: XamNodeId,
        step: &Step,
        sem: EdgeSem,
    ) -> Result<XamNodeId, ExtractError> {
        let axis = if step.descendant {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let (label, is_attr) = match &step.test {
            NameTest::Star => (None, false),
            NameTest::Label(l) => (Some(l.clone()), false),
            NameTest::Attr(a) => (Some(a.clone()), true),
            NameTest::Text => {
                return Err(ExtractError("text() only allowed as the last step".into()))
            }
        };
        let base = label.as_deref().unwrap_or("star");
        let mut node = XamNode::star(self.fresh(base));
        node.tag_predicate = label;
        node.is_attribute = is_attr;
        node.edge = XamEdge { axis, sem };
        let id = self.patterns[pat].add_child(under, node);
        // maintain prefixes
        let parent_prefix = self.prefixes[pat][&under].clone();
        let prefix = if sem.is_nested() {
            format!("{parent_prefix}{}.", self.patterns[pat].node(id).name)
        } else {
            parent_prefix
        };
        self.prefixes[pat].insert(id, prefix);
        // bracketed predicates become semijoin branches
        for p in &step.preds {
            self.add_pred_branch(pat, id, p)?;
        }
        Ok(id)
    }

    /// A bracketed predicate `[path (θ c)?]` as a semijoin branch.
    fn add_pred_branch(
        &mut self,
        pat: usize,
        under: XamNodeId,
        pred: &Pred,
    ) -> Result<(), ExtractError> {
        let mut cur = under;
        let mut steps = pred.path.clone();
        // a trailing text() step shifts the comparison to its parent node
        let ends_text = matches!(steps.last(), Some(s) if s.test == NameTest::Text);
        if ends_text {
            steps.pop();
        }
        for (i, s) in steps.iter().enumerate() {
            let sem = if i == 0 { EdgeSem::Semi } else { EdgeSem::Join };
            cur = self.add_step_node(pat, cur, s, sem)?;
        }
        if let Some((op, c)) = &pred.cmp {
            let target = if cur == under {
                under // `[text() = c]` on the node itself
            } else {
                cur
            };
            let f = Formula::Cmp(
                *op,
                match c {
                    Const::Str(s) => FormulaConst::Str(s.clone()),
                    Const::Int(i) => FormulaConst::Int(*i),
                },
            );
            let node = self.patterns[pat].node_mut(target);
            let prev = std::mem::replace(&mut node.value_predicate, Formula::True);
            node.value_predicate = prev.and(f);
        } else if cur == under {
            return Err(ExtractError("empty predicate".into()));
        }
        Ok(())
    }

    /// Resolve a path expression's anchor: (pattern, node to extend from,
    /// `None` node = extend from `⊤`).
    fn anchor(
        &mut self,
        path: &PathExpr,
        grouped: bool,
    ) -> Result<(usize, Option<XamNodeId>), ExtractError> {
        match &path.root {
            PathRoot::Var(v) => {
                let &(pat, node) = self
                    .vars
                    .get(v)
                    .ok_or_else(|| ExtractError(format!("unbound variable ${v}")))?;
                Ok((pat, Some(node)))
            }
            PathRoot::Doc(_) => {
                // new pattern
                let mut xam = Xam::top();
                xam.ordered = true;
                self.patterns.push(xam);
                let mut prefix = HashMap::new();
                prefix.insert(XamNodeId::TOP, String::new());
                self.prefixes.push(prefix);
                let _ = grouped; // ⊤-edge nesting handled by the caller
                Ok((self.patterns.len() - 1, None))
            }
        }
    }

    /// Materialize the chain of a path expression. `first_sem` is the edge
    /// semantics of the first step; later steps are plain joins. Returns
    /// (pattern, final node, whether final result is the node's value).
    fn add_path(
        &mut self,
        path: &PathExpr,
        first_sem: EdgeSem,
    ) -> Result<(usize, XamNodeId, bool), ExtractError> {
        let grouped = first_sem.is_nested();
        let (pat, mut cur) = self.anchor(path, grouped)?;
        let mut steps = path.steps.clone();
        let ends_text = matches!(steps.last(), Some(s) if s.test == NameTest::Text);
        if ends_text {
            steps.pop();
        }
        if steps.is_empty() {
            // bare `$x` (or bare doc route, rejected by the parser)
            let node =
                cur.ok_or_else(|| ExtractError("document root cannot be returned".into()))?;
            return Ok((pat, node, ends_text));
        }
        for (i, s) in steps.iter().enumerate() {
            let under = cur.unwrap_or(XamNodeId::TOP);
            let sem = if i == 0 { first_sem } else { EdgeSem::Join };
            cur = Some(self.add_step_node(pat, under, s, sem)?);
        }
        Ok((pat, cur.unwrap(), ends_text))
    }

    /// Mark a node as stored for output and return its column path.
    fn store_output(&mut self, pat: usize, node: XamNodeId, text: bool) -> String {
        let n = self.patterns[pat].node_mut(node);
        if text || n.is_attribute {
            n.stores_val = true;
            self.col(pat, node, "Val")
        } else {
            n.stores_cont = true;
            self.col(pat, node, "Cont")
        }
    }

    /// A column path relative to the already-open nest prefix: builds the
    /// `ForEach` chain for the remaining nest segments.
    fn column_template(&self, col: &str, open_prefix: &str) -> Template {
        let rest = col.strip_prefix(open_prefix).unwrap_or(col);
        let segs: Vec<&str> = rest.split('.').collect();
        let mut t = Template::attr(*segs.last().unwrap());
        for seg in segs[..segs.len() - 1].iter().rev() {
            t = Template::for_each(*seg, vec![t]);
        }
        t
    }

    /// Walk a query in return position, producing templates.
    /// `grouped`: inside an element constructor. `open_prefix`: nest
    /// fields already iterated by enclosing templates.
    fn walk(
        &mut self,
        q: &Query,
        grouped: bool,
        open_prefix: &str,
    ) -> Result<Vec<Template>, ExtractError> {
        match q {
            Query::Concat(items) => {
                let mut out = Vec::new();
                for i in items {
                    out.extend(self.walk(i, grouped, open_prefix)?);
                }
                Ok(out)
            }
            Query::Element { tag, content } => {
                let mut children = Vec::new();
                for c in content {
                    children.extend(self.walk(c, true, open_prefix)?);
                }
                Ok(vec![Template::elem(tag.clone(), children)])
            }
            Query::Path(p) => {
                let sem = if grouped {
                    EdgeSem::NestOuter
                } else {
                    EdgeSem::Join
                };
                let (pat, node, text) = self.add_path(p, sem)?;
                // a new doc-rooted pattern appearing in grouped position
                // must nest entirely (its ⊤ edge becomes nested)
                if matches!(p.root, PathRoot::Doc(_)) && grouped {
                    let first = self.patterns[pat].children(XamNodeId::TOP)[0];
                    self.patterns[pat].node_mut(first).edge.sem = EdgeSem::NestOuter;
                    // fix prefixes below
                    self.refresh_prefixes(pat);
                }
                let col = self.store_output(pat, node, text);
                Ok(vec![self.column_template(&col, open_prefix)])
            }
            Query::Flwr {
                bindings,
                conditions,
                ret,
            } => {
                let saved_vars = self.vars.clone();
                // prefix segments opened by this block's bindings
                let mut opened = String::from(open_prefix);
                let mut nest_fields: Vec<String> = Vec::new();
                for (var, path) in bindings {
                    let sem = if grouped {
                        EdgeSem::NestOuter
                    } else {
                        EdgeSem::Join
                    };
                    let (pat, node, text) = self.add_path(path, sem)?;
                    if text {
                        return Err(ExtractError(
                            "for-binding over text() is not supported".into(),
                        ));
                    }
                    if matches!(path.root, PathRoot::Doc(_)) && grouped {
                        let first = self.patterns[pat].children(XamNodeId::TOP)[0];
                        self.patterns[pat].node_mut(first).edge.sem = EdgeSem::NestOuter;
                        self.refresh_prefixes(pat);
                    }
                    // binding nodes keep their (structural) identity so the
                    // iteration multiplicity survives projections
                    self.patterns[pat].node_mut(node).stores_id = Some(IdKind::Structural);
                    self.vars.insert(var.clone(), (pat, node));
                    if grouped {
                        // the first chain node opened a nest field
                        let np = &self.prefixes[pat][&node];
                        if np.len() > opened.len() && np.starts_with(opened.as_str()) {
                            let new_segs = np[opened.len()..]
                                .trim_end_matches('.')
                                .split('.')
                                .map(|s| s.to_string())
                                .collect::<Vec<_>>();
                            nest_fields.extend(new_segs);
                            opened = np.clone();
                        }
                    }
                }
                for c in conditions {
                    self.add_condition(c)?;
                }
                let inner = self.walk(ret, grouped, &opened)?;
                self.vars = saved_vars;
                // wrap inner templates in the ForEach chain of the nests
                let mut out = inner;
                for f in nest_fields.into_iter().rev() {
                    out = vec![Template::for_each(f, out)];
                }
                Ok(out)
            }
        }
    }

    fn refresh_prefixes(&mut self, pat: usize) {
        // recompute all prefixes of a pattern after edge-sem changes
        let xam = &self.patterns[pat];
        let mut map = HashMap::new();
        map.insert(XamNodeId::TOP, String::new());
        for n in xam.pattern_nodes() {
            let p = xam.parent(n).unwrap();
            let pp = map[&p].clone();
            let prefix = if xam.node(n).edge.sem.is_nested() {
                format!("{pp}{}.", xam.node(n).name)
            } else {
                pp
            };
            map.insert(n, prefix);
        }
        self.prefixes[pat] = map;
    }

    fn add_condition(&mut self, c: &Cond) -> Result<(), ExtractError> {
        match c {
            Cond::CmpConst(path, op, konst) => {
                // a semijoin branch with a value predicate: filters the
                // binding without multiplying it
                let (pat, node, text) = self.add_path(path, EdgeSem::Semi)?;
                let _ = text; // comparison applies to the node's value either way
                let f = Formula::Cmp(
                    *op,
                    match konst {
                        Const::Str(s) => FormulaConst::Str(s.clone()),
                        Const::Int(i) => FormulaConst::Int(*i),
                    },
                );
                let n = self.patterns[pat].node_mut(node);
                let prev = std::mem::replace(&mut n.value_predicate, Formula::True);
                n.value_predicate = prev.and(f);
                Ok(())
            }
            Cond::CmpPath(l, op, r) => {
                // value join: store both values, filter on the combined plan
                let (lp, ln, _) = self.add_path(l, EdgeSem::NestOuter)?;
                self.patterns[lp].node_mut(ln).stores_val = true;
                let lcol = self.col(lp, ln, "Val");
                let (rp, rn, _) = self.add_path(r, EdgeSem::NestOuter)?;
                self.patterns[rp].node_mut(rn).stores_val = true;
                let rcol = self.col(rp, rn, "Val");
                self.post_filters.push(Predicate::col_cmp(lcol, *op, rcol));
                Ok(())
            }
            Cond::FtContains(path, word) => {
                let (pat, node, _) = self.add_path(path, EdgeSem::NestOuter)?;
                self.patterns[pat].node_mut(node).stores_val = true;
                let col = self.col(pat, node, "Val");
                self.post_filters.push(Predicate::Cmp(
                    Operand::Col(APath::new(col)),
                    CmpOp::Contains,
                    Operand::Const(Value::str(word)),
                ));
                Ok(())
            }
        }
    }
}

/// Extract the maximal patterns, post-filters and tagging template from a
/// query.
///
/// ```
/// let q = xquery::parse_query(
///     r#"for $x in doc("bib.xml")//book return <info>{$x/author}{$x/title}</info>"#,
/// ).unwrap();
/// let ex = xquery::extract_patterns(&q).unwrap();
/// assert_eq!(ex.patterns.len(), 1); // one maximal pattern
/// assert_eq!(ex.patterns[0].pattern_size(), 3); // book, author, title
/// ```
pub fn extract_patterns(q: &Query) -> Result<ExtractedQuery, ExtractError> {
    let mut ex = Extractor {
        patterns: Vec::new(),
        vars: HashMap::new(),
        prefixes: Vec::new(),
        post_filters: Vec::new(),
        counter: 0,
    };
    let templates = ex.walk(q, false, "")?;
    // every pattern must store at least the ID of its top node so empty
    // patterns (pure iteration, e.g. `for $x in //a return <r></r>`)
    // still drive the iteration
    for (i, p) in ex.patterns.iter_mut().enumerate() {
        if p.return_nodes().is_empty() {
            if let Some(&first) = p.children(XamNodeId::TOP).first() {
                p.node_mut(first).stores_id = Some(IdKind::Structural);
            }
            let _ = i;
        }
    }
    let template = match templates.len() {
        1 => templates.into_iter().next().unwrap(),
        _ => Template::elem("result", templates),
    };
    Ok(ExtractedQuery {
        patterns: ex.patterns,
        post_filters: ex.post_filters,
        template,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn extract(q: &str) -> ExtractedQuery {
        extract_patterns(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn single_pattern_for_simple_query() {
        let ex =
            extract(r#"for $x in doc("bib.xml")//book return <info>{$x/author}{$x/title}</info>"#);
        assert_eq!(ex.patterns.len(), 1);
        let p = &ex.patterns[0];
        assert_eq!(p.pattern_size(), 3);
        // author and title branches are nest-outer (grouped, optional)
        let book = p.children(xam_core::XamNodeId::TOP)[0];
        for &c in p.children(book) {
            assert_eq!(p.node(c).edge.sem, EdgeSem::NestOuter);
            assert!(p.node(c).stores_cont);
        }
    }

    #[test]
    fn patterns_span_nested_blocks() {
        // the motivating shape of §3.1: the inner for over $y extends $x's
        // pattern rather than opening a new one
        let ex = extract(
            r#"for $x in doc("X")//item return
               <res_item>{$x/name},
                 for $y in $x//description return <res_desc>{$y//listitem}</res_desc>
               </res_item>"#,
        );
        assert_eq!(ex.patterns.len(), 1, "pattern must span the nested block");
        let p = &ex.patterns[0];
        assert_eq!(p.pattern_size(), 4); // item, name, description, listitem
        let desc = p.node_by_name("description2").or(p
            .all_nodes()
            .find(|&n| p.node(n).tag_predicate.as_deref() == Some("description"))
            .map(Some)
            .unwrap_or(None));
        let desc = desc.expect("description node");
        assert!(p.node(desc).edge.sem.is_nested());
        // listitem is below description
        let li = p
            .all_nodes()
            .find(|&n| p.node(n).tag_predicate.as_deref() == Some("listitem"))
            .unwrap();
        assert_eq!(p.parent(li), Some(desc));
    }

    #[test]
    fn unrelated_doc_roots_give_separate_patterns() {
        let ex = extract(r#"for $x in doc("d")//a, $y in doc("d")//b return <r>{$x/c}{$y/e}</r>"#);
        assert_eq!(ex.patterns.len(), 2);
    }

    #[test]
    fn where_constant_becomes_value_predicate() {
        let ex =
            extract(r#"for $x in doc("bib.xml")//book where $x/year = "1999" return $x/title"#);
        let p = &ex.patterns[0];
        let year = p
            .all_nodes()
            .find(|&n| p.node(n).tag_predicate.as_deref() == Some("year"))
            .unwrap();
        assert_eq!(p.node(year).edge.sem, EdgeSem::Semi);
        assert_eq!(p.node(year).value_predicate, Formula::eq_str("1999"));
        assert!(ex.post_filters.is_empty());
    }

    #[test]
    fn value_join_becomes_post_filter() {
        let ex = extract(
            r#"for $x in doc("d")//a, $y in doc("d")//b where $x/k = $y/k return <r>{$x}</r>"#,
        );
        assert_eq!(ex.patterns.len(), 2);
        assert_eq!(ex.post_filters.len(), 1);
    }

    #[test]
    fn ftcontains_becomes_contains_filter() {
        let ex =
            extract(r#"for $x in doc("bib.xml")//book/title where $x ftcontains "Web" return $x"#);
        assert_eq!(ex.post_filters.len(), 1);
        assert!(format!("{}", ex.post_filters[0]).contains("contains"));
    }

    #[test]
    fn bracket_predicates_become_semijoins() {
        let ex = extract(r#"doc("d")//a[b/c]//e"#);
        let p = &ex.patterns[0];
        let b = p
            .all_nodes()
            .find(|&n| p.node(n).tag_predicate.as_deref() == Some("b"))
            .unwrap();
        assert_eq!(p.node(b).edge.sem, EdgeSem::Semi);
    }

    #[test]
    fn text_steps_store_val() {
        let ex = extract(r#"for $x in doc("d")//item return <r>{$x/name/text()}</r>"#);
        let p = &ex.patterns[0];
        let name = p
            .all_nodes()
            .find(|&n| p.node(n).tag_predicate.as_deref() == Some("name"))
            .unwrap();
        assert!(p.node(name).stores_val);
        assert!(!p.node(name).stores_cont);
    }

    #[test]
    fn template_shape() {
        let ex =
            extract(r#"for $x in doc("d")//item return <res>{$x/name/text()}{$x//keyword}</res>"#);
        let Template::Element { tag, children } = &ex.template else {
            panic!()
        };
        assert_eq!(tag, "res");
        assert_eq!(children.len(), 2);
        // each child is a ForEach over the nest field
        assert!(matches!(children[0], Template::ForEach { .. }));
    }

    #[test]
    fn unbound_variable_errors() {
        let q = parse_query("for $x in $zzz/a return $x").unwrap();
        assert!(extract_patterns(&q).is_err());
    }

    #[test]
    fn figure_3_1_query_yields_two_patterns() {
        // the Chapter 3 running query (adapted): two unrelated roots $x,
        // $y; nested blocks extend $y's pattern
        let ex = extract(
            r#"for $x in doc("d")/a/*, $y in doc("d")//b return
               <res1>{$x//c},
                 <res2>{$y//e,
                   for $z in $y//d where $z//g = 5 return <res3>{$z//h}</res3>
                 }</res2>
               </res1>"#,
        );
        assert_eq!(ex.patterns.len(), 2, "V10 and V11");
        // $y's pattern contains b, e, d, g, h
        let v11 = &ex.patterns[1];
        assert_eq!(v11.pattern_size(), 5);
        for lbl in ["b", "e", "d", "g", "h"] {
            assert!(
                v11.all_nodes()
                    .any(|n| v11.node(n).tag_predicate.as_deref() == Some(lbl)),
                "missing {lbl} in V11:\n{v11}"
            );
        }
        // g is a semijoin branch with the value predicate = 5
        let g = v11
            .all_nodes()
            .find(|&n| v11.node(n).tag_predicate.as_deref() == Some("g"))
            .unwrap();
        assert_eq!(v11.node(g).value_predicate, Formula::eq_int(5));
    }
}
