//! Deterministic synthetic document generators.
//!
//! The paper evaluates on XMark and DBLP documents (plus Shakespeare, NASA
//! and SwissProt for the summary-statistics table, Figure 4.13). Those
//! datasets and the `xmlgen` generator are not available here, so this
//! module provides seeded generators that reproduce the *structural* traits
//! the experiments depend on:
//!
//! * **XMark-like** ([`xmark`]): the auction-site DTD skeleton, including the
//!   recursive `description/parlist/listitem` markup (`bold`, `emph`,
//!   `keyword`) that the paper notes inflates the XMark path summary to
//!   hundreds of nodes while the DTD stays tiny;
//! * **DBLP-like** ([`dblp`]): flat bibliographic records giving a small
//!   summary with many `1`/`+` (one-to-one / strong) summary edges;
//! * **Shakespeare / NASA / SwissProt-like** for the Fig 4.13 table only;
//! * the running examples of the paper: [`bib_sample`] (Figure 2.5) and
//!   [`bib_document`] (Figure 2.1).
//!
//! All generators are deterministic for a given `(scale, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::document::{Document, DocumentBuilder};

const WORDS: &[&str] = &[
    "gold",
    "watch",
    "data",
    "web",
    "query",
    "auction",
    "vintage",
    "rare",
    "silver",
    "antique",
    "fast",
    "shipping",
    "excellent",
    "condition",
    "classic",
    "modern",
    "large",
    "small",
    "blue",
    "red",
];

fn words(rng: &mut SmallRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// The sample `library` document of Figure 2.5, used throughout Chapter 2's
/// semantics examples (books "Data on the Web", "The Syntactic Web" and the
/// "The Web: next generation" PhD thesis).
pub fn bib_sample() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("library");
    {
        b.open_element("book");
        b.attribute("year", "1999");
        b.leaf_element("title", "Data on the Web");
        b.leaf_element("author", "Abiteboul");
        b.leaf_element("author", "Suciu");
        b.close_element();

        b.open_element("book");
        b.leaf_element("title", "The Syntactic Web");
        b.leaf_element("author", "Tom Lerners-Bee");
        b.close_element();

        b.open_element("phdthesis");
        b.attribute("year", "2004");
        b.leaf_element("title", "The Web: next generation");
        b.leaf_element("author", "Jim Smith");
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// The `bib.xml` document of Figure 2.1, used by the storage-model examples
/// of §2.1 (books and PhD theses with year, title, author children).
pub fn bib_document() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("bib");
    {
        b.open_element("book");
        b.leaf_element("year", "1999");
        b.leaf_element("title", "Data on the Web");
        b.leaf_element("author", "Abiteboul");
        b.leaf_element("author", "Buneman");
        b.leaf_element("author", "Suciu");
        b.close_element();

        b.open_element("book");
        b.leaf_element("year", "2001");
        b.leaf_element("title", "XML Processing");
        b.leaf_element("author", "Chaudhri");
        b.close_element();

        b.open_element("phdthesis");
        b.leaf_element("year", "2004");
        b.leaf_element("title", "Views for XML");
        b.leaf_element("author", "Smith");
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// A fully XML-ized book (Figure 2.2): body/section markup with `it`/`b`
/// formatting tags, motivating non-fragmented ("blob") storage.
pub fn bib_document_with_sections() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("bib");
    {
        b.open_element("book");
        b.attribute("year", "1999");
        b.leaf_element("title", "Data on the Web");
        b.leaf_element("author", "Abiteboul");
        b.leaf_element("author", "Suciu");
        b.open_element("body");
        for no in 1..=3 {
            b.open_element("section");
            b.attribute("no", &no.to_string());
            b.text("In this book, we discuss ");
            b.leaf_element("it", "Web data");
            b.text(" as encountered in HTML and, increasingly, ");
            b.leaf_element("b", "XML");
            b.text(" documents on the Web.");
            b.close_element();
        }
        b.close_element();
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// Emit the recursive XMark `parlist` structure: a `parlist` holds
/// `listitem`s, whose `text` children mix character data with `bold`,
/// `emph` and `keyword` markup, and which may recursively hold another
/// `parlist`. `depth_left` bounds the unfolding (the paper observes XML
/// recursion "rarely unfolds at important depths").
fn gen_parlist(b: &mut DocumentBuilder, rng: &mut SmallRng, depth_left: u8, force_deep: bool) {
    b.open_element("parlist");
    let items = rng.gen_range(1..=3);
    for i in 0..items {
        b.open_element("listitem");
        b.open_element("text");
        b.text(&words(rng, 4));
        b.leaf_element("bold", &words(rng, 1));
        b.text(&words(rng, 2));
        b.leaf_element("emph", &words(rng, 1));
        b.leaf_element("keyword", &words(rng, 1));
        b.close_element();
        let recurse = depth_left > 0 && ((force_deep && i == 0) || rng.gen_bool(0.25));
        if recurse {
            gen_parlist(b, rng, depth_left - 1, force_deep && i == 0);
        }
        b.close_element();
    }
    b.close_element();
}

fn gen_description(b: &mut DocumentBuilder, rng: &mut SmallRng, force_deep: bool) {
    b.open_element("description");
    // A description holds either marked-up recursive parlists or a direct
    // text child; the forced first record of each context emits both, so
    // the path summary does not depend on the document scale.
    let parlist = force_deep || rng.gen_bool(0.7);
    if parlist {
        gen_parlist(b, rng, 2, force_deep);
    }
    if force_deep || !parlist {
        b.open_element("text");
        b.text(&words(rng, 6));
        b.leaf_element("bold", &words(rng, 1));
        b.leaf_element("keyword", &words(rng, 1));
        b.leaf_element("emph", &words(rng, 1));
        b.close_element();
    }
    b.close_element();
}

fn gen_item(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize, force_deep: bool) {
    b.open_element("item");
    b.attribute("id", &format!("item{id}"));
    b.leaf_element("location", "United States");
    b.leaf_element("quantity", &rng.gen_range(1..5).to_string());
    b.leaf_element("name", &words(rng, 2));
    b.open_element("payment");
    b.text("Creditcard");
    b.close_element();
    gen_description(b, rng, force_deep);
    if force_deep || rng.gen_bool(0.8) {
        b.open_element("shipping");
        b.text("Will ship internationally");
        b.close_element();
    }
    for _ in 0..rng.gen_range(1..=2) {
        b.open_element("incategory");
        b.attribute("category", &format!("category{}", rng.gen_range(0..10)));
        b.close_element();
    }
    if force_deep || rng.gen_bool(0.6) {
        b.open_element("mailbox");
        for _ in 0..rng.gen_range(1..=2) {
            b.open_element("mail");
            b.leaf_element("from", &words(rng, 1));
            b.leaf_element("to", &words(rng, 1));
            b.leaf_element("date", "07/06/2000");
            b.open_element("text");
            b.text(&words(rng, 5));
            b.leaf_element("bold", &words(rng, 1));
            b.leaf_element("emph", &words(rng, 1));
            b.leaf_element("keyword", &words(rng, 1));
            b.close_element();
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
}

fn gen_person(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize, full: bool) {
    b.open_element("person");
    b.attribute("id", &format!("person{id}"));
    b.leaf_element("name", &words(rng, 2));
    b.leaf_element("emailaddress", &format!("mailto:u{id}@example.org"));
    if full || rng.gen_bool(0.5) {
        b.leaf_element("phone", "+1 555 0100");
    }
    if full || rng.gen_bool(0.5) {
        b.open_element("address");
        b.leaf_element("street", &words(rng, 2));
        b.leaf_element("city", &words(rng, 1));
        b.leaf_element("country", "United States");
        b.leaf_element("zipcode", &rng.gen_range(10000..99999).to_string());
        b.close_element();
    }
    if full || rng.gen_bool(0.4) {
        b.leaf_element("homepage", &format!("http://example.org/~u{id}"));
    }
    if full || rng.gen_bool(0.4) {
        b.leaf_element("creditcard", "1234 5678 9012 3456");
    }
    if full || rng.gen_bool(0.6) {
        b.open_element("profile");
        b.attribute("income", &format!("{}", rng.gen_range(20000..120000)));
        for _ in 0..rng.gen_range(1..=3) {
            b.open_element("interest");
            b.attribute("category", &format!("category{}", rng.gen_range(0..10)));
            b.close_element();
        }
        if full || rng.gen_bool(0.5) {
            b.leaf_element("education", "Graduate School");
        }
        b.leaf_element("gender", if rng.gen_bool(0.5) { "male" } else { "female" });
        b.leaf_element("business", "Yes");
        b.leaf_element("age", &rng.gen_range(18..80).to_string());
        b.close_element();
    }
    if full || rng.gen_bool(0.3) {
        b.open_element("watches");
        for _ in 0..rng.gen_range(1..=2) {
            b.open_element("watch");
            b.attribute(
                "open_auction",
                &format!("open_auction{}", rng.gen_range(0..20)),
            );
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
}

fn gen_annotation(b: &mut DocumentBuilder, rng: &mut SmallRng, force_deep: bool) {
    b.open_element("annotation");
    b.open_element("author");
    b.attribute("person", &format!("person{}", rng.gen_range(0..50)));
    b.close_element();
    gen_description(b, rng, force_deep);
    b.leaf_element("happiness", &rng.gen_range(1..10).to_string());
    b.close_element();
}

/// Generate an XMark-like auction document. `scale` is roughly the number
/// of items per region; `scale = 10` gives a document of a few thousand
/// nodes, `scale = 1000` a few hundred thousand. The first record of each
/// kind is generated with every optional branch present and deep recursive
/// markup, so the path summary of any two documents at different scales is
/// identical — mirroring the paper's observation (Fig 4.13) that the XMark
/// summary barely grows with document size.
pub fn xmark(scale: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    let regions = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    b.open_element("site");
    {
        b.open_element("regions");
        let mut id = 0;
        for r in regions {
            b.open_element(r);
            for i in 0..scale.max(1) {
                gen_item(&mut b, &mut rng, id, i == 0);
                id += 1;
            }
            b.close_element();
        }
        b.close_element();

        b.open_element("categories");
        for c in 0..(scale / 2).max(2) {
            b.open_element("category");
            b.attribute("id", &format!("category{c}"));
            b.leaf_element("name", &words(&mut rng, 1));
            gen_description(&mut b, &mut rng, c == 0);
            b.close_element();
        }
        b.close_element();

        b.open_element("catgraph");
        for _ in 0..(scale / 2).max(1) {
            b.open_element("edge");
            b.attribute("from", &format!("category{}", rng.gen_range(0..10)));
            b.attribute("to", &format!("category{}", rng.gen_range(0..10)));
            b.close_element();
        }
        b.close_element();

        b.open_element("people");
        for p in 0..scale.max(2) {
            gen_person(&mut b, &mut rng, p, p == 0);
        }
        b.close_element();

        b.open_element("open_auctions");
        for a in 0..scale.max(1) {
            let full = a == 0;
            b.open_element("open_auction");
            b.attribute("id", &format!("open_auction{a}"));
            b.open_element("initial");
            b.text(&format!("{:.2}", rng.gen_range(1.0..200.0)));
            b.close_element();
            if full || rng.gen_bool(0.5) {
                b.leaf_element("reserve", &format!("{:.2}", rng.gen_range(1.0..400.0)));
            }
            for _ in 0..rng.gen_range(1..=3) {
                b.open_element("bidder");
                b.leaf_element("date", "07/06/2000");
                b.leaf_element("time", "11:00:00");
                b.open_element("personref");
                b.attribute("person", &format!("person{}", rng.gen_range(0..50)));
                b.close_element();
                b.leaf_element("increase", &format!("{:.2}", rng.gen_range(1.0..30.0)));
                b.close_element();
            }
            b.leaf_element("current", &format!("{:.2}", rng.gen_range(1.0..600.0)));
            if full || rng.gen_bool(0.3) {
                b.leaf_element("privacy", "Yes");
            }
            b.open_element("itemref");
            b.attribute("item", &format!("item{}", rng.gen_range(0..60)));
            b.close_element();
            b.open_element("seller");
            b.attribute("person", &format!("person{}", rng.gen_range(0..50)));
            b.close_element();
            gen_annotation(&mut b, &mut rng, full);
            b.leaf_element("quantity", &rng.gen_range(1..5).to_string());
            b.leaf_element("type", "Regular");
            b.open_element("interval");
            b.leaf_element("start", "01/01/2000");
            b.leaf_element("end", "12/31/2000");
            b.close_element();
            b.close_element();
        }
        b.close_element();

        b.open_element("closed_auctions");
        for a in 0..(scale / 2).max(1) {
            let full = a == 0;
            b.open_element("closed_auction");
            b.open_element("seller");
            b.attribute("person", &format!("person{}", rng.gen_range(0..50)));
            b.close_element();
            b.open_element("buyer");
            b.attribute("person", &format!("person{}", rng.gen_range(0..50)));
            b.close_element();
            b.open_element("itemref");
            b.attribute("item", &format!("item{}", rng.gen_range(0..60)));
            b.close_element();
            b.leaf_element("price", &format!("{:.2}", rng.gen_range(1.0..600.0)));
            b.leaf_element("date", "07/06/2000");
            b.leaf_element("quantity", "1");
            b.leaf_element("type", "Regular");
            gen_annotation(&mut b, &mut rng, full);
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// Generate a DBLP-like bibliography. `scale` is the number of records. The
/// resulting path summary is small (tens of nodes) and rich in `1`/`+`
/// edges: every record has exactly one title and year, at least one author —
/// the integrity constraints Chapter 4.2.2 exploits.
pub fn dblp(scale: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    b.open_element("dblp");
    for i in 0..scale.max(4) {
        let kind = if i < 4 {
            // force one of each record type so the summary is scale-invariant
            ["article", "inproceedings", "book", "phdthesis"][i]
        } else {
            ["article", "inproceedings", "book", "phdthesis"][rng.gen_range(0..4)]
        };
        b.open_element(kind);
        b.attribute("key", &format!("{kind}/x/{i}"));
        b.attribute("mdate", "2005-01-01");
        for _ in 0..rng.gen_range(1..=3) {
            b.leaf_element("author", &words(&mut rng, 2));
        }
        b.leaf_element("title", &words(&mut rng, 4));
        b.leaf_element("year", &rng.gen_range(1990..2006).to_string());
        match kind {
            "article" => {
                b.leaf_element("journal", &words(&mut rng, 2));
                b.leaf_element("volume", &rng.gen_range(1..40).to_string());
                b.leaf_element("pages", "1-20");
                if i < 4 || rng.gen_bool(0.6) {
                    b.leaf_element("ee", "http://doi.example.org/x");
                }
            }
            "inproceedings" => {
                b.leaf_element("booktitle", &words(&mut rng, 2));
                b.leaf_element("pages", "100-110");
                if i < 4 || rng.gen_bool(0.5) {
                    b.leaf_element("crossref", "conf/x/2005");
                }
                if i < 4 || rng.gen_bool(0.4) {
                    b.leaf_element("cite", &format!("ref{}", rng.gen_range(0..50)));
                }
            }
            "book" => {
                b.leaf_element("publisher", &words(&mut rng, 1));
                b.leaf_element("isbn", "0-000-00000-0");
            }
            _ => {
                b.leaf_element("school", &words(&mut rng, 2));
            }
        }
        if i < 4 || rng.gen_bool(0.7) {
            b.leaf_element("url", &format!("db/{kind}/{i}.html"));
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// Generate a Shakespeare-play-like document (`PLAY/ACT/SCENE/SPEECH/LINE`).
/// Used only for the Fig 4.13 summary-statistics table.
pub fn shakespeare(scale: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    b.open_element("PLAY");
    b.leaf_element("TITLE", "The Tragedy of Synthetic Data");
    b.open_element("FM");
    for _ in 0..3 {
        b.leaf_element("P", &words(&mut rng, 6));
    }
    b.close_element();
    b.open_element("PERSONAE");
    b.leaf_element("TITLE", "Dramatis Personae");
    for _ in 0..6 {
        b.leaf_element("PERSONA", &words(&mut rng, 2));
    }
    b.open_element("PGROUP");
    b.leaf_element("PERSONA", &words(&mut rng, 2));
    b.leaf_element("GRPDESCR", &words(&mut rng, 3));
    b.close_element();
    b.close_element();
    b.leaf_element("SCNDESCR", &words(&mut rng, 5));
    b.leaf_element("PLAYSUBT", "SYNTHETIC");
    for act in 0..scale.max(1) {
        b.open_element("ACT");
        b.leaf_element("TITLE", &format!("ACT {}", act + 1));
        for sc in 0..4 {
            b.open_element("SCENE");
            b.leaf_element("TITLE", &format!("SCENE {}", sc + 1));
            b.leaf_element("STAGEDIR", &words(&mut rng, 4));
            for _ in 0..8 {
                b.open_element("SPEECH");
                b.leaf_element("SPEAKER", &words(&mut rng, 1));
                for _ in 0..rng.gen_range(2..6) {
                    b.leaf_element("LINE", &words(&mut rng, 7));
                }
                if rng.gen_bool(0.2) {
                    b.leaf_element("STAGEDIR", &words(&mut rng, 3));
                }
                b.close_element();
            }
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// Generate a NASA-astronomy-like dataset document. Fig 4.13 table only.
pub fn nasa(scale: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    b.open_element("datasets");
    for i in 0..scale.max(1) {
        let full = i == 0;
        b.open_element("dataset");
        b.attribute("subject", "astronomy");
        b.leaf_element("title", &words(&mut rng, 3));
        b.open_element("altname");
        b.attribute("type", "ADC");
        b.text(&words(&mut rng, 1));
        b.close_element();
        b.open_element("reference");
        b.open_element("source");
        b.open_element("other");
        b.leaf_element("title", &words(&mut rng, 3));
        b.open_element("author");
        b.open_element("initial");
        b.text("J");
        b.close_element();
        b.leaf_element("lastName", &words(&mut rng, 1));
        b.close_element();
        b.leaf_element("name", &words(&mut rng, 2));
        b.leaf_element("publisher", &words(&mut rng, 1));
        b.leaf_element("city", &words(&mut rng, 1));
        b.leaf_element("date", "1999");
        b.close_element();
        b.close_element();
        b.close_element();
        b.open_element("keywords");
        for _ in 0..3 {
            b.leaf_element("keyword", &words(&mut rng, 1));
        }
        b.close_element();
        if full || rng.gen_bool(0.7) {
            b.open_element("descriptions");
            b.open_element("description");
            b.open_element("para");
            b.text(&words(&mut rng, 10));
            b.close_element();
            b.close_element();
            b.leaf_element("details", &words(&mut rng, 6));
            b.close_element();
        }
        b.open_element("tableHead");
        for _ in 0..rng.gen_range(2..5) {
            b.open_element("tableLinks");
            b.open_element("tableLink");
            b.attribute("href", "table.dat");
            b.leaf_element("title", &words(&mut rng, 2));
            b.close_element();
            b.close_element();
        }
        b.close_element();
        if full || rng.gen_bool(0.5) {
            b.open_element("history");
            b.open_element("ingest");
            b.open_element("creator");
            b.leaf_element("lastName", &words(&mut rng, 1));
            b.close_element();
            b.leaf_element("date", "2000-01-01");
            b.close_element();
            b.close_element();
        }
        b.leaf_element("identifier", &format!("J_A+A_{i}"));
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// Generate a SwissProt-like protein database document. Fig 4.13 table only.
pub fn swissprot(scale: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    let features = [
        "DOMAIN", "CHAIN", "SIGNAL", "TRANSMEM", "CARBOHYD", "BINDING", "ACT_SITE", "CONFLICT",
        "DISULFID", "HELIX", "STRAND", "TURN", "MOD_RES", "MUTAGEN", "NP_BIND", "PEPTIDE",
        "PROPEP", "REPEAT", "SIMILAR", "SITE", "VARIANT", "ZN_FING",
    ];
    b.open_element("root");
    for i in 0..scale.max(1) {
        let full = i == 0;
        b.open_element("Entry");
        b.attribute("id", &format!("P{i:05}"));
        b.attribute("class", "STANDARD");
        b.attribute("mtype", "PRT");
        b.attribute("seqlen", &rng.gen_range(50..900).to_string());
        b.leaf_element("AC", &format!("Q{i:05}"));
        b.open_element("Mod");
        b.attribute("date", "01-JAN-2000");
        b.attribute("Rel", "40");
        b.attribute("type", "Created");
        b.close_element();
        b.leaf_element("Descr", &words(&mut rng, 4));
        b.leaf_element("Species", &words(&mut rng, 2));
        b.leaf_element("Org", "Eukaryota");
        b.open_element("Ref");
        b.attribute("num", "1");
        b.attribute("pos", "SEQUENCE");
        b.open_element("Comment");
        b.text(&words(&mut rng, 3));
        b.close_element();
        b.leaf_element("DB", "MEDLINE");
        b.leaf_element("MedlineID", &rng.gen_range(90000000..99999999).to_string());
        for _ in 0..rng.gen_range(1..4) {
            b.leaf_element("Author", &words(&mut rng, 2));
        }
        b.leaf_element("Cite", &words(&mut rng, 4));
        b.close_element();
        b.open_element("EMBL");
        b.attribute("prim_id", &format!("X{i:05}"));
        b.attribute("sec_id", &format!("CAA{i:05}"));
        b.close_element();
        b.open_element("INTERPRO");
        b.attribute("prim_id", &format!("IPR{i:06}"));
        b.close_element();
        b.open_element("PROSITE");
        b.attribute("prim_id", &format!("PS{i:05}"));
        b.attribute("status", "1");
        b.close_element();
        b.leaf_element("Keyword", &words(&mut rng, 1));
        // features: the first entry gets every feature tag so the summary is
        // large (SwissProt's real summary is ~264 nodes) and scale-invariant.
        let nfeat = if full {
            features.len()
        } else {
            rng.gen_range(2..8)
        };
        for f in 0..nfeat {
            let name = if full {
                features[f]
            } else {
                features[rng.gen_range(0..features.len())]
            };
            b.open_element("Features");
            b.open_element(name);
            b.attribute("from", &rng.gen_range(1..100).to_string());
            b.attribute("to", &rng.gen_range(100..500).to_string());
            b.open_element("Descr");
            b.text(&words(&mut rng, 2));
            b.close_element();
            b.close_element();
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bib_sample_matches_figure_2_5() {
        let d = bib_sample();
        assert_eq!(d.label(d.root()), "library");
        let kids = d.children(d.root());
        assert_eq!(kids.len(), 3);
        assert_eq!(d.label(kids[0]), "book");
        assert_eq!(d.label(kids[2]), "phdthesis");
        // first book has a year attribute, a title and two authors
        let book = kids[0];
        assert_eq!(d.children(book).len(), 4);
        assert_eq!(d.value(d.children(book)[1]), "Data on the Web");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = xmark(5, 42);
        let b = xmark(5, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.all_nodes().zip(b.all_nodes()) {
            assert_eq!(a.label(x), b.label(y));
        }
        let c = xmark(5, 43);
        // a different seed almost surely gives a different node count
        assert!(a.len() != c.len() || a.value(a.root()) != c.value(c.root()));
    }

    #[test]
    fn xmark_scales() {
        let small = xmark(2, 1);
        let big = xmark(20, 1);
        assert!(big.len() > 4 * small.len());
    }

    #[test]
    fn xmark_has_recursive_parlist() {
        let d = xmark(3, 7);
        // find a listitem that has a parlist descendant (recursion unfolded)
        let mut found = false;
        for n in d.elements() {
            if d.label(n) == "listitem" && d.descendants(n).any(|m| d.label(m) == "parlist") {
                found = true;
                break;
            }
        }
        assert!(found, "description/parlist/listitem recursion must unfold");
    }

    #[test]
    fn dblp_has_all_record_kinds() {
        let d = dblp(4, 1);
        for kind in ["article", "inproceedings", "book", "phdthesis"] {
            assert!(d.elements().any(|n| d.label(n) == kind), "missing {kind}");
        }
    }

    #[test]
    fn dblp_records_have_mandatory_children() {
        let d = dblp(50, 3);
        for n in d.children(d.root()) {
            let labels: Vec<_> = d.children(*n).iter().map(|c| d.label(*c)).collect();
            assert!(labels.contains(&"title"));
            assert!(labels.contains(&"year"));
            assert!(labels.contains(&"author"));
        }
    }

    #[test]
    fn other_generators_build() {
        assert!(shakespeare(2, 1).len() > 100);
        assert!(nasa(3, 1).len() > 100);
        assert!(swissprot(3, 1).len() > 100);
    }
}
