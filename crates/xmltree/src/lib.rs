//! # xmltree — XML data model, parser, structural identifiers, generators
//!
//! This crate is the bottom-most substrate of the ULoad reproduction. It
//! implements the XML data model of the paper (§1.1): a document is a tree
//! whose nodes are the document node, element nodes and attribute nodes.
//! Text is kept as first-class leaf nodes (the extension the paper mentions)
//! and the *value* of an element is the concatenation of the text of its
//! descendants, matching XPath's `text()`/string-value semantics used in the
//! thesis.
//!
//! The crate also provides:
//!
//! * [`ids`] — `(pre, post, depth)` structural identifiers (§1.2.1) and the
//!   pre/post-plane predicates (ancestor, descendant, precede, follow);
//! * [`dewey`] — navigational structural identifiers in the style of
//!   DeweyIDs/ORDPATHs, from which a parent's identifier is derivable;
//! * [`parser`] — a hand-rolled, dependency-free XML parser and serializer;
//! * [`generate`] — deterministic synthetic document generators standing in
//!   for the paper's datasets (XMark, DBLP, Shakespeare, NASA, SwissProt and
//!   the running `bib.xml` examples).

pub mod dewey;
pub mod document;
pub mod generate;
pub mod ids;
pub mod parser;

pub use dewey::DeweyId;
pub use document::{Document, DocumentBuilder, NodeId, NodeKind};
pub use ids::StructuralId;
pub use parser::{parse_document, ParseError};
