//! `(pre, post, depth)` structural identifiers (§1.2.1).
//!
//! The identifier of each node is the triple of its pre-order rank, its
//! post-order rank and its depth. Comparing two identifiers decides every
//! structural axis without touching the tree — the *pre/post plane* of
//! Grust's XPath Accelerator, reproduced in Example 1.2.1 of the paper:
//!
//! * `m` descendant of `n`  ⟺  `pre_n < pre_m ∧ post_m < post_n`
//! * `m` child of `n`       ⟺  descendant ∧ `depth_m = depth_n + 1`
//! * `m` precedes `n`       ⟺  `post_m < pre_n` *(rank-comparable encoding)*
//! * `m` follows `n`        ⟺  `post_n < pre_m`
//!
//! Note on precede/follow: with *separate* pre and post counters the paper's
//! `post_m < pre_n` test is heuristic; we expose the exact document-order
//! test [`StructuralId::precedes`] based on pre ranks plus the
//! ancestor test, which is correct for any numbering.

/// A `(pre, post, depth)` structural identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructuralId {
    /// Pre-order rank (document order), starting at 0 for the root element.
    pub pre: u32,
    /// Post-order rank, starting at 0.
    pub post: u32,
    /// Depth; the root element has depth 1.
    pub depth: u16,
}

impl StructuralId {
    pub fn new(pre: u32, post: u32, depth: u16) -> Self {
        StructuralId { pre, post, depth }
    }

    /// `self ≺≺ other`: is `self` a proper ancestor of `other`?
    #[inline]
    pub fn is_ancestor_of(self, other: StructuralId) -> bool {
        self.pre < other.pre && other.post < self.post
    }

    /// `self ≺ other`: is `self` the parent of `other`?
    #[inline]
    pub fn is_parent_of(self, other: StructuralId) -> bool {
        self.is_ancestor_of(other) && self.depth + 1 == other.depth
    }

    /// Is `self` a proper descendant of `other`?
    #[inline]
    pub fn is_descendant_of(self, other: StructuralId) -> bool {
        other.is_ancestor_of(self)
    }

    /// Does `self` precede `other` in document order, with neither being an
    /// ancestor of the other?
    #[inline]
    pub fn precedes(self, other: StructuralId) -> bool {
        self.pre < other.pre && !self.is_ancestor_of(other)
    }

    /// Does `self` follow `other` in document order, with neither being an
    /// ancestor of the other?
    #[inline]
    pub fn follows(self, other: StructuralId) -> bool {
        other.precedes(self)
    }

    /// The four-quadrant classification of `other` relative to `self`, as in
    /// the pre/post-plane picture (Figure 1.3 of the paper).
    pub fn classify(self, other: StructuralId) -> Axis {
        if self == other {
            Axis::SelfNode
        } else if self.is_ancestor_of(other) {
            Axis::Descendant
        } else if other.is_ancestor_of(self) {
            Axis::Ancestor
        } else if other.pre < self.pre {
            Axis::Preceding
        } else {
            Axis::Following
        }
    }
}

/// Relative position of a node in the pre/post plane of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    SelfNode,
    /// `other` is a descendant of `self`.
    Descendant,
    /// `other` is an ancestor of `self`.
    Ancestor,
    /// `other` precedes `self` in document order.
    Preceding,
    /// `other` follows `self` in document order.
    Following,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;

    /// Build `<a><b><c/><d/></b><e/></a>` and cross-check every pair of
    /// nodes against the tree-walking ground truth.
    #[test]
    fn plane_predicates_match_tree() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        b.open_element("c");
        b.close_element();
        b.open_element("d");
        b.close_element();
        b.close_element();
        b.open_element("e");
        b.close_element();
        b.close_element();
        let doc = b.finish();

        for n in doc.all_nodes() {
            for m in doc.all_nodes() {
                let sn = doc.structural_id(n);
                let sm = doc.structural_id(m);
                // ground truth by parent-chain walking
                let mut anc = doc.parent(m);
                let mut is_anc = false;
                while let Some(a) = anc {
                    if a == n {
                        is_anc = true;
                        break;
                    }
                    anc = doc.parent(a);
                }
                assert_eq!(sn.is_ancestor_of(sm), is_anc, "{n} anc {m}");
                assert_eq!(sn.is_parent_of(sm), doc.parent(m) == Some(n));
            }
        }
    }

    #[test]
    fn classify_quadrants() {
        let mut b = DocumentBuilder::new();
        b.open_element("a"); // pre 0
        b.open_element("b"); // pre 1
        b.close_element();
        b.open_element("c"); // pre 2
        b.close_element();
        b.close_element();
        let doc = b.finish();
        let a = doc.structural_id(crate::NodeId(0));
        let bb = doc.structural_id(crate::NodeId(1));
        let c = doc.structural_id(crate::NodeId(2));
        assert_eq!(a.classify(bb), Axis::Descendant);
        assert_eq!(bb.classify(a), Axis::Ancestor);
        assert_eq!(c.classify(bb), Axis::Preceding);
        assert_eq!(bb.classify(c), Axis::Following);
        assert_eq!(a.classify(a), Axis::SelfNode);
        assert!(bb.precedes(c));
        assert!(c.follows(bb));
        assert!(!a.precedes(bb)); // ancestor, not preceding
    }
}
