//! Navigational structural identifiers (DeweyID / ORDPATH style, §1.2.1).
//!
//! A [`DeweyId`] is the chain of child ranks from the root: the root is the
//! empty chain, its i-th child is `[i]`, that child's j-th child `[i, j]`,
//! and so on. Unlike plain `(pre, post, depth)` triples, Dewey IDs are
//! *navigational*: the identifier of any ancestor is **derivable** from the
//! identifier of a node (truncate the chain). The paper calls these `p`-class
//! identifiers and exploits the property during rewriting (§4.4, §5.2) — a
//! view storing only the IDs of `parlist` nodes still lets the rewriter
//! manufacture the IDs of their `description` parents.

use std::cmp::Ordering;
use std::fmt;

/// A Dewey-style navigational identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeweyId {
    steps: Vec<u32>,
}

impl DeweyId {
    /// The root identifier (empty chain).
    pub fn root() -> Self {
        DeweyId { steps: Vec::new() }
    }

    pub fn from_steps(steps: Vec<u32>) -> Self {
        DeweyId { steps }
    }

    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Depth of the node: root element has depth 1 (chain length + 1), so
    /// this agrees with [`crate::StructuralId::depth`].
    pub fn depth(&self) -> u16 {
        self.steps.len() as u16 + 1
    }

    /// Identifier of the parent — the navigational property. `None` at root.
    pub fn parent(&self) -> Option<DeweyId> {
        if self.steps.is_empty() {
            None
        } else {
            Some(DeweyId {
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            })
        }
    }

    /// Identifier of the ancestor at the given depth (1 = root).
    pub fn ancestor_at_depth(&self, depth: u16) -> Option<DeweyId> {
        if depth == 0 || depth > self.depth() {
            return None;
        }
        Some(DeweyId {
            steps: self.steps[..(depth - 1) as usize].to_vec(),
        })
    }

    /// Identifier of the `rank`-th child.
    pub fn child(&self, rank: u32) -> DeweyId {
        let mut steps = self.steps.clone();
        steps.push(rank);
        DeweyId { steps }
    }

    /// Is `self` a proper ancestor of `other`? (prefix test)
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        self.steps.len() < other.steps.len() && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// Is `self` the parent of `other`?
    pub fn is_parent_of(&self, other: &DeweyId) -> bool {
        other.steps.len() == self.steps.len() + 1 && self.is_ancestor_of(other)
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic order on step chains = document (pre) order, with ancestors
/// sorting before their descendants.
impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.steps.cmp(&other.steps)
    }
}

impl fmt::Display for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "1");
        }
        write!(f, "1")?;
        for s in &self.steps {
            write!(f, ".{}", s + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;

    #[test]
    fn parent_derivation() {
        let d = DeweyId::from_steps(vec![2, 0, 5]);
        assert_eq!(d.parent().unwrap().steps(), &[2, 0]);
        assert_eq!(d.parent().unwrap().parent().unwrap().steps(), &[2]);
        assert_eq!(DeweyId::root().parent(), None);
    }

    #[test]
    fn ancestor_at_depth() {
        let d = DeweyId::from_steps(vec![2, 0, 5]);
        assert_eq!(d.depth(), 4);
        assert_eq!(d.ancestor_at_depth(1).unwrap(), DeweyId::root());
        assert_eq!(d.ancestor_at_depth(3).unwrap().steps(), &[2, 0]);
        assert_eq!(d.ancestor_at_depth(4).unwrap(), d);
        assert_eq!(d.ancestor_at_depth(5), None);
        assert_eq!(d.ancestor_at_depth(0), None);
    }

    #[test]
    fn prefix_tests() {
        let a = DeweyId::from_steps(vec![1]);
        let b = DeweyId::from_steps(vec![1, 3]);
        let c = DeweyId::from_steps(vec![1, 3, 0]);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&c));
        assert!(a.is_parent_of(&b));
        assert!(!a.is_parent_of(&c));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
    }

    #[test]
    fn order_is_document_order() {
        // Build a small document and check Dewey order == pre order.
        let mut bld = DocumentBuilder::new();
        bld.open_element("a");
        bld.open_element("b");
        bld.open_element("c");
        bld.close_element();
        bld.close_element();
        bld.open_element("d");
        bld.close_element();
        bld.close_element();
        let doc = bld.finish();
        let mut ids: Vec<_> = doc.all_nodes().map(|n| (doc.dewey_id(n), n)).collect();
        ids.sort();
        for (i, (_, n)) in ids.iter().enumerate() {
            assert_eq!(n.0 as usize, i);
        }
    }

    #[test]
    fn agreement_with_structural_ids() {
        let mut bld = DocumentBuilder::new();
        bld.open_element("r");
        for _ in 0..3 {
            bld.open_element("x");
            bld.leaf_element("y", "t");
            bld.close_element();
        }
        bld.close_element();
        let doc = bld.finish();
        for n in doc.all_nodes() {
            for m in doc.all_nodes() {
                let (dn, dm) = (doc.dewey_id(n), doc.dewey_id(m));
                let (sn, sm) = (doc.structural_id(n), doc.structural_id(m));
                assert_eq!(dn.is_ancestor_of(&dm), sn.is_ancestor_of(sm));
                assert_eq!(dn.is_parent_of(&dm), sn.is_parent_of(sm));
                assert_eq!(dn.depth(), sn.depth);
            }
        }
    }

    #[test]
    fn display_is_dotted() {
        assert_eq!(DeweyId::root().to_string(), "1");
        assert_eq!(DeweyId::from_steps(vec![0, 2]).to_string(), "1.1.3");
    }
}
