//! The XML document tree (§1.1 of the paper).
//!
//! A [`Document`] owns an arena of nodes. Nodes are referred to by
//! [`NodeId`], a dense index into the arena assigned in *document order*
//! (pre-order), so the `pre` component of a node's structural identifier is
//! exactly its `NodeId`. Elements, attributes and text nodes are all
//! first-class; the paper's element *value* (`text()` result) and *content*
//! (serialized subtree) are derived on demand.

use std::collections::HashMap;
use std::fmt;

use crate::dewey::DeweyId;
use crate::ids::StructuralId;

/// Index of a node within a [`Document`] arena; doubles as the pre-order
/// rank of the node, since nodes are created in document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root element of every sealed document (the document node itself is
    /// implicit; index 0 is the top element, as in the paper we "refer to the
    /// unique element child of the document node as the document's root").
    pub const ROOT: NodeId = NodeId(0);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of an XML node. The document node is implicit; per the paper we
/// ignore it and treat the top element as the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node (`Φ_e`).
    Element,
    /// An attribute node (`Φ_a`); its label is the attribute name *without*
    /// the `@` sigil, and its value is the attribute value.
    Attribute,
    /// A text leaf; its "label" is the reserved name `#text`.
    Text,
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    /// Interned label id. For text nodes, the id of `#text`.
    label: u32,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Direct textual payload: attribute value or text-node characters.
    /// `None` for elements.
    text: Option<Box<str>>,
    /// Post-order rank, filled in when the document is sealed.
    post: u32,
    /// Depth: root element has depth 1.
    depth: u16,
}

/// An immutable XML document: an arena of nodes in document order, plus a
/// label interner. Build one with [`DocumentBuilder`] or
/// [`crate::parser::parse_document`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
    labels: Vec<Box<str>>,
    label_ids: HashMap<Box<str>, u32>,
}

impl Document {
    /// Number of nodes (elements + attributes + text leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Element)
            .count()
    }

    /// The root element of the document.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Kind of `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// Label (tag name / attribute name / `#text`) of `n`.
    pub fn label(&self, n: NodeId) -> &str {
        &self.labels[self.nodes[n.index()].label as usize]
    }

    /// Interned label id of `n`; equal labels share ids.
    pub fn label_id(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].label
    }

    /// Look up the interned id of a label, if any node uses it.
    pub fn find_label(&self, label: &str) -> Option<u32> {
        self.label_ids.get(label).copied()
    }

    /// Parent of `n` (`None` for the root element).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Children of `n` in document order (attributes first, then
    /// element/text children, matching construction order).
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// `(pre, post, depth)` structural identifier of `n` (§1.2.1).
    pub fn structural_id(&self, n: NodeId) -> StructuralId {
        let d = &self.nodes[n.index()];
        StructuralId {
            pre: n.0,
            post: d.post,
            depth: d.depth,
        }
    }

    /// Dewey (navigational) identifier of `n`: the chain of child ranks from
    /// the root. Computed on demand; O(depth).
    pub fn dewey_id(&self, n: NodeId) -> DeweyId {
        let mut steps = Vec::with_capacity(self.nodes[n.index()].depth as usize);
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            let rank = self.children(p).iter().position(|&c| c == cur).unwrap() as u32;
            steps.push(rank);
            cur = p;
        }
        steps.reverse();
        DeweyId::from_steps(steps)
    }

    /// True iff `anc` is a proper ancestor of `desc` (the `≺≺` predicate).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.structural_id(anc)
            .is_ancestor_of(self.structural_id(desc))
    }

    /// True iff `p` is the parent of `c` (the `≺` predicate).
    pub fn is_parent(&self, p: NodeId, c: NodeId) -> bool {
        self.parent(c) == Some(p)
    }

    /// The *value* of a node (§1.1): for text nodes and attributes, their
    /// payload; for elements, the concatenation of all descendant text, in
    /// document order (the XPath `text()`-derived string value).
    pub fn value(&self, n: NodeId) -> String {
        let d = &self.nodes[n.index()];
        if let Some(t) = &d.text {
            return t.to_string();
        }
        let mut out = String::new();
        self.collect_text(n, &mut out);
        out
    }

    fn collect_text(&self, n: NodeId, out: &mut String) {
        for &c in self.children(n) {
            let d = &self.nodes[c.index()];
            match d.kind {
                NodeKind::Text => out.push_str(d.text.as_deref().unwrap_or("")),
                NodeKind::Element => self.collect_text(c, out),
                NodeKind::Attribute => {}
            }
        }
    }

    /// The *content* of a node (§1.1): the serialization of the subtree
    /// rooted at `n` (for attributes, `name="value"`).
    pub fn content(&self, n: NodeId) -> String {
        let mut out = String::new();
        crate::parser::serialize_node(self, n, &mut out);
        out
    }

    /// Iterator over all nodes in document (pre) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all element nodes in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes()
            .filter(move |&n| self.kind(n) == NodeKind::Element)
    }

    /// Iterator over all attribute nodes in document order.
    pub fn attributes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes()
            .filter(move |&n| self.kind(n) == NodeKind::Attribute)
    }

    /// Elements and attributes with the given label, in document order.
    /// This is the *tag-derived collection* `R_t` of Definition 2.2.1
    /// restricted to node ids (the algebra layer adds Val/Tag/Cont columns).
    pub fn nodes_with_label<'a>(
        &'a self,
        label: &str,
        kind: NodeKind,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let id = self.find_label(label);
        self.all_nodes()
            .filter(move |&n| Some(self.label_id(n)) == id && self.kind(n) == kind)
    }

    /// Descendants of `n` (excluding `n`), in document order. Relies on the
    /// pre/post plane: descendants are the contiguous pre-order ids whose
    /// post is smaller.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let sid = self.structural_id(n);
        ((n.0 + 1)..self.nodes.len() as u32)
            .map(NodeId)
            .take_while(move |m| self.structural_id(*m).post < sid.post)
    }

    /// The rooted label path of a node, e.g. `/bib/book/title` (attributes
    /// get an `@` sigil, text nodes `#text`), used to key path summaries.
    pub fn label_path(&self, n: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            let d = &self.nodes[c.index()];
            let lbl = &self.labels[d.label as usize];
            match d.kind {
                NodeKind::Attribute => parts.push(format!("@{lbl}")),
                _ => parts.push(lbl.to_string()),
            }
            cur = d.parent;
        }
        parts.reverse();
        let mut out = String::new();
        for p in parts {
            out.push('/');
            out.push_str(&p);
        }
        out
    }

    /// All interned labels.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(|l| &**l)
    }
}

/// Incremental builder for [`Document`]s. Elements are opened and closed in
/// document order; attribute and text leaves attach to the open element.
///
/// ```
/// use xmltree::{DocumentBuilder, NodeKind};
/// let mut b = DocumentBuilder::new();
/// let book = b.open_element("book");
/// b.attribute("year", "1999");
/// let t = b.open_element("title");
/// b.text("Data on the Web");
/// b.close_element();
/// b.close_element();
/// let doc = b.finish();
/// assert_eq!(doc.label(doc.root()), "book");
/// assert_eq!(doc.value(t), "Data on the Web");
/// assert_eq!(doc.kind(doc.children(book)[0]), NodeKind::Attribute);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    pub fn new() -> Self {
        DocumentBuilder {
            doc: Document {
                nodes: Vec::new(),
                labels: Vec::new(),
                label_ids: HashMap::new(),
            },
            stack: Vec::new(),
        }
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.doc.label_ids.get(label) {
            return id;
        }
        let id = self.doc.labels.len() as u32;
        let boxed: Box<str> = label.into();
        self.doc.labels.push(boxed.clone());
        self.doc.label_ids.insert(boxed, id);
        id
    }

    fn push_node(&mut self, kind: NodeKind, label: &str, text: Option<&str>) -> NodeId {
        let label = self.intern(label);
        let id = NodeId(self.doc.nodes.len() as u32);
        let parent = self.stack.last().copied();
        let depth = parent
            .map(|p| self.doc.nodes[p.index()].depth + 1)
            .unwrap_or(1);
        if let Some(p) = parent {
            self.doc.nodes[p.index()].children.push(id);
        } else {
            assert!(
                self.doc.nodes.is_empty(),
                "document must have a single root element"
            );
            assert_eq!(kind, NodeKind::Element, "root must be an element");
        }
        self.doc.nodes.push(NodeData {
            kind,
            label,
            parent,
            children: Vec::new(),
            text: text.map(Into::into),
            post: 0,
            depth,
        });
        id
    }

    /// Open a new element as the next child of the currently open element
    /// (or as the root). Returns its id.
    pub fn open_element(&mut self, label: &str) -> NodeId {
        let id = self.push_node(NodeKind::Element, label, None);
        self.stack.push(id);
        id
    }

    /// Close the currently open element.
    pub fn close_element(&mut self) {
        self.stack
            .pop()
            .expect("close_element without matching open_element");
    }

    /// Attach an attribute to the currently open element.
    pub fn attribute(&mut self, name: &str, value: &str) -> NodeId {
        assert!(!self.stack.is_empty(), "attribute outside any element");
        self.push_node(NodeKind::Attribute, name, Some(value))
    }

    /// Attach a text leaf to the currently open element.
    pub fn text(&mut self, chars: &str) -> NodeId {
        assert!(!self.stack.is_empty(), "text outside any element");
        self.push_node(NodeKind::Text, "#text", Some(chars))
    }

    /// Convenience: `<label>text</label>` as a single call.
    pub fn leaf_element(&mut self, label: &str, text: &str) -> NodeId {
        let id = self.open_element(label);
        self.text(text);
        self.close_element();
        id
    }

    /// Finish construction: assigns post-order ranks and returns the
    /// immutable document. Panics if elements remain open or the document is
    /// empty.
    pub fn finish(mut self) -> Document {
        assert!(self.stack.is_empty(), "unclosed elements at finish()");
        assert!(!self.doc.nodes.is_empty(), "empty document");
        // Iterative post-order numbering.
        let mut counter: u32 = 0;
        let mut visit: Vec<(NodeId, bool)> = vec![(NodeId::ROOT, false)];
        while let Some((n, expanded)) = visit.pop() {
            if expanded {
                self.doc.nodes[n.index()].post = counter;
                counter += 1;
            } else {
                visit.push((n, true));
                let children = self.doc.nodes[n.index()].children.clone();
                for c in children.into_iter().rev() {
                    visit.push((c, false));
                }
            }
        }
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        // <a><b>x</b><c at="1"><d/></c></a>
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.leaf_element("b", "x");
        b.open_element("c");
        b.attribute("at", "1");
        b.open_element("d");
        b.close_element();
        b.close_element();
        b.close_element();
        b.finish()
    }

    #[test]
    fn builder_shapes_tree() {
        let d = sample();
        assert_eq!(d.label(d.root()), "a");
        let kids = d.children(d.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(d.label(kids[0]), "b");
        assert_eq!(d.label(kids[1]), "c");
        assert_eq!(d.element_count(), 4);
    }

    #[test]
    fn pre_order_equals_node_id() {
        let d = sample();
        let mut seen = Vec::new();
        fn rec(d: &Document, n: NodeId, seen: &mut Vec<NodeId>) {
            seen.push(n);
            for &c in d.children(n) {
                rec(d, c, seen);
            }
        }
        rec(&d, d.root(), &mut seen);
        for (i, n) in seen.iter().enumerate() {
            assert_eq!(n.0 as usize, i);
        }
    }

    #[test]
    fn post_order_is_consistent() {
        let d = sample();
        // root must have the largest post rank
        let root_post = d.structural_id(d.root()).post;
        for n in d.all_nodes() {
            assert!(d.structural_id(n).post <= root_post);
        }
        // every child has smaller post than its parent
        for n in d.all_nodes() {
            if let Some(p) = d.parent(n) {
                assert!(d.structural_id(n).post < d.structural_id(p).post);
            }
        }
    }

    #[test]
    fn depth_starts_at_one() {
        let d = sample();
        assert_eq!(d.structural_id(d.root()).depth, 1);
        let c = d.children(d.root())[1];
        assert_eq!(d.structural_id(c).depth, 2);
    }

    #[test]
    fn values_concatenate_text() {
        let d = sample();
        assert_eq!(d.value(d.root()), "x");
        let b = d.children(d.root())[0];
        assert_eq!(d.value(b), "x");
    }

    #[test]
    fn attribute_value() {
        let d = sample();
        let c = d.children(d.root())[1];
        let at = d.children(c)[0];
        assert_eq!(d.kind(at), NodeKind::Attribute);
        assert_eq!(d.label(at), "at");
        assert_eq!(d.value(at), "1");
    }

    #[test]
    fn ancestor_predicates() {
        let d = sample();
        let c = d.children(d.root())[1];
        let dd = *d
            .children(c)
            .iter()
            .find(|&&k| d.kind(k) == NodeKind::Element)
            .unwrap();
        assert!(d.is_ancestor(d.root(), dd));
        assert!(d.is_parent(c, dd));
        assert!(!d.is_ancestor(dd, d.root()));
    }

    #[test]
    fn descendants_iterator() {
        let d = sample();
        let descs: Vec<_> = d.descendants(d.root()).collect();
        assert_eq!(descs.len(), d.len() - 1);
        let c = d.children(d.root())[1];
        let under_c: Vec<_> = d.descendants(c).collect();
        assert_eq!(under_c.len(), 2); // attribute + d element
    }

    #[test]
    fn label_paths() {
        let d = sample();
        let c = d.children(d.root())[1];
        assert_eq!(d.label_path(c), "/a/c");
        let at = d.children(c)[0];
        assert_eq!(d.label_path(at), "/a/c/@at");
    }

    #[test]
    fn nodes_with_label_filters_kind() {
        let d = sample();
        assert_eq!(d.nodes_with_label("b", NodeKind::Element).count(), 1);
        assert_eq!(d.nodes_with_label("at", NodeKind::Attribute).count(), 1);
        assert_eq!(d.nodes_with_label("at", NodeKind::Element).count(), 0);
        assert_eq!(d.nodes_with_label("zzz", NodeKind::Element).count(), 0);
    }

    #[test]
    fn dewey_ids_follow_child_ranks() {
        let d = sample();
        assert_eq!(d.dewey_id(d.root()).steps(), &[] as &[u32]);
        let c = d.children(d.root())[1];
        assert_eq!(d.dewey_id(c).steps(), &[1]);
        let at = d.children(c)[0];
        assert_eq!(d.dewey_id(at).steps(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_panics() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        let _ = b.finish();
    }
}
