//! A hand-rolled XML parser and serializer.
//!
//! The paper assumes stored documents exist; this module is the substrate
//! that materializes them from text. It covers the XML subset the thesis
//! works with: elements, attributes, character data, comments, CDATA,
//! processing instructions (skipped), a prolog, and the five predefined
//! entities. Namespaces are treated lexically (prefixes are part of labels),
//! and DTDs are skipped, matching the paper's schema-less stance (§2.1.4
//! observes barely 40% of web XML has a DTD).

use std::fmt;

use crate::document::{Document, DocumentBuilder, NodeId, NodeKind};

/// Error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    builder: DocumentBuilder,
    depth: usize,
}

/// Parse an XML document from text.
///
/// ```
/// let doc = xmltree::parse_document("<bib><book year=\"1999\"><title>Data on the Web</title></book></bib>").unwrap();
/// assert_eq!(doc.label(doc.root()), "bib");
/// assert_eq!(doc.value(doc.root()), "Data on the Web");
/// ```
pub fn parse_document(text: &str) -> Result<Document, ParseError> {
    let mut p = Parser {
        input: text.as_bytes(),
        pos: 0,
        builder: DocumentBuilder::new(),
        depth: 0,
    };
    p.skip_misc()?;
    if !p.at(b"<") {
        return Err(p.err("expected root element"));
    }
    p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(p.builder.finish())
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn at(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, s: &[u8]) -> Result<(), ParseError> {
        if self.at(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", String::from_utf8_lossy(s))))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and the prolog/DOCTYPE between markup.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.at(b"<?") {
                let end = self.find(b"?>")?;
                self.pos = end + 2;
            } else if self.at(b"<!--") {
                let end = self.find(b"-->")?;
                self.pos = end + 3;
            } else if self.at(b"<!DOCTYPE") {
                // skip to matching '>' (internal subsets use brackets)
                let mut brackets = 0usize;
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    match c {
                        b'[' => brackets += 1,
                        b']' => brackets = brackets.saturating_sub(1),
                        b'>' if brackets == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, needle: &[u8]) -> Result<usize, ParseError> {
        self.input[self.pos..]
            .windows(needle.len())
            .position(|w| w == needle)
            .map(|i| self.pos + i)
            .ok_or_else(|| {
                self.err(&format!(
                    "unterminated `{}`",
                    String::from_utf8_lossy(needle)
                ))
            })
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric()
                || matches!(c, b'_' | b'-' | b'.' | b':' | b'#')
                || c >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<NodeId, ParseError> {
        self.depth += 1;
        if self.depth > 10_000 {
            return Err(self.err("element nesting too deep"));
        }
        self.expect(b"<")?;
        let name = self.parse_name()?;
        let id = self.builder.open_element(&name);
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect(b"/>")?;
                    self.builder.close_element();
                    self.depth -= 1;
                    return Ok(id);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b"=")?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.bump(1);
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.bump(1);
                    self.builder.attribute(&aname, &unescape(&raw));
                }
                None => return Err(self.err("eof in start tag")),
            }
        }
        // content
        loop {
            match self.peek() {
                None => return Err(self.err("eof inside element")),
                Some(b'<') => {
                    if self.at(b"</") {
                        self.bump(2);
                        let close = self.parse_name()?;
                        if close != name {
                            return Err(self.err(&format!(
                                "mismatched close tag: expected </{name}>, found </{close}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect(b">")?;
                        self.builder.close_element();
                        self.depth -= 1;
                        return Ok(id);
                    } else if self.at(b"<!--") {
                        let end = self.find(b"-->")?;
                        self.pos = end + 3;
                    } else if self.at(b"<![CDATA[") {
                        self.bump(9);
                        let end = self.find(b"]]>")?;
                        let raw = String::from_utf8_lossy(&self.input[self.pos..end]).into_owned();
                        if !raw.is_empty() {
                            self.builder.text(&raw);
                        }
                        self.pos = end + 3;
                    } else if self.at(b"<?") {
                        let end = self.find(b"?>")?;
                        self.pos = end + 2;
                    } else {
                        self.parse_element()?;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(&raw);
                    if !text.trim().is_empty() {
                        self.builder.text(&text);
                    }
                }
            }
        }
    }
}

/// Decode the predefined XML entities and decimal/hex character references.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        if let Some(semi) = rest.find(';') {
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    if let Ok(cp) = u32::from_str_radix(&ent[2..], 16) {
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                }
                _ if ent.starts_with('#') => {
                    if let Ok(cp) = ent[1..].parse::<u32>() {
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                }
                _ => {
                    // unknown entity: keep literally
                    out.push('&');
                    out.push_str(ent);
                    out.push(';');
                }
            }
            rest = &rest[semi + 1..];
        } else {
            out.push_str(rest);
            rest = "";
        }
    }
    out.push_str(rest);
    out
}

/// Escape character data for serialization.
fn escape(s: &str, attr: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialize the subtree rooted at `n` into `out` — the *content* of `n` in
/// the paper's sense (§1.1). Attributes serialize as `name="value"`.
pub fn serialize_node(doc: &Document, n: NodeId, out: &mut String) {
    match doc.kind(n) {
        NodeKind::Text => out.push_str(&escape(&doc.value(n), false)),
        NodeKind::Attribute => {
            out.push_str(doc.label(n));
            out.push_str("=\"");
            out.push_str(&escape(&doc.value(n), true));
            out.push('"');
        }
        NodeKind::Element => {
            out.push('<');
            out.push_str(doc.label(n));
            let kids = doc.children(n);
            let mut content_start = 0;
            for (i, &c) in kids.iter().enumerate() {
                if doc.kind(c) == NodeKind::Attribute {
                    out.push(' ');
                    serialize_node(doc, c, out);
                    content_start = i + 1;
                } else {
                    break;
                }
            }
            if kids[content_start..].is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for &c in &kids[content_start..] {
                serialize_node(doc, c, out);
            }
            out.push_str("</");
            out.push_str(doc.label(n));
            out.push('>');
        }
    }
}

/// Serialize a whole document.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    serialize_node(doc, doc.root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = parse_document(
            r#"<bib><book year="1999"><title>Data on the Web</title><author>Abiteboul</author></book></bib>"#,
        )
        .unwrap();
        assert_eq!(doc.label(doc.root()), "bib");
        let book = doc.children(doc.root())[0];
        assert_eq!(doc.label(book), "book");
        let year = doc.children(book)[0];
        assert_eq!(doc.kind(year), NodeKind::Attribute);
        assert_eq!(doc.value(year), "1999");
        assert_eq!(doc.value(book), "Data on the WebAbiteboul");
    }

    #[test]
    fn self_closing_and_whitespace() {
        let doc = parse_document("<a>\n  <b/>\n  <c  x='1'   />\n</a>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
    }

    #[test]
    fn prolog_comments_cdata_pi() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><![CDATA[x < y]]><?pi data?></a>",
        )
        .unwrap();
        assert_eq!(doc.value(doc.root()), "x < y");
    }

    #[test]
    fn doctype_skipped() {
        let doc = parse_document("<!DOCTYPE bib [ <!ELEMENT bib (book*)> ]><bib/>").unwrap();
        assert_eq!(doc.label(doc.root()), "bib");
    }

    #[test]
    fn entities_roundtrip() {
        let doc = parse_document("<a t=\"&lt;&amp;&quot;\">x &amp; y &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.value(doc.root()), "x & y AB");
        let t = doc.children(doc.root())[0];
        assert_eq!(doc.value(t), "<&\"");
        // serialize and reparse
        let text = serialize(&doc);
        let doc2 = parse_document(&text).unwrap();
        assert_eq!(doc2.value(doc2.root()), "x & y AB");
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn trailing_garbage_error() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_errors() {
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a x=>").is_err());
        assert!(parse_document("<a x=\"1>").is_err());
        assert!(parse_document("<!-- never closed").is_err());
    }

    #[test]
    fn serialize_roundtrips_structure() {
        let src = r#"<site><regions><item id="7"><name>gold watch</name><description><parlist><listitem>fine <bold>gold</bold></listitem></parlist></description></item></regions></site>"#;
        let d1 = parse_document(src).unwrap();
        let text = serialize(&d1);
        let d2 = parse_document(&text).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.all_nodes().zip(d2.all_nodes()) {
            assert_eq!(d1.label(a), d2.label(b));
            assert_eq!(d1.kind(a), d2.kind(b));
            assert_eq!(d1.structural_id(a), d2.structural_id(b));
        }
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_document("<a>  <b>x</b>  </a>").unwrap();
        // only the b element child, no whitespace text nodes
        assert_eq!(doc.children(doc.root()).len(), 1);
    }
}
