//! Env-filtered stderr subscriber and `ULOAD_LOG` initialisation.
//!
//! Directive grammar (a subset of `tracing_subscriber::EnvFilter`):
//! comma-separated `target=level` pairs, a bare `level` sets the
//! default, and the most specific (longest) matching target prefix
//! wins. Examples:
//!
//! ```text
//! ULOAD_LOG=uload=debug
//! ULOAD_LOG=uload::eval=trace,uload::cost=debug,warn
//! ```

use std::fmt;
use std::time::Duration;
use tracing::{Level, Subscriber};

/// Parsed `ULOAD_LOG`-style filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFilter {
    /// `(target prefix, max verbosity)` directives.
    directives: Vec<(String, Level)>,
    /// Level used when no directive's target matches.
    default: Option<Level>,
}

impl EnvFilter {
    /// Parse a directive string. Unparsable fragments are skipped.
    pub fn parse(spec: &str) -> EnvFilter {
        let mut directives = Vec::new();
        let mut default = None;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((target, level)) = part.split_once('=') {
                if let Some(level) = Level::from_str_loose(level.trim()) {
                    directives.push((target.trim().to_string(), level));
                }
            } else if let Some(level) = Level::from_str_loose(part) {
                default = Some(level);
            }
        }
        EnvFilter {
            directives,
            default,
        }
    }

    /// Is `(level, target)` enabled under this filter?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let mut best: Option<(usize, Level)> = None;
        for (prefix, max) in &self.directives {
            if target == prefix || target.starts_with(&format!("{prefix}::")) {
                let specificity = prefix.len();
                if best.is_none_or(|(len, _)| specificity > len) {
                    best = Some((specificity, *max));
                }
            }
        }
        match best {
            Some((_, max)) => level >= max,
            None => self.default.is_some_and(|max| level >= max),
        }
    }
}

/// A subscriber that prints filtered events (and span exits, with their
/// elapsed time) to stderr.
pub struct FmtSubscriber {
    filter: EnvFilter,
}

impl FmtSubscriber {
    pub fn new(filter: EnvFilter) -> FmtSubscriber {
        FmtSubscriber { filter }
    }
}

impl Subscriber for FmtSubscriber {
    fn enabled(&self, level: Level, target: &str) -> bool {
        self.filter.enabled(level, target)
    }

    fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>) {
        eprintln!("{level:>5} {target}: {message}");
    }

    fn span_exit(&self, level: Level, target: &str, name: &str, elapsed: Duration) {
        if self.filter.enabled(level, target) {
            eprintln!("{level:>5} {target}: {name} done in {elapsed:.2?}");
        }
    }
}

/// Install a [`FmtSubscriber`] from the `ULOAD_LOG` environment
/// variable. Returns `true` if a subscriber was installed by this call;
/// `false` when the variable is unset/empty or a global subscriber is
/// already in place (both no-ops, safe to call repeatedly).
pub fn init_from_env() -> bool {
    let Ok(spec) = std::env::var("ULOAD_LOG") else {
        return false;
    };
    if spec.trim().is_empty() || tracing::dispatch::has_global_default() {
        return false;
    }
    let sub = FmtSubscriber::new(EnvFilter::parse(&spec));
    tracing::dispatch::set_global_default(Box::new(sub)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_longest_prefix_wins() {
        let f = EnvFilter::parse("uload=info,uload::eval=trace,warn");
        // specific directive: trace allowed under uload::eval
        assert!(f.enabled(Level::TRACE, "uload::eval"));
        assert!(f.enabled(Level::TRACE, "uload::eval::twig"));
        // broader directive caps other uload targets at info
        assert!(!f.enabled(Level::DEBUG, "uload::cost"));
        assert!(f.enabled(Level::INFO, "uload::cost"));
        // unmatched targets use the bare default (warn)
        assert!(!f.enabled(Level::INFO, "other"));
        assert!(f.enabled(Level::ERROR, "other"));
    }

    #[test]
    fn filter_prefix_is_module_boundary_aware() {
        let f = EnvFilter::parse("uload::eval=debug");
        // "uload::evaluator" is not inside the "uload::eval" module tree
        assert!(!f.enabled(Level::ERROR, "uload::evaluator"));
        assert!(f.enabled(Level::DEBUG, "uload::eval"));
    }

    #[test]
    fn filter_without_default_disables_unmatched() {
        let f = EnvFilter::parse("uload=debug");
        assert!(!f.enabled(Level::ERROR, "elsewhere"));
        assert!(f.enabled(Level::DEBUG, "uload::query"));
        assert!(!f.enabled(Level::TRACE, "uload::query"));
    }

    #[test]
    fn filter_skips_malformed_fragments() {
        let f = EnvFilter::parse("bogus=notalevel,, =,uload=debug");
        assert!(f.enabled(Level::DEBUG, "uload"));
        assert!(!f.enabled(Level::ERROR, "bogus"));
    }
}
