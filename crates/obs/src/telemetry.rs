//! Server-wide telemetry: atomic counters/gauges and log-linear
//! (HDR-style) latency histograms, collected in a [`MetricsRegistry`].
//!
//! Everything here is built for the serving hot path:
//!
//! * recording is **lock-free** — counters and gauges are single
//!   `AtomicU64`s, a histogram record is one relaxed `fetch_add` into a
//!   fixed bucket array plus count/sum/min/max updates;
//! * snapshots are **mergeable** — [`HistogramSnapshot::merge`] adds
//!   bucket-wise, so per-thread (or per-process) histograms combine
//!   into one distribution without coordination while recording;
//! * quantiles are **bounded**, not exact — a log-linear bucket layout
//!   with [`SUB_BITS`] sub-buckets per octave keeps the relative bucket
//!   width ≤ 1/2^[`SUB_BITS`] (6.25%), and [`HistogramSnapshot::quantile`]
//!   reports the upper bound of the bucket holding the nearest-rank
//!   value. The true quantile always lies inside the reported bucket
//!   (property-tested in `tests/properties.rs`).
//!
//! The registry itself is a name → handle map behind a mutex; callers
//! are expected to resolve handles once (at startup) and record through
//! the returned `Arc`s, so the map lock never sits on a hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time atomic gauge. [`Gauge::inc`]/[`Gauge::dec`] must be
/// paired (the gauge is unsigned); [`Gauge::set_max`] turns it into a
/// high-water mark.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Must be paired with a preceding [`Gauge::inc`].
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two,
/// so a bucket is never wider than 1/16 (6.25%) of its value.
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKET_COUNT: usize = (65 - SUB_BITS as usize) * SUB as usize;

/// The log-linear bucket holding `v`: values below `2^SUB_BITS` map
/// exactly, larger values are keyed by (octave, top [`SUB_BITS`]
/// mantissa bits).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let low = ((v >> (e - SUB_BITS)) & (SUB - 1)) as usize;
        (e - SUB_BITS + 1) as usize * SUB as usize + low
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i` (the inverse of
/// [`bucket_index`]: `bucket_bounds(bucket_index(v))` contains `v`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let sub = SUB as usize;
    if i < sub {
        (i as u64, i as u64)
    } else {
        let block = (i / sub) as u32;
        let low = (i % sub) as u64;
        let e = block + SUB_BITS - 1;
        let width = 1u64 << (e - SUB_BITS);
        let lo = (1u64 << e) + low * width;
        (lo, lo + width.saturating_sub(1))
    }
}

/// A lock-free log-linear histogram (HDR-style): fixed atomic bucket
/// array, relaxed recording, snapshot on demand.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// Record one observation (e.g. a latency in nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (relaxed loads; counts
    /// racing with concurrent records may be off by in-flight updates,
    /// never corrupted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// Fold another snapshot into this one bucket-wise. Quantiles of the
    /// merged snapshot bound the quantiles of the combined sample
    /// exactly as tightly as a single histogram over all values would.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, reported as the **upper bound** of the
    /// bucket holding the rank-⌈q·n⌉ value; the true quantile lies
    /// within that bucket (≤ 6.25% below the reported value).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// `(lo, hi, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// JSON form: summary stats, named quantiles, and the non-empty
    /// buckets (`{"lo","hi","count"}` each).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("min", Json::Num(self.min() as f64)),
            ("max", Json::Num(self.max as f64)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Num(self.p50() as f64)),
            ("p90", Json::Num(self.p90() as f64)),
            ("p99", Json::Num(self.p99() as f64)),
            ("p999", Json::Num(self.p999() as f64)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, hi, count)| {
                            Json::obj(vec![
                                ("lo", Json::Num(lo as f64)),
                                ("hi", Json::Num(hi as f64)),
                                ("count", Json::Num(count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s and [`Histogram`]s.
///
/// `counter`/`gauge`/`histogram` get-or-register by name and hand back
/// an `Arc` handle; resolve once, record forever — the internal maps
/// are only locked at registration and snapshot time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Owned copy of a [`MetricsRegistry`] at one instant.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)`, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)`, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Find a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Find a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The `"registry"` object of the `METRICS` schema: named counter,
    /// gauge and histogram arrays.
    pub fn to_json(&self) -> Json {
        let named = |name: &str, value: u64| {
            Json::obj(vec![
                ("name", Json::Str(name.to_string())),
                ("value", Json::Num(value as f64)),
            ])
        };
        Json::obj(vec![
            (
                "counters",
                Json::Arr(self.counters.iter().map(|(n, v)| named(n, *v)).collect()),
            ),
            (
                "gauges",
                Json::Arr(self.gauges.iter().map(|(n, v)| named(n, *v)).collect()),
            ),
            (
                "histograms",
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|(n, s)| {
                            let mut fields = vec![("name".to_string(), Json::Str(n.clone()))];
                            if let Json::Obj(rest) = s.to_json() {
                                fields.extend(rest);
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_invert() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1_000_000_007,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}] (bucket {i})");
            assert!(i < BUCKET_COUNT);
            // relative width ≤ 1/16 above the linear range
            if v >= SUB {
                assert!(hi - lo <= lo / SUB, "bucket {i} too wide: [{lo},{hi}]");
            }
        }
        // bucket boundaries are seamless: consecutive buckets tile the line
        for i in 0..BUCKET_COUNT - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi.wrapping_add(1), lo_next, "gap after bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles_bound_the_sample() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        // p50 of 1..=1000 is 500; the reported bucket upper bound must
        // cover it and stay within one bucket (6.25%) above
        let p50 = s.p50();
        assert!((500..=531).contains(&p50), "p50={p50}");
        let p999 = s.p999();
        assert!((999..=1000).contains(&p999), "p999={p999}");
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99() && s.p99() <= s.p999());
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in 0..100u64 {
            a.record(v);
        }
        for v in 100..200u64 {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let whole = Histogram::new();
        for v in 0..200u64 {
            whole.record(v);
        }
        assert_eq!(merged, whole.snapshot());
        assert_eq!(merged.count(), 200);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_returns_shared_handles_and_sorted_snapshots() {
        let r = MetricsRegistry::new();
        r.counter("b.requests").add(2);
        r.counter("a.rows").add(5);
        r.counter("b.requests").inc(); // same handle by name
        r.gauge("depth").set(3);
        r.gauge("hw").set_max(10);
        r.gauge("hw").set_max(4); // high-water keeps 10
        r.histogram("lat").record(42);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a.rows".into(), 5), ("b.requests".into(), 3)]
        );
        assert_eq!(s.counter("b.requests"), Some(3));
        assert_eq!(s.gauges, vec![("depth".into(), 3), ("hw".into(), 10)]);
        assert_eq!(s.histogram("lat").unwrap().count(), 1);
        let json = s.to_json().to_string_compact();
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"p999\""), "{json}");
    }

    #[test]
    fn gauge_inc_dec_pair() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }
}
