//! The `EXPLAIN ANALYZE` surface.
//!
//! [`OpProfile`] is the *actual* side: the evaluator measures one node
//! per physical operator (output cardinality, wall time, kernel
//! counters). The rewriting layer pairs that tree with the cost model's
//! *estimates* into a [`PlanNodeProfile`] tree, wraps it with phase
//! timings, cache counters and arm telemetry into a [`QueryProfile`],
//! and renders the result as pretty text or JSON.

use crate::json::Json;
use crate::metrics::{CacheCounters, ExecMetrics, ResultCacheCounters};
use std::fmt::Write as _;

/// Measured execution of one physical operator (and its inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator label, e.g. `StructJoin(child)` or `Scan(v_items)`.
    pub op: String,
    /// Output cardinality.
    pub out_rows: u64,
    /// Wall time of this operator *including* its children.
    pub time_ns: u64,
    /// Kernel counters recorded while this operator ran.
    pub metrics: ExecMetrics,
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Nodes in this subtree (including self).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(OpProfile::node_count)
            .sum::<usize>()
    }

    /// Time attributable to this operator alone (saturating: children
    /// are timed separately, so clock skew cannot go negative).
    pub fn self_time_ns(&self) -> u64 {
        let child_time: u64 = self.children.iter().map(|c| c.time_ns).sum();
        self.time_ns.saturating_sub(child_time)
    }
}

/// One plan node with the cost model's estimate paired against measured
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNodeProfile {
    pub op: String,
    /// Estimated cost (abstract cost units from `rewriting::cost`).
    pub est_cost: f64,
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Measured output cardinality.
    pub actual_rows: u64,
    /// Measured wall time including children.
    pub time_ns: u64,
    /// Kernel counters recorded while this node ran.
    pub metrics: ExecMetrics,
    /// True when the cardinality estimate was off by ≥4× in either
    /// direction (on at least one row).
    pub mispredicted: bool,
    pub children: Vec<PlanNodeProfile>,
}

impl PlanNodeProfile {
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanNodeProfile::node_count)
            .sum::<usize>()
    }

    /// Does any node in this subtree carry the misprediction flag?
    pub fn any_mispredicted(&self) -> bool {
        self.mispredicted || self.children.iter().any(PlanNodeProfile::any_mispredicted)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::Str(self.op.clone())),
            ("est_cost", Json::Num(self.est_cost)),
            ("est_rows", Json::Num(self.est_rows)),
            ("actual_rows", Json::Num(self.actual_rows as f64)),
            ("time_ns", Json::Num(self.time_ns as f64)),
            ("comparisons", Json::Num(self.metrics.comparisons as f64)),
            (
                "stack_high_water",
                Json::Num(self.metrics.stack_high_water as f64),
            ),
            (
                "solutions_high_water",
                Json::Num(self.metrics.solutions_high_water as f64),
            ),
            (
                "twig_fallbacks",
                Json::Num(self.metrics.twig_fallbacks as f64),
            ),
            (
                "elements_skipped",
                Json::Num(self.metrics.elements_skipped as f64),
            ),
            (
                "blocks_pruned",
                Json::Num(self.metrics.blocks_pruned as f64),
            ),
            (
                "partitions_opened",
                Json::Num(self.metrics.partitions_opened as f64),
            ),
            (
                "partitions_total",
                Json::Num(self.metrics.partitions_total as f64),
            ),
            (
                "batches_scanned",
                Json::Num(self.metrics.batches_scanned as f64),
            ),
            (
                "vector_compares",
                Json::Num(self.metrics.vector_compares as f64),
            ),
            ("mispredicted", Json::Bool(self.mispredicted)),
            (
                "children",
                Json::Arr(self.children.iter().map(PlanNodeProfile::to_json).collect()),
            ),
        ])
    }
}

/// Which cost-model arm ran, and how the alternative actually compared.
/// Recorded only in profiled mode, where both arms execute.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmTelemetry {
    /// `"twig"` or `"cascade"`.
    pub chosen: String,
    /// Estimated cost of the chosen arm (abstract units).
    pub est_chosen: f64,
    /// Estimated cost of the alternative arm.
    pub est_alternative: f64,
    /// Measured wall time of the chosen arm.
    pub actual_chosen_ns: u64,
    /// Measured wall time of the alternative arm.
    pub actual_alternative_ns: u64,
    /// True when the chosen arm ran ≥2× slower than the alternative.
    pub mispredicted: bool,
}

impl ArmTelemetry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("chosen", Json::Str(self.chosen.clone())),
            ("est_chosen", Json::Num(self.est_chosen)),
            ("est_alternative", Json::Num(self.est_alternative)),
            ("actual_chosen_ns", Json::Num(self.actual_chosen_ns as f64)),
            (
                "actual_alternative_ns",
                Json::Num(self.actual_alternative_ns as f64),
            ),
            ("mispredicted", Json::Bool(self.mispredicted)),
        ])
    }
}

/// Per-operator counters from one *streamed* (pipelined) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStreamProfile {
    /// Operator label, e.g. `StructJoin(⋈,ID/ID)`.
    pub op: String,
    /// Did this operator materialize its whole input before emitting?
    pub breaker: bool,
    /// Batches this operator emitted.
    pub batches: u64,
    /// Rows this operator emitted.
    pub rows: u64,
    /// Kernel counters absorbed from the per-batch evaluations.
    pub metrics: ExecMetrics,
}

impl OpStreamProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::Str(self.op.clone())),
            ("breaker", Json::Bool(self.breaker)),
            ("batches", Json::Num(self.batches as f64)),
            ("rows", Json::Num(self.rows as f64)),
            ("comparisons", Json::Num(self.metrics.comparisons as f64)),
            (
                "stack_high_water",
                Json::Num(self.metrics.stack_high_water as f64),
            ),
            (
                "solutions_high_water",
                Json::Num(self.metrics.solutions_high_water as f64),
            ),
            (
                "twig_fallbacks",
                Json::Num(self.metrics.twig_fallbacks as f64),
            ),
            (
                "elements_skipped",
                Json::Num(self.metrics.elements_skipped as f64),
            ),
            (
                "blocks_pruned",
                Json::Num(self.metrics.blocks_pruned as f64),
            ),
            (
                "partitions_opened",
                Json::Num(self.metrics.partitions_opened as f64),
            ),
            (
                "partitions_total",
                Json::Num(self.metrics.partitions_total as f64),
            ),
            (
                "batches_scanned",
                Json::Num(self.metrics.batches_scanned as f64),
            ),
            (
                "vector_compares",
                Json::Num(self.metrics.vector_compares as f64),
            ),
        ])
    }
}

/// The pipelined executor's report for one query: batch configuration,
/// stream totals, the peak-resident-tuples gauge, and per-operator
/// counters in plan pre-order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProfile {
    /// Configured target rows per batch.
    pub batch_size: u64,
    /// Batches the consumer pulled from the root cursor.
    pub batches: u64,
    /// Rows the root cursor emitted in total.
    pub rows: u64,
    /// High-water mark of tuples resident across the whole cursor tree
    /// (build sides + breaker buffers + in-flight batches).
    pub peak_resident_tuples: u64,
    /// Labels of the plan's pipeline breakers, pre-order.
    pub breakers: Vec<String>,
    /// Per-operator streaming counters, pre-order.
    pub ops: Vec<OpStreamProfile>,
}

impl StreamProfile {
    /// The stream report as JSON (the `"streamed"` object of the
    /// profile schema) — also useful standalone, via
    /// `QueryResults::stream_profile`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("batch_size", Json::Num(self.batch_size as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("rows", Json::Num(self.rows as f64)),
            (
                "peak_resident_tuples",
                Json::Num(self.peak_resident_tuples as f64),
            ),
            (
                "breakers",
                Json::Arr(self.breakers.iter().map(|b| Json::Str(b.clone())).collect()),
            ),
            (
                "ops",
                Json::Arr(self.ops.iter().map(OpStreamProfile::to_json).collect()),
            ),
        ])
    }
}

/// The complete `EXPLAIN ANALYZE` record for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The query text.
    pub query: String,
    /// `(phase name, elapsed ns)` in lifecycle order: parse, extract,
    /// containment/rewrite, plan, eval.
    pub phases: Vec<(String, u64)>,
    /// The estimated-vs-actual operator tree of the executed plan.
    pub plan: PlanNodeProfile,
    /// Shared-cache counters, when the engine runs with a cache.
    pub cache: Option<CacheCounters>,
    /// Twig-vs-cascade arm telemetry, when the plan had both arms.
    pub arm: Option<ArmTelemetry>,
    /// The pipelined executor's counters, when the profiled run also
    /// streamed the chosen plan.
    pub streamed: Option<StreamProfile>,
    /// End-to-end wall time.
    pub total_ns: u64,
}

/// One serving session's cache-effectiveness report: how this client's
/// requests fared against the result cache, with a snapshot of the
/// engine-wide `CanonicalCache` counters (the containment/rewriting
/// memo is shared across sessions, so its occupancy and hit rate are
/// global figures embedded for context). This is what the server's
/// `STATS` command returns, via [`SessionProfile::to_json`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SessionProfile {
    /// Server-assigned session id.
    pub session_id: u64,
    /// Requests this session executed (cache hits included).
    pub queries: u64,
    /// `PREPARE` commands this session issued.
    pub prepared: u64,
    /// Result rows streamed to this session.
    pub rows: u64,
    /// Requests cancelled mid-stream (explicit `CANCEL` or disconnect).
    pub cancelled: u64,
    /// Requests aborted for exceeding their per-query residency budget.
    pub budget_aborts: u64,
    /// Requests rejected because admission timed out under load.
    pub admission_timeouts: u64,
    /// This session's result-cache counters (hits/misses/insertions are
    /// per-session; evictions and occupancy are cache-global).
    pub result_cache: ResultCacheCounters,
    /// Engine-wide `CanonicalCache` snapshot, when the engine caches.
    pub canonical: Option<CacheCounters>,
    /// Kernel counters absorbed from this session's uncached executions
    /// (counters sum; high-waters keep the max), so serving-path clients
    /// see `batches_scanned`/`vector_compares`/`elements_skipped`
    /// without enabling full profiling. All-zero when the server runs
    /// with telemetry off.
    pub exec: ExecMetrics,
}

impl SessionProfile {
    /// The JSON form (one `STATS` line on the wire; validated against
    /// `schemas/bench_server.schema.json`'s `cacheCounters` shapes).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("session_id", Json::Num(self.session_id as f64)),
            ("queries", Json::Num(self.queries as f64)),
            ("prepared", Json::Num(self.prepared as f64)),
            ("rows", Json::Num(self.rows as f64)),
            ("cancelled", Json::Num(self.cancelled as f64)),
            ("budget_aborts", Json::Num(self.budget_aborts as f64)),
            (
                "admission_timeouts",
                Json::Num(self.admission_timeouts as f64),
            ),
            (
                "result_cache",
                Json::obj(vec![
                    ("hits", Json::Num(self.result_cache.hits as f64)),
                    ("misses", Json::Num(self.result_cache.misses as f64)),
                    ("insertions", Json::Num(self.result_cache.insertions as f64)),
                    ("evictions", Json::Num(self.result_cache.evictions as f64)),
                    ("entries", Json::Num(self.result_cache.entries as f64)),
                    ("hit_rate", Json::Num(self.result_cache.hit_rate())),
                ]),
            ),
            (
                "canonical_cache",
                match &self.canonical {
                    Some(c) => Json::obj(vec![
                        ("hits", Json::Num(c.hits as f64)),
                        ("misses", Json::Num(c.misses as f64)),
                        ("evictions", Json::Num(c.evictions as f64)),
                        ("entries", Json::Num(c.entries() as f64)),
                        ("hit_rate", Json::Num(c.hit_rate())),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "exec",
                Json::obj(vec![
                    ("comparisons", Json::Num(self.exec.comparisons as f64)),
                    (
                        "elements_skipped",
                        Json::Num(self.exec.elements_skipped as f64),
                    ),
                    ("blocks_pruned", Json::Num(self.exec.blocks_pruned as f64)),
                    (
                        "batches_scanned",
                        Json::Num(self.exec.batches_scanned as f64),
                    ),
                    (
                        "vector_compares",
                        Json::Num(self.exec.vector_compares as f64),
                    ),
                    (
                        "partitions_opened",
                        Json::Num(self.exec.partitions_opened as f64),
                    ),
                    (
                        "partitions_total",
                        Json::Num(self.exec.partitions_total as f64),
                    ),
                    ("twig_fallbacks", Json::Num(self.exec.twig_fallbacks as f64)),
                    (
                        "stack_high_water",
                        Json::Num(self.exec.stack_high_water as f64),
                    ),
                    (
                        "solutions_high_water",
                        Json::Num(self.exec.solutions_high_water as f64),
                    ),
                ]),
            ),
        ])
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl QueryProfile {
    /// Pretty multi-line `EXPLAIN ANALYZE` rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE  {}", self.query);
        let _ = writeln!(out, "total: {}", fmt_ns(self.total_ns));
        if !self.phases.is_empty() {
            let phases: Vec<String> = self
                .phases
                .iter()
                .map(|(name, ns)| format!("{name}={}", fmt_ns(*ns)))
                .collect();
            let _ = writeln!(out, "phases: {}", phases.join("  "));
        }
        if let Some(cache) = &self.cache {
            let _ = writeln!(
                out,
                "cache: hits={} misses={} evictions={} entries={} (verdicts={} models={} annotations={})",
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.entries(),
                cache.verdict_entries,
                cache.model_entries,
                cache.annotation_entries
            );
        }
        if let Some(arm) = &self.arm {
            let alternative = if arm.chosen == "twig" {
                "cascade"
            } else {
                "twig"
            };
            let _ = writeln!(
                out,
                "arm: chose {} (est {:.1} vs {:.1}); actual {} vs {} ({}){}",
                arm.chosen,
                arm.est_chosen,
                arm.est_alternative,
                fmt_ns(arm.actual_chosen_ns),
                fmt_ns(arm.actual_alternative_ns),
                alternative,
                if arm.mispredicted {
                    "  ** MISPREDICTED **"
                } else {
                    ""
                }
            );
        }
        if let Some(s) = &self.streamed {
            let _ = writeln!(
                out,
                "streamed: batch_size={} batches={} rows={} peak_resident={}{}",
                s.batch_size,
                s.batches,
                s.rows,
                s.peak_resident_tuples,
                if s.breakers.is_empty() {
                    String::new()
                } else {
                    format!("  breakers=[{}]", s.breakers.join(", "))
                }
            );
            for op in &s.ops {
                let _ = writeln!(
                    out,
                    "  ▸ {}: {} batches, {} rows{}",
                    op.op,
                    op.batches,
                    op.rows,
                    if op.breaker { "  [breaker]" } else { "" }
                );
            }
        }
        render_node(&mut out, &self.plan, "", true, true);
        out
    }

    /// The JSON form (validated by `schemas/query_profile.schema.json`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("query", Json::Str(self.query.clone())),
            ("total_ns", Json::Num(self.total_ns as f64)),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, ns)| {
                            Json::obj(vec![
                                ("name", Json::Str(name.clone())),
                                ("time_ns", Json::Num(*ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("plan", self.plan.to_json()),
        ];
        fields.push((
            "cache",
            match &self.cache {
                Some(c) => Json::obj(vec![
                    ("hits", Json::Num(c.hits as f64)),
                    ("misses", Json::Num(c.misses as f64)),
                    ("evictions", Json::Num(c.evictions as f64)),
                    ("verdict_entries", Json::Num(c.verdict_entries as f64)),
                    ("model_entries", Json::Num(c.model_entries as f64)),
                    ("annotation_entries", Json::Num(c.annotation_entries as f64)),
                ]),
                None => Json::Null,
            },
        ));
        fields.push((
            "arm",
            match &self.arm {
                Some(a) => a.to_json(),
                None => Json::Null,
            },
        ));
        fields.push((
            "streamed",
            match &self.streamed {
                Some(s) => s.to_json(),
                None => Json::Null,
            },
        ));
        Json::obj(fields)
    }
}

fn render_node(
    out: &mut String,
    node: &PlanNodeProfile,
    prefix: &str,
    is_last: bool,
    is_root: bool,
) {
    let (branch, child_prefix) = if is_root {
        (String::new(), String::new())
    } else if is_last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let mut extras = String::new();
    if node.metrics.comparisons > 0 {
        let _ = write!(extras, " cmp={}", node.metrics.comparisons);
    }
    if node.metrics.stack_high_water > 0 {
        let _ = write!(extras, " stack^={}", node.metrics.stack_high_water);
    }
    if node.metrics.solutions_high_water > 0 {
        let _ = write!(extras, " sol^={}", node.metrics.solutions_high_water);
    }
    if node.metrics.twig_fallbacks > 0 {
        let _ = write!(extras, " fallbacks={}", node.metrics.twig_fallbacks);
    }
    if node.metrics.elements_skipped > 0 {
        let _ = write!(extras, " skip={}", node.metrics.elements_skipped);
    }
    if node.metrics.blocks_pruned > 0 {
        let _ = write!(extras, " blocks={}", node.metrics.blocks_pruned);
    }
    if node.metrics.partitions_total > 0 {
        let _ = write!(
            extras,
            " parts={}/{}",
            node.metrics.partitions_opened, node.metrics.partitions_total
        );
    }
    if node.metrics.batches_scanned > 0 {
        let _ = write!(extras, " vbatches={}", node.metrics.batches_scanned);
    }
    if node.metrics.vector_compares > 0 {
        let _ = write!(extras, " vcmp={}", node.metrics.vector_compares);
    }
    let _ = writeln!(
        out,
        "{branch}{}  (est cost={:.1} rows={:.1})  (actual rows={} time={}{extras}){}",
        node.op,
        node.est_cost,
        node.est_rows,
        node.actual_rows,
        fmt_ns(node.time_ns),
        if node.mispredicted {
            "  [est off ≥4×]"
        } else {
            ""
        }
    );
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_node(out, child, &child_prefix, i + 1 == n, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> QueryProfile {
        QueryProfile {
            query: "//item/name".to_string(),
            phases: vec![
                ("parse".to_string(), 1_000),
                ("eval".to_string(), 2_000_000),
            ],
            plan: PlanNodeProfile {
                op: "StructJoin(child)".to_string(),
                est_cost: 120.0,
                est_rows: 10.0,
                actual_rows: 50,
                time_ns: 1_500_000,
                metrics: ExecMetrics {
                    comparisons: 200,
                    stack_high_water: 4,
                    elements_skipped: 75,
                    blocks_pruned: 3,
                    partitions_opened: 2,
                    partitions_total: 5,
                    batches_scanned: 7,
                    vector_compares: 448,
                    ..ExecMetrics::default()
                },
                mispredicted: true,
                children: vec![
                    PlanNodeProfile {
                        op: "Scan(v_items)".to_string(),
                        est_cost: 10.0,
                        est_rows: 10.0,
                        actual_rows: 10,
                        time_ns: 100_000,
                        metrics: ExecMetrics::default(),
                        mispredicted: false,
                        children: vec![],
                    },
                    PlanNodeProfile {
                        op: "Scan(v_names)".to_string(),
                        est_cost: 12.0,
                        est_rows: 12.0,
                        actual_rows: 12,
                        time_ns: 90_000,
                        metrics: ExecMetrics::default(),
                        mispredicted: false,
                        children: vec![],
                    },
                ],
            },
            cache: Some(CacheCounters {
                hits: 2,
                misses: 3,
                evictions: 0,
                verdict_entries: 3,
                model_entries: 1,
                annotation_entries: 0,
            }),
            arm: Some(ArmTelemetry {
                chosen: "twig".to_string(),
                est_chosen: 100.0,
                est_alternative: 140.0,
                actual_chosen_ns: 1_500_000,
                actual_alternative_ns: 2_100_000,
                mispredicted: false,
            }),
            streamed: Some(StreamProfile {
                batch_size: 1024,
                batches: 1,
                rows: 50,
                peak_resident_tuples: 62,
                breakers: vec!["Sort".to_string()],
                ops: vec![
                    OpStreamProfile {
                        op: "StructJoin(child)".to_string(),
                        breaker: false,
                        batches: 1,
                        rows: 50,
                        metrics: ExecMetrics {
                            comparisons: 200,
                            stack_high_water: 4,
                            ..ExecMetrics::default()
                        },
                    },
                    OpStreamProfile {
                        op: "Scan(v_items)".to_string(),
                        breaker: false,
                        batches: 1,
                        rows: 10,
                        metrics: ExecMetrics::default(),
                    },
                ],
            }),
            total_ns: 2_001_000,
        }
    }

    #[test]
    fn op_profile_counts_and_self_time() {
        let p = OpProfile {
            op: "join".to_string(),
            out_rows: 5,
            time_ns: 100,
            metrics: ExecMetrics::default(),
            children: vec![
                OpProfile {
                    op: "a".to_string(),
                    out_rows: 2,
                    time_ns: 30,
                    metrics: ExecMetrics::default(),
                    children: vec![],
                },
                OpProfile {
                    op: "b".to_string(),
                    out_rows: 3,
                    time_ns: 90,
                    metrics: ExecMetrics::default(),
                    children: vec![],
                },
            ],
        };
        assert_eq!(p.node_count(), 3);
        // children sum (120) exceeds parent's clock: saturates to zero
        assert_eq!(p.self_time_ns(), 0);
    }

    #[test]
    fn render_shows_tree_est_actual_and_flags() {
        let text = sample().render();
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("StructJoin(child)"));
        assert!(text.contains("est cost=120.0"));
        assert!(text.contains("actual rows=50"));
        assert!(text.contains("[est off ≥4×]"));
        assert!(text.contains("├─ Scan(v_items)"));
        assert!(text.contains("└─ Scan(v_names)"));
        assert!(text.contains("cmp=200"));
        assert!(text.contains("skip=75"));
        assert!(text.contains("blocks=3"));
        assert!(text.contains("parts=2/5"));
        assert!(text.contains("vbatches=7"));
        assert!(text.contains("vcmp=448"));
        assert!(text.contains("cache: hits=2"));
        assert!(text.contains("arm: chose twig"));
        assert!(text.contains("phases: parse=1.0µs"));
        assert!(text.contains("streamed: batch_size=1024 batches=1 rows=50 peak_resident=62"));
        assert!(text.contains("breakers=[Sort]"));
        assert!(text.contains("▸ StructJoin(child): 1 batches, 50 rows"));
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let profile = sample();
        let value = profile.to_json();
        let reparsed = json::parse(&value.to_string_pretty()).unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(
            reparsed
                .get("plan")
                .and_then(|p| p.get("op"))
                .and_then(Json::as_str),
            Some("StructJoin(child)")
        );
        assert_eq!(
            reparsed
                .get("plan")
                .and_then(|p| p.get("children"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        assert!(sample().plan.any_mispredicted());
        assert_eq!(sample().plan.node_count(), 3);
        assert_eq!(
            reparsed
                .get("streamed")
                .and_then(|s| s.get("peak_resident_tuples"))
                .and_then(Json::as_f64),
            Some(62.0)
        );
        assert_eq!(
            reparsed
                .get("plan")
                .and_then(|p| p.get("vector_compares"))
                .and_then(Json::as_f64),
            Some(448.0)
        );
        assert_eq!(
            reparsed
                .get("plan")
                .and_then(|p| p.get("batches_scanned"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        // a profile without a streamed pass serializes "streamed": null
        let mut plain = sample();
        plain.streamed = None;
        let v = plain.to_json();
        assert_eq!(v.get("streamed"), Some(&Json::Null));
    }
}
