//! Hand-rolled JSON: value, writer, parser, and a JSON-Schema-subset
//! validator. The workspace deliberately carries no serializer
//! dependency, so the profile format is kept contract-checked with this
//! small module instead.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors report a byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validate `value` against a JSON-Schema subset: `type` (including
/// `"integer"` and union arrays like `["object", "null"]`),
/// `properties`, `required`, `items`, and `$ref` to `#/$defs/<name>` of
/// the root schema (for recursive shapes). Unknown schema keywords are
/// ignored; errors name the offending path.
pub fn validate(value: &Json, schema: &Json) -> Result<(), String> {
    validate_at(value, schema, schema, "$")
}

fn type_matches(value: &Json, ty: &str) -> Result<bool, String> {
    Ok(match ty {
        "null" => matches!(value, Json::Null),
        "boolean" => matches!(value, Json::Bool(_)),
        "number" => matches!(value, Json::Num(_)),
        "integer" => matches!(value, Json::Num(n) if n.fract() == 0.0),
        "string" => matches!(value, Json::Str(_)),
        "array" => matches!(value, Json::Arr(_)),
        "object" => matches!(value, Json::Obj(_)),
        other => return Err(format!("unsupported schema type '{other}'")),
    })
}

fn validate_at(value: &Json, schema: &Json, root: &Json, path: &str) -> Result<(), String> {
    if let Some(fragment) = schema.get("$ref").and_then(Json::as_str) {
        let name = fragment
            .strip_prefix("#/$defs/")
            .ok_or_else(|| format!("{path}: unsupported $ref '{fragment}'"))?;
        let resolved = root
            .get("$defs")
            .and_then(|d| d.get(name))
            .ok_or_else(|| format!("{path}: $ref to unknown definition '{name}'"))?;
        return validate_at(value, resolved, root, path);
    }
    match schema.get("type") {
        Some(Json::Str(ty)) if !type_matches(value, ty).map_err(|e| format!("{path}: {e}"))? => {
            return Err(format!("{path}: expected type '{ty}'"));
        }
        Some(Json::Arr(alternatives)) => {
            let mut ok = false;
            for alt in alternatives {
                let ty = alt
                    .as_str()
                    .ok_or_else(|| format!("{path}: non-string entry in type union"))?;
                ok = ok || type_matches(value, ty).map_err(|e| format!("{path}: {e}"))?;
            }
            if !ok {
                let names: Vec<&str> = alternatives.iter().filter_map(Json::as_str).collect();
                return Err(format!("{path}: expected one of types {names:?}"));
            }
        }
        _ => {}
    }
    // required / properties apply only to objects (a null alternative in
    // a type union must not be forced to carry them)
    if matches!(value, Json::Obj(_)) {
        if let Some(Json::Arr(required)) = schema.get("required") {
            for req in required {
                if let Some(name) = req.as_str() {
                    if value.get(name).is_none() {
                        return Err(format!("{path}: missing required property '{name}'"));
                    }
                }
            }
        }
        if let Some(Json::Obj(props)) = schema.get("properties") {
            for (name, subschema) in props {
                if let Some(subvalue) = value.get(name) {
                    validate_at(subvalue, subschema, root, &format!("{path}.{name}"))?;
                }
            }
        }
    }
    if let Some(items_schema) = schema.get("items") {
        if let Json::Arr(items) = value {
            for (i, item) in items.iter().enumerate() {
                validate_at(item, items_schema, root, &format!("{path}[{i}]"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("scan \"x\"\n".to_string())),
            ("rows", Json::Num(42.0)),
            ("cost", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("kids", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
        assert!(v.to_string_compact().contains("\\\"x\\\"\\n"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_exponents() {
        assert_eq!(
            parse("\"a\\u0041\\n\"").unwrap(),
            Json::Str("aA\n".to_string())
        );
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
    }

    #[test]
    fn validator_checks_types_required_and_items() {
        let schema = parse(
            r#"{
              "type": "object",
              "required": ["op", "rows"],
              "properties": {
                "op": {"type": "string"},
                "rows": {"type": "integer"},
                "children": {"type": "array", "items": {"type": "object", "required": ["op"]}}
              }
            }"#,
        )
        .unwrap();
        let good = parse(r#"{"op":"scan","rows":3,"children":[{"op":"sel"}]}"#).unwrap();
        assert!(validate(&good, &schema).is_ok());

        let missing = parse(r#"{"op":"scan"}"#).unwrap();
        assert!(validate(&missing, &schema)
            .unwrap_err()
            .contains("required property 'rows'"));

        let not_int = parse(r#"{"op":"scan","rows":3.5}"#).unwrap();
        assert!(validate(&not_int, &schema)
            .unwrap_err()
            .contains("expected type 'integer'"));

        let bad_item = parse(r#"{"op":"scan","rows":1,"children":[{"x":1}]}"#).unwrap();
        let err = validate(&bad_item, &schema).unwrap_err();
        assert!(err.contains("$.children[0]"), "{err}");
    }

    #[test]
    fn validator_handles_unions_and_refs() {
        let schema = parse(
            r##"{
              "type": "object",
              "required": ["cache", "plan"],
              "properties": {
                "cache": {"type": ["object", "null"], "required": ["hits"],
                          "properties": {"hits": {"type": "integer"}}},
                "plan": {"$ref": "#/$defs/node"}
              },
              "$defs": {
                "node": {
                  "type": "object",
                  "required": ["op", "children"],
                  "properties": {
                    "op": {"type": "string"},
                    "children": {"type": "array", "items": {"$ref": "#/$defs/node"}}
                  }
                }
              }
            }"##,
        )
        .unwrap();
        let good = parse(
            r##"{"cache": null,
                "plan": {"op":"join","children":[{"op":"scan","children":[]}]}}"##,
        )
        .unwrap();
        assert!(validate(&good, &schema).is_ok());
        let with_cache = parse(
            r##"{"cache": {"hits": 3},
                "plan": {"op":"scan","children":[]}}"##,
        )
        .unwrap();
        assert!(validate(&with_cache, &schema).is_ok());

        // null object with required fields: the null alternative wins
        let bad_cache =
            parse(r##"{"cache": {"hits":"x"}, "plan": {"op":"s","children":[]}}"##).unwrap();
        assert!(validate(&bad_cache, &schema)
            .unwrap_err()
            .contains("$.cache.hits"));
        // recursion reaches nested children through the $ref
        let deep_bad = parse(
            r##"{"cache": null,
                "plan": {"op":"join","children":[{"op":1,"children":[]}]}}"##,
        )
        .unwrap();
        assert!(validate(&deep_bad, &schema)
            .unwrap_err()
            .contains("$.plan.children[0].op"));
        // unknown $ref target is an error, not a silent pass
        let dangling = parse(r##"{"$ref": "#/$defs/nope"}"##).unwrap();
        assert!(validate(&Json::Null, &dangling)
            .unwrap_err()
            .contains("unknown definition"));
    }
}
