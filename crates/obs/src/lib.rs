//! # obs — the engine-wide observability layer
//!
//! Everything the rest of the workspace uses to *watch itself run*:
//!
//! * [`metrics`] — per-operator execution counters ([`ExecMetrics`]) and
//!   the zero-cost [`Meter`] hook the physical join kernels are generic
//!   over, plus [`CacheCounters`] (a dependency-free mirror of the
//!   containment cache's statistics);
//! * [`profile`] — the `EXPLAIN ANALYZE` surface: [`OpProfile`] (the
//!   actual-side operator tree the evaluator measures) and
//!   [`QueryProfile`] / [`PlanNodeProfile`] (estimated cost paired with
//!   measured cardinality and time), renderable as pretty text and JSON;
//! * [`json`] — a hand-rolled JSON value, writer, parser and a small
//!   JSON-Schema-subset validator (the workspace carries no serializer
//!   dependency), used to keep the profile format contract-checked;
//! * [`subscriber`] — a `tracing` subscriber with an env-filter,
//!   installed from the `ULOAD_LOG` variable by [`init_from_env`];
//! * [`telemetry`] — server-wide metrics: the [`MetricsRegistry`] of
//!   atomic [`Counter`]s/[`Gauge`]s and lock-free log-linear
//!   [`Histogram`]s with mergeable snapshots (p50/p90/p99/p999);
//! * [`stats`] — the [`StatsStore`] cardinality feedback store:
//!   measured per-plan-node cardinalities and twig-vs-cascade arm
//!   outcomes keyed by `(document version, plan fingerprint)`, recorded
//!   from every profiled run for later adaptive re-optimization.
//!
//! ## Span taxonomy
//!
//! The engine emits spans/events under these targets (filter with
//! `ULOAD_LOG`, e.g. `ULOAD_LOG=uload=debug` or
//! `ULOAD_LOG=uload::eval=trace,warn`):
//!
//! | target               | what it covers                                  |
//! |----------------------|-------------------------------------------------|
//! | `uload::query`       | whole-query lifecycle (parse → … → eval)        |
//! | `uload::rewrite`     | per-pattern rewriting (generate-and-test)       |
//! | `uload::containment` | containment verdicts / canonical models         |
//! | `uload::eval`        | physical evaluation, twig fallbacks             |
//! | `uload::cost`        | cost-model decisions and mispredictions         |
//! | `uload::storage`     | ID-stream index builds, QEP construction        |
//! | `uload::server`      | serving path: `PREPARE`/`EXEC`/`QUERY` handling |

pub mod json;
pub mod metrics;
pub mod profile;
pub mod stats;
pub mod subscriber;
pub mod telemetry;

pub use json::Json;
pub use metrics::{CacheCounters, ExecMetrics, Meter, NoMeter, ResultCacheCounters};
pub use profile::{
    ArmTelemetry, OpProfile, OpStreamProfile, PlanNodeProfile, QueryProfile, SessionProfile,
    StreamProfile,
};
pub use stats::{ArmStats, NodeStats, StatsKey, StatsStore};
pub use subscriber::{init_from_env, EnvFilter, FmtSubscriber};
pub use telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
