//! Execution counters and the zero-cost metering hook.
//!
//! The physical join kernels (`algebra::stacktree`, `algebra::twig`) are
//! generic over [`Meter`]; the default [`NoMeter`] instantiation inlines
//! every hook to nothing, so the unprofiled paths compile to exactly the
//! code they had before instrumentation. When profiling is on, the
//! evaluator passes an [`ExecMetrics`] and the same kernels count
//! comparisons and high-water marks.

/// Per-operator execution counters, accumulated during one operator's
/// evaluation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Structural/value comparison tests performed (axis tests in the
    /// join kernels, predicate evaluations in value joins).
    pub comparisons: u64,
    /// High-water mark of the ancestor stack (StackTree) or open-entry
    /// chain (TwigStack).
    pub stack_high_water: u64,
    /// High-water mark of the per-node solution lists of the holistic
    /// twig operator (total entries resident across all pattern nodes).
    pub solutions_high_water: u64,
    /// Times a `TwigJoin` fell back to the binary cascade (uncovered
    /// shape, or `use_twigstack` off).
    pub twig_fallbacks: u64,
    /// Stream elements jumped over by skip-index seeks (never touched
    /// by the join kernels; zero on linear scans).
    pub elements_skipped: u64,
    /// Skip-index fence blocks a seek stepped over whole (at any fence
    /// level) without descending into them.
    pub blocks_pruned: u64,
    /// Summary-compatible stream partitions actually opened by scans.
    pub partitions_opened: u64,
    /// Total stream partitions the same scans could have opened.
    pub partitions_total: u64,
    /// Lane-wide column blocks examined by the vectorized kernels
    /// (`algebra::simd`); zero on the scalar paths.
    pub batches_scanned: u64,
    /// Element comparisons issued by the vectorized range kernels
    /// (whole blocks at a time, so this counts lanes, not branches).
    pub vector_compares: u64,
}

impl ExecMetrics {
    /// Fold another operator's counters into this one.
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.comparisons += other.comparisons;
        self.stack_high_water = self.stack_high_water.max(other.stack_high_water);
        self.solutions_high_water = self.solutions_high_water.max(other.solutions_high_water);
        self.twig_fallbacks += other.twig_fallbacks;
        self.elements_skipped += other.elements_skipped;
        self.blocks_pruned += other.blocks_pruned;
        self.partitions_opened += other.partitions_opened;
        self.partitions_total += other.partitions_total;
        self.batches_scanned += other.batches_scanned;
        self.vector_compares += other.vector_compares;
    }

    pub fn is_zero(&self) -> bool {
        *self == ExecMetrics::default()
    }
}

/// Counting hook the join kernels are generic over. Every method has an
/// empty default body so [`NoMeter`] monomorphizes to nothing.
pub trait Meter {
    /// `n` comparison tests were performed.
    #[inline(always)]
    fn comparisons(&mut self, _n: u64) {}
    /// The kernel's stack/open-chain reached depth `d`.
    #[inline(always)]
    fn stack_depth(&mut self, _d: usize) {}
    /// The kernel's solution lists currently hold `n` entries.
    #[inline(always)]
    fn solutions(&mut self, _n: usize) {}
    /// A notable execution event (e.g. a fallback) occurred.
    #[inline(always)]
    fn note_fallback(&mut self) {}
    /// A seek jumped over `n` stream elements without touching them.
    #[inline(always)]
    fn skipped(&mut self, _n: u64) {}
    /// A seek stepped over `n` fence blocks without descending.
    #[inline(always)]
    fn blocks_pruned(&mut self, _n: u64) {}
    /// A partitioned scan opened `opened` of `total` stream partitions.
    #[inline(always)]
    fn partitions(&mut self, _opened: u64, _total: u64) {}
    /// A vectorized kernel examined `n` lane-wide column blocks.
    #[inline(always)]
    fn batches(&mut self, _n: u64) {}
    /// A vectorized kernel issued `n` element comparisons.
    #[inline(always)]
    fn vector_compares(&mut self, _n: u64) {}
}

/// The free instantiation: counts nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoMeter;

impl Meter for NoMeter {}

impl Meter for ExecMetrics {
    #[inline]
    fn comparisons(&mut self, n: u64) {
        self.comparisons += n;
    }
    #[inline]
    fn stack_depth(&mut self, d: usize) {
        if d as u64 > self.stack_high_water {
            self.stack_high_water = d as u64;
        }
    }
    #[inline]
    fn solutions(&mut self, n: usize) {
        if n as u64 > self.solutions_high_water {
            self.solutions_high_water = n as u64;
        }
    }
    #[inline]
    fn note_fallback(&mut self) {
        self.twig_fallbacks += 1;
    }
    #[inline]
    fn skipped(&mut self, n: u64) {
        self.elements_skipped += n;
    }
    #[inline]
    fn blocks_pruned(&mut self, n: u64) {
        self.blocks_pruned += n;
    }
    #[inline]
    fn partitions(&mut self, opened: u64, total: u64) {
        self.partitions_opened += opened;
        self.partitions_total += total;
    }
    #[inline]
    fn batches(&mut self, n: u64) {
        self.batches_scanned += n;
    }
    #[inline]
    fn vector_compares(&mut self, n: u64) {
        self.vector_compares += n;
    }
}

/// Snapshot of a shared cache's effectiveness counters, with per-map
/// occupancy. A dependency-free mirror of the containment crate's
/// `CacheStats` so profiles can embed it without a layering cycle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Verdict-map entries resident.
    pub verdict_entries: usize,
    /// Canonical-model-map entries resident.
    pub model_entries: usize,
    /// Path-annotation-map entries resident.
    pub annotation_entries: usize,
}

impl CacheCounters {
    pub fn entries(&self) -> usize {
        self.verdict_entries + self.model_entries + self.annotation_entries
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Effectiveness counters of a *result* cache (the serving layer's
/// memo of serialized query outputs keyed by
/// `(plan fingerprint, document version)`). Dependency-free here so
/// session profiles can embed it without a layering cycle, exactly like
/// [`CacheCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheCounters {
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that had to execute their plan.
    pub misses: u64,
    /// Entries written after a miss.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl ResultCacheCounters {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_metrics_absorb_takes_max_of_high_waters() {
        let mut a = ExecMetrics {
            comparisons: 10,
            stack_high_water: 3,
            solutions_high_water: 100,
            twig_fallbacks: 0,
            elements_skipped: 40,
            blocks_pruned: 2,
            partitions_opened: 1,
            partitions_total: 4,
            batches_scanned: 8,
            vector_compares: 512,
        };
        let b = ExecMetrics {
            comparisons: 5,
            stack_high_water: 7,
            solutions_high_water: 50,
            twig_fallbacks: 1,
            elements_skipped: 60,
            blocks_pruned: 3,
            partitions_opened: 2,
            partitions_total: 6,
            batches_scanned: 2,
            vector_compares: 128,
        };
        a.absorb(&b);
        assert_eq!(a.comparisons, 15);
        assert_eq!(a.stack_high_water, 7);
        assert_eq!(a.solutions_high_water, 100);
        assert_eq!(a.twig_fallbacks, 1);
        assert_eq!(a.elements_skipped, 100);
        assert_eq!(a.blocks_pruned, 5);
        assert_eq!(a.partitions_opened, 3);
        assert_eq!(a.partitions_total, 10);
        assert_eq!(a.batches_scanned, 10);
        assert_eq!(a.vector_compares, 640);
        assert!(!a.is_zero());
        assert!(ExecMetrics::default().is_zero());
    }

    #[test]
    fn meter_impl_counts_and_no_meter_compiles_away() {
        fn kernel<M: Meter>(m: &mut M) {
            m.comparisons(3);
            m.stack_depth(4);
            m.stack_depth(2);
            m.solutions(9);
            m.note_fallback();
            m.skipped(11);
            m.blocks_pruned(2);
            m.partitions(1, 5);
            m.batches(3);
            m.vector_compares(192);
        }
        let mut m = ExecMetrics::default();
        kernel(&mut m);
        assert_eq!(m.comparisons, 3);
        assert_eq!(m.stack_high_water, 4);
        assert_eq!(m.solutions_high_water, 9);
        assert_eq!(m.twig_fallbacks, 1);
        assert_eq!(m.elements_skipped, 11);
        assert_eq!(m.blocks_pruned, 2);
        assert_eq!(m.partitions_opened, 1);
        assert_eq!(m.partitions_total, 5);
        assert_eq!(m.batches_scanned, 3);
        assert_eq!(m.vector_compares, 192);
        kernel(&mut NoMeter); // must simply compile and do nothing
    }

    #[test]
    fn cache_counters_totals() {
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            evictions: 0,
            verdict_entries: 5,
            model_entries: 2,
            annotation_entries: 1,
        };
        assert_eq!(c.entries(), 8);
        assert!((c.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
