//! The cardinality feedback store.
//!
//! EXPLAIN ANALYZE (PR 3) measures per-node actual cardinalities and
//! flags ≥4× mispredictions, and the twig-vs-cascade arm telemetry
//! flags ≥2× wrong arm choices — but until now both were rendered and
//! dropped. [`StatsStore`] is the durable half of the
//! observe-and-re-optimize loop (ROADMAP item 6): every profiled run
//! records what each plan node *actually* produced, keyed by
//! `(document version, plan fingerprint, plan-node index)`, plus the
//! arm-choice outcome per `(document version, plan fingerprint)`.
//!
//! This module records and exposes; the planner reads it back through
//! `rewriting::CostModel::with_feedback`, the server's re-planning check
//! polls the per-fingerprint rollups ([`StatsStore::mispredicted_nodes_for`]),
//! and the streamed executor's mid-query arm switch reports back through
//! [`StatsStore::record_arm_switch`]. Keys are raw `u64`s (`obs` sits
//! below `storage`, so it cannot name `DocumentVersion`); version `0` is
//! the conventional key for unversioned embedded runs. Entries for
//! document versions that are no longer resident are evicted with
//! [`StatsStore::retain_versions`] (the server calls it on every
//! document swap, mirroring the result cache's lifecycle).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::json::Json;
use crate::profile::{PlanNodeProfile, QueryProfile};

/// Key of one plan-node observation series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatsKey {
    /// `DocumentVersion` counter (0 = unversioned embedded run).
    pub doc_version: u64,
    /// Plan fingerprint of the executed plan.
    pub plan_fp: u64,
    /// Pre-order index of the node within that plan.
    pub node_idx: u32,
}

/// Accumulated measurements for one plan node under one document
/// version.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Operator label (from the profiled plan).
    pub op: String,
    /// Profiled runs observed.
    pub observations: u64,
    /// The cost model's cardinality estimate (latest run).
    pub est_rows: f64,
    /// Measured output cardinality of the latest run.
    pub last_actual_rows: u64,
    /// Sum of measured cardinalities across runs (for the mean).
    pub total_actual_rows: u64,
    /// Smallest measured cardinality.
    pub min_actual_rows: u64,
    /// Largest measured cardinality.
    pub max_actual_rows: u64,
    /// Runs where the estimate was off ≥4× (the profile's flag).
    pub mispredicts: u64,
}

impl NodeStats {
    /// Mean measured cardinality across all observations.
    pub fn mean_actual_rows(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.total_actual_rows as f64 / self.observations as f64
        }
    }

    fn to_json(&self, key: &StatsKey) -> Json {
        Json::obj(vec![
            ("doc_version", Json::Num(key.doc_version as f64)),
            ("plan_fp", Json::Str(format!("{:016x}", key.plan_fp))),
            ("node_idx", Json::Num(key.node_idx as f64)),
            ("op", Json::Str(self.op.clone())),
            ("observations", Json::Num(self.observations as f64)),
            ("est_rows", Json::Num(self.est_rows)),
            ("last_actual_rows", Json::Num(self.last_actual_rows as f64)),
            ("mean_actual_rows", Json::Num(self.mean_actual_rows())),
            ("min_actual_rows", Json::Num(self.min_actual_rows as f64)),
            ("max_actual_rows", Json::Num(self.max_actual_rows as f64)),
            ("mispredicts", Json::Num(self.mispredicts as f64)),
        ])
    }
}

/// Accumulated twig-vs-cascade arm outcomes for one plan under one
/// document version.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArmStats {
    /// Profiled runs where the cost model picked the twig arm.
    pub chosen_twig: u64,
    /// Profiled runs where it picked the cascade arm.
    pub chosen_cascade: u64,
    /// Runs where the chosen arm ran ≥2× slower than the alternative.
    pub mispredicts: u64,
    /// Wall time of the chosen arm on the latest run.
    pub last_chosen_ns: u64,
    /// Wall time of the alternative arm on the latest run.
    pub last_alternative_ns: u64,
    /// Mid-query arm fallovers the streamed executor performed when the
    /// observed leaf cardinality contradicted the estimate.
    pub switches: u64,
}

impl ArmStats {
    fn to_json(&self, doc_version: u64, plan_fp: u64) -> Json {
        Json::obj(vec![
            ("doc_version", Json::Num(doc_version as f64)),
            ("plan_fp", Json::Str(format!("{plan_fp:016x}"))),
            ("chosen_twig", Json::Num(self.chosen_twig as f64)),
            ("chosen_cascade", Json::Num(self.chosen_cascade as f64)),
            ("mispredicts", Json::Num(self.mispredicts as f64)),
            ("last_chosen_ns", Json::Num(self.last_chosen_ns as f64)),
            (
                "last_alternative_ns",
                Json::Num(self.last_alternative_ns as f64),
            ),
            ("switches", Json::Num(self.switches as f64)),
        ])
    }
}

/// Thread-safe store of measured cardinalities and arm-choice outcomes,
/// fed by every profiled run. Recording walks the profiled plan tree in
/// pre-order, so `node_idx` is stable for a given plan shape (and the
/// plan fingerprint pins the shape).
#[derive(Debug, Default)]
pub struct StatsStore {
    nodes: Mutex<HashMap<StatsKey, NodeStats>>,
    arms: Mutex<HashMap<(u64, u64), ArmStats>>,
}

impl StatsStore {
    pub fn new() -> StatsStore {
        StatsStore::default()
    }

    /// Record one profiled run: every plan node's measured cardinality
    /// (pre-order) and the arm outcome, if the profile carries one.
    pub fn record_profile(&self, doc_version: u64, plan_fp: u64, profile: &QueryProfile) {
        {
            let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
            let mut idx = 0u32;
            record_node(&mut nodes, doc_version, plan_fp, &profile.plan, &mut idx);
        }
        if let Some(arm) = &profile.arm {
            let mut arms = self.arms.lock().unwrap_or_else(|e| e.into_inner());
            let entry = arms.entry((doc_version, plan_fp)).or_default();
            if arm.chosen == "twig" {
                entry.chosen_twig += 1;
            } else {
                entry.chosen_cascade += 1;
            }
            if arm.mispredicted {
                entry.mispredicts += 1;
            }
            entry.last_chosen_ns = arm.actual_chosen_ns;
            entry.last_alternative_ns = arm.actual_alternative_ns;
        }
    }

    /// Look up one node's accumulated stats.
    pub fn node(&self, doc_version: u64, plan_fp: u64, node_idx: u32) -> Option<NodeStats> {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&StatsKey {
                doc_version,
                plan_fp,
                node_idx,
            })
            .cloned()
    }

    /// Look up one plan's accumulated arm outcomes.
    pub fn arm(&self, doc_version: u64, plan_fp: u64) -> Option<ArmStats> {
        self.arms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(doc_version, plan_fp))
            .cloned()
    }

    /// Record a mid-query arm fallover the streamed executor performed
    /// for this plan (`to_twig` says which direction it fell).
    pub fn record_arm_switch(&self, doc_version: u64, plan_fp: u64, to_twig: bool) {
        let mut arms = self.arms.lock().unwrap_or_else(|e| e.into_inner());
        let entry = arms.entry((doc_version, plan_fp)).or_default();
        entry.switches += 1;
        // the switch is evidence the planned arm was the wrong one
        entry.mispredicts += 1;
        if to_twig {
            entry.chosen_cascade += 1;
        } else {
            entry.chosen_twig += 1;
        }
    }

    /// Whether the store holds any node observations recorded under
    /// `(doc_version, plan_fp)` — the gate for feedback-aware costing.
    pub fn has_feedback(&self, doc_version: u64, plan_fp: u64) -> bool {
        self.observations_for(doc_version, plan_fp) > 0
    }

    /// Total node observations recorded under `(doc_version, plan_fp)`.
    pub fn observations_for(&self, doc_version: u64, plan_fp: u64) -> u64 {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|(k, _)| k.doc_version == doc_version && k.plan_fp == plan_fp)
            .map(|(_, n)| n.observations)
            .sum()
    }

    /// Per-fingerprint rollup: node series under `(doc_version, plan_fp)`
    /// with at least one ≥4× misprediction. The server's re-planning
    /// check compares this against its threshold before every `EXEC`.
    pub fn mispredicted_nodes_for(&self, doc_version: u64, plan_fp: u64) -> u64 {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|(k, n)| {
                k.doc_version == doc_version && k.plan_fp == plan_fp && n.mispredicts > 0
            })
            .count() as u64
    }

    /// Evict every node and arm series whose document version is not in
    /// `keep`, returning `(nodes_evicted, arms_evicted)`. The server
    /// calls this on `swap_document` with the resident versions (plus
    /// the conventional version 0), so the store follows the same
    /// lifecycle as the result cache instead of growing without bound.
    pub fn retain_versions(&self, keep: &[u64]) -> (usize, usize) {
        let nodes_evicted = {
            let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
            let before = nodes.len();
            nodes.retain(|k, _| keep.contains(&k.doc_version));
            before - nodes.len()
        };
        let arms_evicted = {
            let mut arms = self.arms.lock().unwrap_or_else(|e| e.into_inner());
            let before = arms.len();
            arms.retain(|(v, _), _| keep.contains(v));
            before - arms.len()
        };
        (nodes_evicted, arms_evicted)
    }

    /// Distinct `(version, fingerprint, node)` series recorded.
    pub fn len(&self) -> usize {
        self.nodes.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct `(version, fingerprint)` arm series recorded.
    pub fn arm_len(&self) -> usize {
        self.arms.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Total node observations across all series.
    pub fn observations(&self) -> u64 {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|n| n.observations)
            .sum()
    }

    /// Node series that have seen at least one ≥4× misprediction.
    pub fn mispredicted_nodes(&self) -> u64 {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|n| n.mispredicts > 0)
            .count() as u64
    }

    /// Total mid-query arm fallovers across all series.
    pub fn arm_switches(&self) -> u64 {
        self.arms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|a| a.switches)
            .sum()
    }

    /// Compact rollup (the `"stats_store"` object of the `METRICS`
    /// schema).
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("entries", Json::Num(self.len() as f64)),
            ("observations", Json::Num(self.observations() as f64)),
            (
                "mispredicted_nodes",
                Json::Num(self.mispredicted_nodes() as f64),
            ),
            ("arms", Json::Num(self.arm_len() as f64)),
            ("arm_switches", Json::Num(self.arm_switches() as f64)),
        ])
    }

    /// Full dump: every node series and arm series, deterministically
    /// ordered by key.
    pub fn to_json(&self) -> Json {
        let mut nodes: Vec<(StatsKey, NodeStats)> = self
            .nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        nodes.sort_by_key(|(k, _)| (k.doc_version, k.plan_fp, k.node_idx));
        let mut arms: Vec<((u64, u64), ArmStats)> = self
            .arms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        arms.sort_by_key(|(k, _)| *k);
        Json::obj(vec![
            (
                "nodes",
                Json::Arr(nodes.iter().map(|(k, n)| n.to_json(k)).collect()),
            ),
            (
                "arms",
                Json::Arr(arms.iter().map(|((v, fp), a)| a.to_json(*v, *fp)).collect()),
            ),
        ])
    }
}

fn record_node(
    nodes: &mut HashMap<StatsKey, NodeStats>,
    doc_version: u64,
    plan_fp: u64,
    prof: &PlanNodeProfile,
    idx: &mut u32,
) {
    let key = StatsKey {
        doc_version,
        plan_fp,
        node_idx: *idx,
    };
    *idx += 1;
    let entry = nodes.entry(key).or_insert_with(|| NodeStats {
        op: prof.op.clone(),
        observations: 0,
        est_rows: prof.est_rows,
        last_actual_rows: 0,
        total_actual_rows: 0,
        min_actual_rows: u64::MAX,
        max_actual_rows: 0,
        mispredicts: 0,
    });
    entry.observations += 1;
    entry.est_rows = prof.est_rows;
    entry.last_actual_rows = prof.actual_rows;
    entry.total_actual_rows += prof.actual_rows;
    entry.min_actual_rows = entry.min_actual_rows.min(prof.actual_rows);
    entry.max_actual_rows = entry.max_actual_rows.max(prof.actual_rows);
    if prof.mispredicted {
        entry.mispredicts += 1;
    }
    for child in &prof.children {
        record_node(nodes, doc_version, plan_fp, child, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::profile::ArmTelemetry;

    fn leaf(op: &str, est: f64, actual: u64, mispredicted: bool) -> PlanNodeProfile {
        PlanNodeProfile {
            op: op.to_string(),
            est_cost: 1.0,
            est_rows: est,
            actual_rows: actual,
            time_ns: 10,
            metrics: ExecMetrics::default(),
            mispredicted,
            children: Vec::new(),
        }
    }

    fn profile(plan: PlanNodeProfile, arm: Option<ArmTelemetry>) -> QueryProfile {
        QueryProfile {
            query: "//a".to_string(),
            phases: Vec::new(),
            plan,
            cache: None,
            arm,
            streamed: None,
            total_ns: 100,
        }
    }

    #[test]
    fn records_nodes_preorder_and_accumulates() {
        let store = StatsStore::new();
        let mut root = leaf("join", 100.0, 10, false);
        root.children.push(leaf("scan-a", 50.0, 400, true));
        root.children.push(leaf("scan-b", 8.0, 9, false));
        store.record_profile(7, 0xfeed, &profile(root.clone(), None));
        store.record_profile(7, 0xfeed, &profile(root, None));

        assert_eq!(store.len(), 3);
        assert_eq!(store.observations(), 6);
        assert_eq!(store.mispredicted_nodes(), 1);
        let scan_a = store.node(7, 0xfeed, 1).expect("pre-order idx 1");
        assert_eq!(scan_a.op, "scan-a");
        assert_eq!(scan_a.observations, 2);
        assert_eq!(scan_a.last_actual_rows, 400);
        assert_eq!(scan_a.mispredicts, 2);
        assert_eq!(scan_a.mean_actual_rows(), 400.0);
        assert_eq!(store.node(7, 0xfeed, 2).unwrap().op, "scan-b");
        assert!(store.node(8, 0xfeed, 0).is_none());
    }

    #[test]
    fn records_arm_outcomes() {
        let store = StatsStore::new();
        let arm = ArmTelemetry {
            chosen: "twig".to_string(),
            est_chosen: 10.0,
            est_alternative: 20.0,
            actual_chosen_ns: 900,
            actual_alternative_ns: 300,
            mispredicted: true,
        };
        store.record_profile(0, 0xbeef, &profile(leaf("twig", 1.0, 1, false), Some(arm)));
        let a = store.arm(0, 0xbeef).unwrap();
        assert_eq!(a.chosen_twig, 1);
        assert_eq!(a.chosen_cascade, 0);
        assert_eq!(a.mispredicts, 1);
        assert_eq!(store.arm_len(), 1);
        let json = store.to_json().to_string_compact();
        assert!(json.contains("\"arms\""), "{json}");
    }

    #[test]
    fn per_fingerprint_rollups_filter_by_key() {
        let store = StatsStore::new();
        let mut root = leaf("join", 100.0, 10, false);
        root.children.push(leaf("scan-a", 50.0, 400, true));
        root.children.push(leaf("scan-b", 8.0, 9, false));
        store.record_profile(7, 0xfeed, &profile(root.clone(), None));
        store.record_profile(8, 0xfeed, &profile(root, None));

        assert!(store.has_feedback(7, 0xfeed));
        assert!(!store.has_feedback(7, 0xdead));
        assert!(!store.has_feedback(9, 0xfeed));
        assert_eq!(store.observations_for(7, 0xfeed), 3);
        assert_eq!(store.mispredicted_nodes_for(7, 0xfeed), 1);
        assert_eq!(store.mispredicted_nodes_for(7, 0xdead), 0);
    }

    #[test]
    fn arm_switches_accumulate_and_flag_mispredicts() {
        let store = StatsStore::new();
        store.record_arm_switch(2, 0xabba, true);
        store.record_arm_switch(2, 0xabba, true);
        let a = store.arm(2, 0xabba).unwrap();
        assert_eq!(a.switches, 2);
        assert_eq!(a.mispredicts, 2);
        assert_eq!(a.chosen_cascade, 2);
        assert_eq!(store.arm_switches(), 2);
        let json = store.summary_json().to_string_compact();
        assert!(json.contains("\"arm_switches\":2"), "{json}");
    }

    #[test]
    fn retain_versions_evicts_stale_document_versions() {
        let store = StatsStore::new();
        store.record_profile(0, 0xa, &profile(leaf("scan", 1.0, 1, false), None));
        store.record_profile(3, 0xa, &profile(leaf("scan", 1.0, 1, false), None));
        store.record_profile(4, 0xa, &profile(leaf("scan", 1.0, 1, false), None));
        store.record_arm_switch(3, 0xa, true);
        store.record_arm_switch(4, 0xa, false);

        let (nodes, arms) = store.retain_versions(&[0, 4]);
        assert_eq!((nodes, arms), (1, 1));
        assert!(store.node(3, 0xa, 0).is_none());
        assert!(store.node(4, 0xa, 0).is_some());
        assert!(store.node(0, 0xa, 0).is_some());
        assert!(store.arm(3, 0xa).is_none());
        assert!(store.arm(4, 0xa).is_some());
    }
}
