//! The nested relational data model (§1.2.2).
//!
//! A [`Value`] is an atomic value from the paper's domain `A` (strings,
//! integers), a structural identifier from the ID domain `I`, the null
//! constant `⊥`, or a nested [`Collection`] of homogeneous [`Tuple`]s.
//! Tuples and collections alternate, exactly as in the paper's model
//! `r(A1, A2(A21, A22))`.
//!
//! Schemas are explicit ([`Schema`] / [`Field`]) and carried by relations,
//! not by tuples; tuples are positional.

use std::fmt;
use std::sync::Arc;

use xmltree::StructuralId;

/// An attribute value: atomic, identifier, null, or nested collection.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null constant `⊥` (produced by outer joins, optional edges).
    Null,
    /// A string from the atomic domain `A`. `Arc`, not `Rc`: values are
    /// embedded in logical plans, and the server shares prepared plans
    /// across session threads.
    Str(Arc<str>),
    /// An integer from `A` (used by value predicates and experiments).
    Int(i64),
    /// A structural identifier from the ID domain `I`; supports the `≺`
    /// (parent) and `≺≺` (ancestor) comparators.
    Id(StructuralId),
    /// A nested collection of tuples.
    Coll(Collection),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_id(&self) -> Option<StructuralId> {
        match self {
            Value::Id(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_coll(&self) -> Option<&Collection> {
        match self {
            Value::Coll(c) => Some(c),
            _ => None,
        }
    }

    /// Value comparison with SQL-ish null semantics (`⊥` compares equal to
    /// nothing, including itself) and numeric coercion of numeric-looking
    /// strings, mirroring XQuery's dynamic comparisons on untyped data.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => {
                // numeric coercion first, lexicographic otherwise
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.partial_cmp(&y),
                    _ => Some(a.as_ref().cmp(b.as_ref())),
                }
            }
            (Int(a), Str(b)) => b
                .trim()
                .parse::<f64>()
                .ok()
                .and_then(|y| (*a as f64).partial_cmp(&y)),
            (Str(a), Int(b)) => a
                .trim()
                .parse::<f64>()
                .ok()
                .and_then(|x| x.partial_cmp(&(*b as f64))),
            (Id(a), Id(b)) => Some(a.pre.cmp(&b.pre)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Id(i) => write!(f, "({},{})", i.pre, i.post),
            Value::Coll(c) => {
                let (open, close) = match c.kind {
                    CollKind::Set => ('{', '}'),
                    CollKind::List => ('[', ']'),
                    CollKind::Bag => ('⟬', '⟭'),
                };
                write!(f, "{open}")?;
                for (i, t) in c.tuples.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "{close}")
            }
        }
    }
}

/// Collection constructor kind: set `{·}`, list `[·]` or bag `{{·}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollKind {
    Set,
    #[default]
    List,
    Bag,
}

/// A homogeneous collection of tuples. Sets do not enforce uniqueness
/// eagerly (the paper's `∪`, `π` are duplicate-preserving; duplicate
/// elimination is the explicit `π°`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Collection {
    pub kind: CollKind,
    pub tuples: Vec<Tuple>,
}

impl Collection {
    pub fn list(tuples: Vec<Tuple>) -> Collection {
        Collection {
            kind: CollKind::List,
            tuples,
        }
    }

    pub fn set(tuples: Vec<Tuple>) -> Collection {
        Collection {
            kind: CollKind::Set,
            tuples,
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A positional tuple.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values)
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Tuple concatenation (`||` in the paper).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = self.0.clone();
        v.extend(other.0.iter().cloned());
        Tuple(v)
    }

    /// A tuple of `arity` nulls (`⊥S` in Definition 1.2.1's outerjoin).
    pub fn nulls(arity: usize) -> Tuple {
        Tuple(vec![Value::Null; arity])
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Kind of a schema field: atomic value or nested collection.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldKind {
    Atom,
    Nested(Schema),
}

/// A named schema field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub kind: FieldKind,
}

impl Field {
    pub fn atom(name: impl Into<String>) -> Field {
        Field {
            name: name.into(),
            kind: FieldKind::Atom,
        }
    }

    pub fn nested(name: impl Into<String>, schema: Schema) -> Field {
        Field {
            name: name.into(),
            kind: FieldKind::Nested(schema),
        }
    }
}

/// A (possibly nested) relation schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Schema with the given atomic field names.
    pub fn atoms(names: &[&str]) -> Schema {
        Schema {
            fields: names.iter().map(|n| Field::atom(*n)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a top-level field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Resolve a dotted attribute path like `A1.A12` to field indexes,
    /// descending through nested schemas.
    pub fn resolve(&self, dotted: &str) -> Option<Vec<usize>> {
        let mut schema = self;
        let mut path = Vec::new();
        for part in dotted.split('.') {
            let i = schema.index_of(part)?;
            path.push(i);
            schema = match &schema.fields[i].kind {
                FieldKind::Nested(s) => s,
                FieldKind::Atom => {
                    // atoms must be last
                    return if path.len() == dotted.split('.').count() {
                        Some(path)
                    } else {
                        None
                    };
                }
            };
        }
        Some(path)
    }

    /// The schema at an index path (empty path = self).
    pub fn schema_at(&self, path: &[usize]) -> Option<&Schema> {
        let mut schema = self;
        for &i in path {
            schema = match &schema.fields.get(i)?.kind {
                FieldKind::Nested(s) => s,
                FieldKind::Atom => return None,
            };
        }
        Some(schema)
    }

    /// The field at an index path.
    pub fn field_at(&self, path: &[usize]) -> Option<&Field> {
        let (last, prefix) = path.split_last()?;
        self.schema_at(prefix)?.fields.get(*last)
    }

    /// Schema concatenation (for joins/products).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Dotted names of all atomic leaves, depth-first.
    pub fn leaf_names(&self) -> Vec<String> {
        fn rec(s: &Schema, prefix: &str, out: &mut Vec<String>) {
            for f in &s.fields {
                let name = if prefix.is_empty() {
                    f.name.clone()
                } else {
                    format!("{prefix}.{}", f.name)
                };
                match &f.kind {
                    FieldKind::Atom => out.push(name),
                    FieldKind::Nested(inner) => rec(inner, &name, out),
                }
            }
        }
        let mut out = Vec::new();
        rec(self, "", &mut out);
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &fd.kind {
                FieldKind::Atom => write!(f, "{}", fd.name)?,
                FieldKind::Nested(s) => write!(f, "{}{}", fd.name, s)?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(3).compare(&Value::Int(5)), Some(Less));
        assert_eq!(Value::str("3").compare(&Value::Int(3)), Some(Equal));
        assert_eq!(Value::str("abc").compare(&Value::str("abd")), Some(Less));
        // numeric coercion: 10 > 9 even though "10" < "9" lexicographically
        assert_eq!(Value::str("10").compare(&Value::str("9")), Some(Greater));
        assert_eq!(Value::Null.compare(&Value::Null), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn tuple_concat_and_nulls() {
        let t1 = Tuple::new(vec![Value::Int(1)]);
        let t2 = Tuple::new(vec![Value::str("x"), Value::Int(2)]);
        let t = t1.concat(&t2);
        assert_eq!(t.arity(), 3);
        let n = Tuple::nulls(2);
        assert!(n.get(0).is_null() && n.get(1).is_null());
    }

    #[test]
    fn schema_resolution() {
        // r(A1(A11, A12), A2)
        let s = Schema::new(vec![
            Field::nested("A1", Schema::atoms(&["A11", "A12"])),
            Field::atom("A2"),
        ]);
        assert_eq!(s.resolve("A2"), Some(vec![1]));
        assert_eq!(s.resolve("A1.A12"), Some(vec![0, 1]));
        assert_eq!(s.resolve("A1.Axx"), None);
        assert_eq!(s.resolve("A2.A11"), None);
        assert_eq!(s.field_at(&[0, 1]).unwrap().name, "A12");
        assert_eq!(
            s.leaf_names(),
            vec!["A1.A11".to_string(), "A1.A12".into(), "A2".into()]
        );
    }

    #[test]
    fn schema_display() {
        let s = Schema::new(vec![
            Field::nested("A1", Schema::atoms(&["A11"])),
            Field::atom("A2"),
        ]);
        assert_eq!(s.to_string(), "(A1(A11), A2)");
    }
}
