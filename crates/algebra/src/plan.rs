//! Logical plans: the operator tree of the algebra (§1.2.2).
//!
//! Plans reference base relations by name (resolved through a
//! [`crate::Catalog`] at evaluation time) and attributes by dotted paths
//! (resolved against schemas). Unary operators applied to a nested path are
//! implicitly `map`-extended with existential semantics, as in the paper's
//! `map(σ, r, A1.A11)`; binary structural joins likewise accept a nested
//! left attribute (Example 1.2.3).

use std::fmt;

use crate::value::Value;

/// A dotted attribute path, e.g. `A1.A12`. Paths are kept symbolic in plans
/// and resolved against the input schema during evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path(pub String);

impl Path {
    pub fn new(s: impl Into<String>) -> Path {
        Path(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Path {
        Path(s.to_string())
    }
}

/// Comparators `θ`: value comparators on `A`, plus the structural `≺`
/// (parent) and `≺≺` (ancestor), which only apply to `I` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `≺` — left is the parent of right (IDs only).
    Parent,
    /// `≺≺` — left is an ancestor of right (IDs only).
    Ancestor,
    /// Full-text containment: the left string contains the right word
    /// (the `contains(t, w)` function of §2.1.2's QEP12).
    Contains,
}

impl CmpOp {
    pub fn is_structural(self) -> bool {
        matches!(self, CmpOp::Parent | CmpOp::Ancestor)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Parent => "≺",
            CmpOp::Ancestor => "≺≺",
            CmpOp::Contains => "contains",
        };
        write!(f, "{s}")
    }
}

/// One side of a comparison: an attribute or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Col(Path),
    Const(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(p) => write!(f, "{p}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Selection / join predicates: comparisons composed with ∧, ∨, ¬, plus
/// null tests (used by the optional-edge compensations of Chapter 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Cmp(Operand, CmpOp, Operand),
    IsNull(Path),
    NotNull(Path),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
    True,
}

impl Predicate {
    pub fn eq(col: impl Into<String>, v: Value) -> Predicate {
        Predicate::Cmp(Operand::Col(Path::new(col)), CmpOp::Eq, Operand::Const(v))
    }

    pub fn col_cmp(l: impl Into<String>, op: CmpOp, r: impl Into<String>) -> Predicate {
        Predicate::Cmp(Operand::Col(Path::new(l)), op, Operand::Col(Path::new(r)))
    }

    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp(l, op, r) => write!(f, "{l}{op}{r}"),
            Predicate::IsNull(p) => write!(f, "{p}=⊥"),
            Predicate::NotNull(p) => write!(f, "{p}≠⊥"),
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(a) => write!(f, "¬({a})"),
            Predicate::True => write!(f, "true"),
        }
    }
}

/// Structural axis of a structural join: `/` (parent-child) or `//`
/// (ancestor-descendant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// How a [`LogicalPlan::Navigate`] combines reached nodes with its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NavMode {
    /// One output tuple per (input, reached node); inputs without reachable
    /// nodes are dropped.
    Flat,
    /// As `Flat`, but inputs without reachable nodes survive null-padded.
    Outer,
    /// Pure filter: keep the input tuple iff at least one node is
    /// reachable; no columns added (a navigational semijoin).
    Exists,
}

/// What a [`LogicalPlan::Fetch`] reads from the document for an ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchWhat {
    /// The node's value (concatenated text).
    Val,
    /// The node's serialized content.
    Cont,
    /// The node's tag.
    Tag,
}

/// Join flavour, shared by value joins and structural joins: the paper's
/// `j` (join), `s` (semijoin), `o` (left outerjoin), `nj` (nest join) and
/// `no` (nest outerjoin) edge/operator annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Semi,
    LeftOuter,
    /// Nest join: matching right tuples are packed into one nested
    /// collection attribute appended to the left tuple; left tuples without
    /// matches are dropped (Definition 1.2.2).
    Nest,
    /// Nest outerjoin: as `Nest`, but left tuples without matches survive
    /// with an empty nested collection.
    NestOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "⋈",
            JoinKind::Semi => "⋉",
            JoinKind::LeftOuter => "⟕",
            JoinKind::Nest => "⋈ⁿ",
            JoinKind::NestOuter => "⟕ⁿ",
        };
        write!(f, "{s}")
    }
}

/// One non-root node of a [`LogicalPlan::TwigJoin`] pattern: an input
/// whose `attr` IDs hang off `parent_attr` (an ID attribute of the
/// prefix relation assembled so far — root ⨯ earlier steps) along `axis`.
#[derive(Debug, Clone, PartialEq)]
pub struct TwigStep {
    pub input: LogicalPlan,
    /// ID attribute of the already-assembled prefix the step hangs off.
    pub parent_attr: Path,
    /// ID attribute within `input`.
    pub attr: Path,
    pub axis: Axis,
}

impl TwigStep {
    pub fn new(
        input: LogicalPlan,
        parent_attr: impl Into<String>,
        attr: impl Into<String>,
        axis: Axis,
    ) -> TwigStep {
        TwigStep {
            input,
            parent_attr: Path::new(parent_attr),
            attr: Path::new(attr),
            axis,
        }
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a named base (nested) relation from the catalog.
    Scan { relation: String },
    /// `σ_pred`, `map`-extended to nested paths with existential semantics.
    Select {
        input: Box<LogicalPlan>,
        pred: Predicate,
    },
    /// `π` (duplicate-preserving) or `π°` (duplicate-eliminating when
    /// `distinct`). Columns are dotted paths; nested prefixes project the
    /// nested relation down to the named sub-attributes.
    Project {
        input: Box<LogicalPlan>,
        cols: Vec<Path>,
        distinct: bool,
    },
    /// Cartesian product `×`.
    Product {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Value join with arbitrary predicate.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        pred: Predicate,
        kind: JoinKind,
    },
    /// Structural join on ID attributes (Definitions 1.2.1 / 1.2.2): pairs
    /// left tuples whose `left_attr` ID is the parent (axis `/`) or an
    /// ancestor (axis `//`) of right tuples' `right_attr` ID. `left_attr`
    /// may be nested (map extension, Example 1.2.3).
    StructJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_attr: Path,
        right_attr: Path,
        axis: Axis,
        kind: JoinKind,
        /// Name for the nested attribute appended by `Nest`/`NestOuter`.
        nest_as: Option<String>,
    },
    /// Holistic twig join (TwigStack, §1.2.3 extended): the whole tree
    /// pattern — root plus one [`TwigStep`] per further pattern node — is
    /// evaluated in a single multi-way merge over the per-node ID streams,
    /// with no intermediate pair materialization. Semantically equivalent
    /// to the left-deep cascade of `Inner` [`LogicalPlan::StructJoin`]s
    /// obtained by folding the steps in order (see
    /// [`crate::twig::twig_to_cascade`]); counts as **one** operator.
    TwigJoin {
        root: Box<LogicalPlan>,
        steps: Vec<TwigStep>,
    },
    /// Duplicate-preserving union (same schema both sides).
    Union {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Set difference `\` on whole tuples.
    Difference {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Group-by `γ`: group on `keys`, nesting the remaining columns into a
    /// collection attribute named `nest_as`.
    GroupBy {
        input: Box<LogicalPlan>,
        keys: Vec<Path>,
        nest_as: String,
    },
    /// Unnest `u_B` of a top-level collection attribute.
    Unnest { input: Box<LogicalPlan>, attr: Path },
    /// Pack *all* input tuples into a single tuple with one collection
    /// attribute (the `n` nest operator used when translating element
    /// constructors, §3.3.2).
    NestAll {
        input: Box<LogicalPlan>,
        as_name: String,
    },
    /// Sort by the given attribute paths (ascending; IDs by pre rank).
    Sort {
        input: Box<LogicalPlan>,
        by: Vec<Path>,
    },
    /// XML construction operator `xml_templ` (§1.2.2): emits one serialized
    /// XML string column per input tuple, shaped by the template.
    XmlTemplate {
        input: Box<LogicalPlan>,
        templ: crate::xmlgen::Template,
    },
    /// Navigation from stored IDs into the document (used when a rewriting
    /// must navigate inside a view's `Cont` attribute, §5.2): for each input
    /// tuple, pairs it with the document nodes reached from `from_attr` by
    /// descending to `label` along the axis. In `Flat`/`Outer` modes adds
    /// columns `<as_prefix>_ID`, `<as_prefix>_Val` and `<as_prefix>_Cont`;
    /// `Exists` only filters.
    Navigate {
        input: Box<LogicalPlan>,
        from_attr: Path,
        axis: Axis,
        label: String,
        as_prefix: String,
        mode: NavMode,
    },
    /// Fetch the value/content/tag of the node whose ID is in `id_attr`
    /// from the document, as a new column — the runtime counterpart of
    /// "navigating inside a stored `Cont`" when a view stores IDs but not
    /// the item a rewriting needs.
    Fetch {
        input: Box<LogicalPlan>,
        id_attr: Path,
        what: FetchWhat,
        as_name: String,
    },
    /// Derive the ID of the parent (or the depth-`d` ancestor) of the IDs
    /// in `attr`, exposing it as a new column. Only legal when the stored
    /// IDs are navigational (`p`-class); checked by the rewriter, executed
    /// against the document (§4.4).
    DeriveAncestorId {
        input: Box<LogicalPlan>,
        attr: Path,
        /// Number of levels to go up (1 = parent).
        levels: u16,
        as_name: String,
    },
    /// Rename the top-level fields of the input (positional). Needed to
    /// disambiguate self-joins of the same base relation, as in QEP5's
    /// `main1`, `main2`, `main3` occurrences.
    Rename {
        input: Box<LogicalPlan>,
        names: Vec<String>,
    },
    /// Replace the input's (possibly nested) schema with a structurally
    /// identical one — a deep rename. The rewriter uses it to expose a
    /// view's columns under the names the query plan expects.
    CastSchema {
        input: Box<LogicalPlan>,
        schema: crate::value::Schema,
    },
}

impl LogicalPlan {
    pub fn scan(relation: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: relation.into(),
        }
    }

    pub fn select(self, pred: Predicate) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            pred,
        }
    }

    pub fn project(self, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            cols: cols.iter().map(|c| Path::new(*c)).collect(),
            distinct: false,
        }
    }

    pub fn project_distinct(self, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            cols: cols.iter().map(|c| Path::new(*c)).collect(),
            distinct: true,
        }
    }

    pub fn product(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Product {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    pub fn join(self, right: LogicalPlan, pred: Predicate, kind: JoinKind) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
            kind,
        }
    }

    pub fn struct_join(
        self,
        right: LogicalPlan,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        axis: Axis,
        kind: JoinKind,
    ) -> LogicalPlan {
        LogicalPlan::StructJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_attr: Path::new(left_attr),
            right_attr: Path::new(right_attr),
            axis,
            kind,
            nest_as: None,
        }
    }

    pub fn struct_nest_join(
        self,
        right: LogicalPlan,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
        axis: Axis,
        outer: bool,
        nest_as: impl Into<String>,
    ) -> LogicalPlan {
        LogicalPlan::StructJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_attr: Path::new(left_attr),
            right_attr: Path::new(right_attr),
            axis,
            kind: if outer {
                JoinKind::NestOuter
            } else {
                JoinKind::Nest
            },
            nest_as: Some(nest_as.into()),
        }
    }

    /// Build a holistic twig join with `self` as the pattern root.
    pub fn twig_join(self, steps: Vec<TwigStep>) -> LogicalPlan {
        LogicalPlan::TwigJoin {
            root: Box::new(self),
            steps,
        }
    }

    pub fn union(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    pub fn difference(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Rename top-level fields (positional).
    pub fn rename(self, names: &[&str]) -> LogicalPlan {
        LogicalPlan::Rename {
            input: Box::new(self),
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn sort(self, by: &[&str]) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            by: by.iter().map(|c| Path::new(*c)).collect(),
        }
    }

    /// Number of operator nodes in the plan (used by the rewriting cost
    /// model: "a minimal plan has the smallest number of operators", §5.3).
    pub fn size(&self) -> usize {
        use LogicalPlan::*;
        1 + match self {
            Scan { .. } => 0,
            Select { input, .. }
            | Project { input, .. }
            | GroupBy { input, .. }
            | Unnest { input, .. }
            | NestAll { input, .. }
            | Sort { input, .. }
            | XmlTemplate { input, .. }
            | Navigate { input, .. }
            | DeriveAncestorId { input, .. }
            | Fetch { input, .. }
            | Rename { input, .. }
            | CastSchema { input, .. } => input.size(),
            Product { left, right }
            | Join { left, right, .. }
            | StructJoin { left, right, .. }
            | Union { left, right }
            | Difference { left, right } => left.size() + right.size(),
            TwigJoin { root, steps } => {
                root.size() + steps.iter().map(|s| s.input.size()).sum::<usize>()
            }
        }
    }

    /// Names of the base relations (views) scanned by this plan.
    pub fn scanned_relations(&self) -> Vec<&str> {
        fn rec<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a str>) {
            use LogicalPlan::*;
            match p {
                Scan { relation } => out.push(relation),
                Select { input, .. }
                | Project { input, .. }
                | GroupBy { input, .. }
                | Unnest { input, .. }
                | NestAll { input, .. }
                | Sort { input, .. }
                | XmlTemplate { input, .. }
                | Navigate { input, .. }
                | DeriveAncestorId { input, .. }
                | Fetch { input, .. }
                | Rename { input, .. }
                | CastSchema { input, .. } => rec(input, out),
                Product { left, right }
                | Join { left, right, .. }
                | StructJoin { left, right, .. }
                | Union { left, right }
                | Difference { left, right } => {
                    rec(left, out);
                    rec(right, out);
                }
                TwigJoin { root, steps } => {
                    rec(root, out);
                    for s in steps {
                        rec(&s.input, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        rec(self, &mut out);
        out
    }

    /// The direct child plans, left to right (a `TwigJoin` yields its
    /// root followed by each step's input). The profiler walks plans
    /// through this accessor so its operator tree mirrors the plan tree
    /// shape exactly.
    pub fn child_plans(&self) -> Vec<&LogicalPlan> {
        use LogicalPlan::*;
        match self {
            Scan { .. } => vec![],
            Select { input, .. }
            | Project { input, .. }
            | GroupBy { input, .. }
            | Unnest { input, .. }
            | NestAll { input, .. }
            | Sort { input, .. }
            | XmlTemplate { input, .. }
            | Navigate { input, .. }
            | DeriveAncestorId { input, .. }
            | Fetch { input, .. }
            | Rename { input, .. }
            | CastSchema { input, .. } => vec![input],
            Product { left, right }
            | Join { left, right, .. }
            | StructJoin { left, right, .. }
            | Union { left, right }
            | Difference { left, right } => vec![left, right],
            TwigJoin { root, steps } => {
                let mut out = Vec::with_capacity(1 + steps.len());
                out.push(root.as_ref());
                out.extend(steps.iter().map(|s| &s.input));
                out
            }
        }
    }

    /// Rebuild this node with its children replaced (in `child_plans`
    /// order). Panics if `children.len()` doesn't match the arity.
    pub fn with_child_plans(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        use LogicalPlan::*;
        assert_eq!(
            children.len(),
            self.child_plans().len(),
            "with_child_plans arity mismatch for {self}"
        );
        let mut next = || Box::new(children.remove(0));
        let mut clone = self.clone();
        match &mut clone {
            Scan { .. } => {}
            Select { input, .. }
            | Project { input, .. }
            | GroupBy { input, .. }
            | Unnest { input, .. }
            | NestAll { input, .. }
            | Sort { input, .. }
            | XmlTemplate { input, .. }
            | Navigate { input, .. }
            | DeriveAncestorId { input, .. }
            | Fetch { input, .. }
            | Rename { input, .. }
            | CastSchema { input, .. } => *input = next(),
            Product { left, right }
            | Join { left, right, .. }
            | StructJoin { left, right, .. }
            | Union { left, right }
            | Difference { left, right } => {
                *left = next();
                *right = next();
            }
            TwigJoin { root, steps } => {
                *root = next();
                for s in steps.iter_mut() {
                    s.input = *next();
                }
            }
        }
        clone
    }

    /// Short operator label for this node alone (no recursion into
    /// children), used by profile trees: `Scan(v_items)`,
    /// `StructJoin(⋈,/)`, `twig(2 steps)`, …
    pub fn node_label(&self) -> String {
        use LogicalPlan::*;
        match self {
            Scan { relation } => format!("Scan({relation})"),
            Select { pred, .. } => format!("Select[{pred}]"),
            Project { cols, distinct, .. } => format!(
                "Project{}[{}]",
                if *distinct { "°" } else { "" },
                cols.iter().map(Path::as_str).collect::<Vec<_>>().join(",")
            ),
            Product { .. } => "Product".to_string(),
            Join { kind, .. } => format!("Join({kind})"),
            StructJoin {
                left_attr,
                right_attr,
                axis,
                kind,
                ..
            } => format!("StructJoin({kind},{left_attr}{axis}{right_attr})"),
            TwigJoin { steps, .. } => format!("TwigJoin({} steps)", steps.len()),
            Union { .. } => "Union".to_string(),
            Difference { .. } => "Difference".to_string(),
            GroupBy { keys, .. } => format!(
                "GroupBy[{}]",
                keys.iter().map(Path::as_str).collect::<Vec<_>>().join(",")
            ),
            Unnest { attr, .. } => format!("Unnest[{attr}]"),
            NestAll { .. } => "NestAll".to_string(),
            Sort { by, .. } => format!(
                "Sort[{}]",
                by.iter().map(Path::as_str).collect::<Vec<_>>().join(",")
            ),
            XmlTemplate { .. } => "XmlTemplate".to_string(),
            Navigate {
                from_attr,
                axis,
                label,
                ..
            } => format!("Navigate[{from_attr}{axis}{label}]"),
            Fetch { id_attr, what, .. } => format!("Fetch[{id_attr}:{what:?}]"),
            DeriveAncestorId { attr, levels, .. } => {
                format!("DeriveAncestorId[{attr}^{levels}]")
            }
            Rename { .. } => "Rename".to_string(),
            CastSchema { .. } => "CastSchema".to_string(),
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use LogicalPlan::*;
        match self {
            Scan { relation } => write!(f, "{relation}"),
            Select { input, pred } => write!(f, "σ[{pred}]({input})"),
            Project {
                input,
                cols,
                distinct,
            } => {
                write!(f, "π{}[", if *distinct { "°" } else { "" })?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({input})")
            }
            Product { left, right } => write!(f, "({left} × {right})"),
            Join {
                left,
                right,
                pred,
                kind,
            } => write!(f, "({left} {kind}[{pred}] {right})"),
            StructJoin {
                left,
                right,
                left_attr,
                right_attr,
                axis,
                kind,
                ..
            } => {
                let rel = match axis {
                    Axis::Child => "≺",
                    Axis::Descendant => "≺≺",
                };
                write!(f, "({left} {kind}[{left_attr}{rel}{right_attr}] {right})")
            }
            TwigJoin { root, steps } => {
                write!(f, "twig({root}")?;
                for s in steps {
                    let rel = match s.axis {
                        Axis::Child => "≺",
                        Axis::Descendant => "≺≺",
                    };
                    write!(f, ", [{}{}{}] {}", s.parent_attr, rel, s.attr, s.input)?;
                }
                write!(f, ")")
            }
            Union { left, right } => write!(f, "({left} ∪ {right})"),
            Difference { left, right } => write!(f, "({left} \\ {right})"),
            GroupBy { input, keys, .. } => {
                write!(f, "γ[")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, "]({input})")
            }
            Unnest { input, attr } => write!(f, "u[{attr}]({input})"),
            NestAll { input, .. } => write!(f, "n({input})"),
            Sort { input, by } => {
                write!(f, "sort[")?;
                for (i, k) in by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, "]({input})")
            }
            XmlTemplate { input, .. } => write!(f, "xml({input})"),
            Navigate {
                input,
                from_attr,
                axis,
                label,
                ..
            } => write!(f, "nav[{from_attr}{axis}{label}]({input})"),
            DeriveAncestorId {
                input,
                attr,
                levels,
                ..
            } => write!(f, "parent^{levels}[{attr}]({input})"),
            Rename { input, .. } => write!(f, "ρ({input})"),
            CastSchema { input, .. } => write!(f, "ρ*({input})"),
            Fetch {
                input,
                id_attr,
                what,
                ..
            } => write!(f, "fetch[{id_attr}:{what:?}]({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let p = LogicalPlan::scan("book")
            .struct_join(
                LogicalPlan::scan("author"),
                "ID",
                "ID",
                Axis::Child,
                JoinKind::Inner,
            )
            .select(Predicate::eq("Val", Value::str("Suciu")))
            .project(&["ID"]);
        assert_eq!(p.size(), 5); // 2 scans + join + select + project
        assert_eq!(p.scanned_relations(), vec!["book", "author"]);
        let s = p.to_string();
        assert!(s.contains("book"), "{s}");
        assert!(s.contains("≺"), "{s}");
    }

    #[test]
    fn child_accessors_mirror_plan_shape() {
        let join = LogicalPlan::scan("book").struct_join(
            LogicalPlan::scan("author"),
            "ID",
            "ID",
            Axis::Child,
            JoinKind::Inner,
        );
        assert_eq!(join.child_plans().len(), 2);
        assert_eq!(join.node_label(), "StructJoin(⋈,ID/ID)");

        let twig = LogicalPlan::scan("a").twig_join(vec![
            TwigStep::new(LogicalPlan::scan("b"), "ID", "ID", Axis::Descendant),
            TwigStep::new(LogicalPlan::scan("c"), "ID", "ID", Axis::Child),
        ]);
        let kids = twig.child_plans();
        assert_eq!(kids.len(), 3);
        assert_eq!(kids[0].node_label(), "Scan(a)");
        assert_eq!(twig.node_label(), "TwigJoin(2 steps)");

        // rebuilding with the same children is the identity
        let rebuilt = twig.with_child_plans(kids.into_iter().cloned().collect());
        assert_eq!(rebuilt, twig);

        // rebuilding with different children swaps them in place
        let swapped = join.with_child_plans(vec![LogicalPlan::scan("x"), LogicalPlan::scan("y")]);
        assert_eq!(swapped.scanned_relations(), vec!["x", "y"]);
    }

    #[test]
    fn predicate_combinators() {
        let p = Predicate::True.and(Predicate::eq("A", Value::Int(1)));
        assert_eq!(p, Predicate::eq("A", Value::Int(1)));
        let q = Predicate::eq("A", Value::Int(1)).and(Predicate::NotNull(Path::new("B")));
        assert!(matches!(q, Predicate::And(..)));
    }
}
