//! Holistic twig joins (TwigStack/TwigList family): evaluate a whole
//! tree pattern in a single multi-way merge over per-node ID streams.
//!
//! A cascade of binary [`crate::stacktree::stack_tree_pairs`] joins
//! materializes an intermediate pair list at every axis step; for deep or
//! wide twigs those intermediates can dwarf both the inputs and the final
//! result. [`twig_join`] instead scans all streams once in global pre
//! order, maintains the chain of currently-open (pre/post interval still
//! active) stream elements, and records for every element the contiguous
//! window of descendants it captured in each child stream. Root-to-leaf
//! solutions are enumerated at the end directly from those windows —
//! output-sensitive, with no intermediate pair materialization. Child
//! (`/`) axis edges are filtered during the window checks and the final
//! enumeration, exactly like the binary operators do.
//!
//! All streams must carry [`StructuralId`]s of the *same* document and be
//! sorted by `pre` rank; the usize payloads are opaque tuple indices.

use obs::{Meter, NoMeter};
use xmltree::StructuralId;

use crate::plan::{Axis, JoinKind, LogicalPlan, TwigStep};
use crate::simd::IdColumns;
use crate::skip::SkipIndex;
use crate::stacktree::axis_match;

/// One node of a twig pattern: its parent pattern-node index and the axis
/// of the edge from the parent. Node 0 is the root and has no parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwigNode {
    pub parent: Option<usize>,
    pub axis: Axis,
}

/// A small rooted tree pattern. Node indices are in parent-before-child
/// order by construction: [`TwigPattern::add_child`] only attaches below
/// already-existing nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigPattern {
    nodes: Vec<TwigNode>,
    children: Vec<Vec<usize>>,
}

impl TwigPattern {
    /// A pattern consisting of just the root node (index 0).
    pub fn root() -> TwigPattern {
        TwigPattern {
            nodes: vec![TwigNode {
                parent: None,
                axis: Axis::Descendant,
            }],
            children: vec![Vec::new()],
        }
    }

    /// Attach a new node under `parent` and return its index.
    pub fn add_child(&mut self, parent: usize, axis: Axis) -> usize {
        assert!(parent < self.nodes.len(), "twig parent out of range");
        let id = self.nodes.len();
        self.nodes.push(TwigNode {
            parent: Some(parent),
            axis,
        });
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Build a pure chain `root axis₁ n₁ axis₂ n₂ …`.
    pub fn chain(axes: &[Axis]) -> TwigPattern {
        let mut p = TwigPattern::root();
        let mut last = 0;
        for &a in axes {
            last = p.add_child(last, a);
        }
        p
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // there is always a root node
    }

    pub fn node(&self, i: usize) -> TwigNode {
        self.nodes[i]
    }

    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }
}

/// One stream element after processing: its ID, its payload, and whether
/// the pattern subtree below it can be matched.
#[derive(Clone, Copy)]
struct Entry {
    sid: StructuralId,
    payload: usize,
    satisfied: bool,
}

/// All processed elements of one pattern node's stream. Per entry and
/// pattern child, `ranges` records the `[start, end)` window of that
/// child's list captured while the entry was open (flat, stride
/// `2 * children` — one allocation per pattern node, not per element).
/// Descendants of a node occupy a contiguous pre-order range, so the
/// window holds exactly the entry's descendants in that stream.
#[derive(Default)]
struct NodeList {
    entries: Vec<Entry>,
    ranges: Vec<u32>,
}

impl NodeList {
    #[inline]
    fn window(&self, kids: usize, i: usize, k: usize) -> (usize, usize) {
        let base = i * 2 * kids + 2 * k;
        (self.ranges[base] as usize, self.ranges[base + 1] as usize)
    }
}

/// Finalize an entry when its pre/post interval closes: freeze the child
/// windows and decide satisfiability. All entries inside the windows
/// closed earlier (they are descendants), so their flags are final.
fn close_entry<M: Meter>(
    pattern: &TwigPattern,
    lists: &mut [NodeList],
    q: usize,
    i: usize,
    meter: &mut M,
) {
    let sid = lists[q].entries[i].sid;
    let kids = pattern.children(q);
    let mut sat = true;
    for (k, &c) in kids.iter().enumerate() {
        let base = i * 2 * kids.len() + 2 * k;
        let start = lists[q].ranges[base] as usize;
        let end = lists[c].entries.len();
        lists[q].ranges[base + 1] = end as u32;
        if sat {
            let axis = pattern.node(c).axis;
            let mut tested = 0u64;
            sat = lists[c].entries[start..end].iter().any(|f| {
                tested += 1;
                f.satisfied && axis_match(sid, f.sid, axis)
            });
            meter.comparisons(tested);
        }
    }
    lists[q].entries[i].satisfied = sat;
}

/// Compute all matches of `pattern` over one ID stream per pattern node
/// (`streams[i]` feeds pattern node `i`; all sorted by `pre`, all from
/// the same document). Returns one payload vector per solution, indexed
/// by pattern node, sorted lexicographically — the same order a left-deep
/// cascade of inner StackTree joins produces.
pub fn twig_join(pattern: &TwigPattern, streams: &[&[(StructuralId, usize)]]) -> Vec<Vec<usize>> {
    twig_join_metered(pattern, streams, &mut NoMeter)
}

/// [`twig_join`] with execution counters: window scans count as
/// comparisons, the open-entry chain's depth and the total resident
/// solution-list entries are tracked as high-water marks. With
/// [`NoMeter`] this monomorphizes to the unmetered kernel.
pub fn twig_join_metered<M: Meter>(
    pattern: &TwigPattern,
    streams: &[&[(StructuralId, usize)]],
    meter: &mut M,
) -> Vec<Vec<usize>> {
    let none: Vec<Option<&SkipIndex>> = vec![None; streams.len()];
    twig_join_indexed_metered(pattern, streams, &none, meter)
}

/// [`twig_join`] with per-stream skip indexes: where the unindexed
/// kernel discards prunable elements one `next` at a time, this variant
/// *seeks*. When a non-root node `q` has no open parent entry, every
/// `q`-element up to the parent stream's head can never be contained by
/// any future parent candidate (they all arrive with larger pre), so the
/// kernel jumps `q` straight past the parent head — or to end-of-stream
/// when the parent is exhausted. `indexes[i]` must be built over exactly
/// `streams[i]`; `None` entries fall back to the linear discard, so the
/// all-`None` call is byte-for-byte the PR 2 kernel.
pub fn twig_join_indexed(
    pattern: &TwigPattern,
    streams: &[&[(StructuralId, usize)]],
    indexes: &[Option<&SkipIndex>],
) -> Vec<Vec<usize>> {
    twig_join_indexed_metered(pattern, streams, indexes, &mut NoMeter)
}

/// [`twig_join_indexed`] with execution counters; seeks additionally
/// report jumped-over elements and pruned fence blocks.
pub fn twig_join_indexed_metered<M: Meter>(
    pattern: &TwigPattern,
    streams: &[&[(StructuralId, usize)]],
    indexes: &[Option<&SkipIndex>],
    meter: &mut M,
) -> Vec<Vec<usize>> {
    let n = pattern.len();
    assert_eq!(streams.len(), n, "one stream per pattern node");
    assert_eq!(indexes.len(), n, "one (optional) index per pattern node");
    for s in streams {
        debug_assert!(s.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    }
    let mut lists: Vec<NodeList> = (0..n)
        .map(|q| NodeList {
            entries: Vec::with_capacity(streams[q].len()),
            ranges: Vec::with_capacity(streams[q].len() * 2 * pattern.children(q).len()),
        })
        .collect();
    let mut cur = vec![0usize; n];
    // cached head pre ranks, u32::MAX = exhausted; patterns are tiny, so
    // a linear min scan beats a heap
    let mut heads: Vec<u32> = (0..n)
        .map(|q| streams[q].first().map_or(u32::MAX, |e| e.0.pre))
        .collect();
    // chain of currently-open entries, outermost first, plus the number
    // of open entries per pattern node
    let mut open: Vec<(usize, usize)> = Vec::new();
    let mut open_count = vec![0usize; n];
    // total resident solution-list entries, for the high-water mark
    let mut resident = 0usize;
    loop {
        let mut q = 0;
        for r in 1..n {
            if heads[r] < heads[q] {
                q = r;
            }
        }
        if heads[q] == u32::MAX {
            break;
        }
        let (sid, payload) = streams[q][cur[q]];
        // close every open entry whose interval ended before `sid`: with
        // arrivals in pre order it can contain neither `sid` nor anything
        // after it
        while let Some(&(oq, oi)) = open.last() {
            if lists[oq].entries[oi].sid.post < sid.post {
                close_entry(pattern, &mut lists, oq, oi, meter);
                open_count[oq] -= 1;
                open.pop();
            } else {
                break;
            }
        }
        // TwigStack-style pruning: after the pops, every open entry
        // strictly contains `sid`, so a non-root element participates in
        // a solution only if some entry of its parent pattern node is
        // open right now — otherwise discard it entirely (no later parent
        // candidate can contain it: they all arrive with larger pre).
        // With a skip index the same argument covers every `q`-element up
        // to the parent's head, so the kernel seeks instead of stepping.
        if let Some(p) = pattern.node(q).parent {
            if open_count[p] == 0 {
                match indexes[q] {
                    Some(_) if heads[p] == u32::MAX => {
                        // parent exhausted with nothing open: no later
                        // q-element can ever be matched
                        meter.skipped((streams[q].len() - cur[q] - 1) as u64);
                        cur[q] = streams[q].len();
                        heads[q] = u32::MAX;
                    }
                    Some(ix) => {
                        // `q` held the minimum head, so its current pre
                        // is ≤ the parent head's pre and the seek always
                        // advances past at least the current element
                        let anchor = streams[p][cur[p]].0;
                        let s = ix.seek_descendant_of(streams[q], cur[q], anchor);
                        meter.skipped((s.pos - cur[q] - 1) as u64);
                        meter.blocks_pruned(s.blocks_pruned);
                        cur[q] = s.pos;
                        heads[q] = streams[q].get(cur[q]).map_or(u32::MAX, |e| e.0.pre);
                    }
                    None => {
                        cur[q] += 1;
                        heads[q] = streams[q].get(cur[q]).map_or(u32::MAX, |e| e.0.pre);
                    }
                }
                continue;
            }
        }
        cur[q] += 1;
        heads[q] = streams[q].get(cur[q]).map_or(u32::MAX, |e| e.0.pre);
        for k in 0..pattern.children(q).len() {
            let c = pattern.children(q)[k];
            let start = lists[c].entries.len() as u32;
            lists[q].ranges.push(start);
            lists[q].ranges.push(0);
        }
        lists[q].entries.push(Entry {
            sid,
            payload,
            satisfied: false,
        });
        resident += 1;
        meter.solutions(resident);
        open.push((q, lists[q].entries.len() - 1));
        meter.stack_depth(open.len());
        open_count[q] += 1;
    }
    while let Some((oq, oi)) = open.pop() {
        close_entry(pattern, &mut lists, oq, oi, meter);
    }
    enumerate(pattern, &lists, meter)
}

/// [`twig_join`] over packed [`IdColumns`] streams — the vectorized
/// kernel behind `columnar_kernels`. Produces exactly the solutions (and
/// order) of the scalar kernels; only the advance machinery differs:
///
/// * **bulk leaf append** — when the minimum head belongs to a leaf
///   pattern node, every following leaf element whose pre rank stays
///   strictly below all other heads and whose post rank stays inside the
///   innermost open entry can be appended with no stack transition at
///   all: no pop can trigger (posts are nested), the parent entry stays
///   open, and leaf entries are born satisfied (their pattern subtree is
///   empty). [`IdColumns::leading_run`] counts that run a block at a
///   time and the loop appends it wholesale.
/// * **bulk discard** — the parent-open pruning arm always seeks: the
///   sorted `pre` column *is* the level-0 fence of a skip index, so
///   [`IdColumns::seek_pre_gt`] gallops past the prunable run instead of
///   stepping. This covers the unindexed case too — a packed column is
///   seekable by construction.
///
/// Leaf entries appended in bulk never enter the open chain, so
/// `stack_high_water` can read lower than the scalar kernel's; solution
/// output is nevertheless byte-identical (entries, windows and
/// satisfiability are the same — see the soundness notes in DESIGN.md).
pub fn twig_join_columnar(pattern: &TwigPattern, streams: &[&IdColumns]) -> Vec<Vec<usize>> {
    twig_join_columnar_metered(pattern, streams, &mut NoMeter)
}

/// [`twig_join_columnar`] with execution counters; the vector kernels
/// additionally report `batches_scanned` / `vector_compares`.
pub fn twig_join_columnar_metered<M: Meter>(
    pattern: &TwigPattern,
    streams: &[&IdColumns],
    meter: &mut M,
) -> Vec<Vec<usize>> {
    let n = pattern.len();
    assert_eq!(streams.len(), n, "one stream per pattern node");
    let mut lists: Vec<NodeList> = (0..n)
        .map(|q| NodeList {
            entries: Vec::with_capacity(streams[q].len()),
            ranges: Vec::with_capacity(streams[q].len() * 2 * pattern.children(q).len()),
        })
        .collect();
    let is_leaf: Vec<bool> = (0..n).map(|q| pattern.children(q).is_empty()).collect();
    let mut cur = vec![0usize; n];
    let mut heads: Vec<u32> = (0..n)
        .map(|q| streams[q].pre().first().copied().unwrap_or(u32::MAX))
        .collect();
    let mut open: Vec<(usize, usize)> = Vec::new();
    let mut open_count = vec![0usize; n];
    let mut resident = 0usize;
    loop {
        let mut q = 0;
        for r in 1..n {
            if heads[r] < heads[q] {
                q = r;
            }
        }
        if heads[q] == u32::MAX {
            break;
        }
        // only the post rank matters until an entry is actually pushed —
        // defer the depth gather instead of reassembling the full sid
        let post_q = streams[q].post()[cur[q]];
        while let Some(&(oq, oi)) = open.last() {
            if lists[oq].entries[oi].sid.post < post_q {
                close_entry(pattern, &mut lists, oq, oi, meter);
                open_count[oq] -= 1;
                open.pop();
            } else {
                break;
            }
        }
        if let Some(p) = pattern.node(q).parent {
            if open_count[p] == 0 {
                if heads[p] == u32::MAX {
                    meter.skipped((streams[q].len() - cur[q] - 1) as u64);
                    cur[q] = streams[q].len();
                    heads[q] = u32::MAX;
                } else {
                    // q held the minimum head, so heads[q] <= heads[p]
                    // and the seek always advances past cur[q]
                    let s = streams[q].seek_pre_gt(cur[q], heads[p], meter);
                    meter.skipped((s - cur[q] - 1) as u64);
                    cur[q] = s;
                    heads[q] = streams[q].pre().get(cur[q]).copied().unwrap_or(u32::MAX);
                }
                continue;
            }
        }
        if is_leaf[q] {
            // bound on pre: the run must stay strictly below every other
            // head so q keeps holding the merge minimum (ties fall back
            // to the scalar step, preserving its tie-break); bound on
            // post: the innermost open entry has the smallest open post,
            // so staying under it triggers no pops and keeps the parent
            // entry open for the whole run
            let mut pre_bound = u32::MAX;
            for (r, &h) in heads.iter().enumerate() {
                if r != q && h < pre_bound {
                    pre_bound = h;
                }
            }
            let post_bound = open
                .last()
                .map_or(u32::MAX, |&(oq, oi)| lists[oq].entries[oi].sid.post);
            let run = streams[q].leading_run(cur[q], pre_bound, post_bound, meter);
            if run == 1 {
                // dominant short-run case: a plain push beats the
                // zipped extend's iterator setup
                lists[q].entries.push(Entry {
                    sid: streams[q].sid(cur[q]),
                    payload: streams[q].payload(cur[q]),
                    satisfied: true,
                });
                resident += 1;
                meter.solutions(resident);
                cur[q] += 1;
                heads[q] = streams[q].pre().get(cur[q]).copied().unwrap_or(u32::MAX);
                continue;
            }
            if run > 0 {
                let end = cur[q] + run;
                let pres = &streams[q].pre()[cur[q]..end];
                let posts = &streams[q].post()[cur[q]..end];
                let depths = &streams[q].depth()[cur[q]..end];
                let packed = pres.iter().zip(posts).zip(depths);
                match streams[q].payloads() {
                    Some(pl) => lists[q].entries.extend(packed.zip(&pl[cur[q]..end]).map(
                        |(((&p, &o), &d), &w)| Entry {
                            sid: StructuralId::new(p, o, d),
                            payload: w as usize,
                            satisfied: true,
                        },
                    )),
                    None => lists[q].entries.extend(packed.zip(cur[q]..end).map(
                        |(((&p, &o), &d), w)| Entry {
                            sid: StructuralId::new(p, o, d),
                            payload: w,
                            satisfied: true,
                        },
                    )),
                }
                resident += run;
                meter.solutions(resident);
                cur[q] += run;
                heads[q] = streams[q].pre().get(cur[q]).copied().unwrap_or(u32::MAX);
                continue;
            }
        }
        let sid = streams[q].sid(cur[q]);
        let payload = streams[q].payload(cur[q]);
        cur[q] += 1;
        heads[q] = streams[q].pre().get(cur[q]).copied().unwrap_or(u32::MAX);
        for k in 0..pattern.children(q).len() {
            let c = pattern.children(q)[k];
            let start = lists[c].entries.len() as u32;
            lists[q].ranges.push(start);
            lists[q].ranges.push(0);
        }
        lists[q].entries.push(Entry {
            sid,
            payload,
            satisfied: false,
        });
        resident += 1;
        meter.solutions(resident);
        open.push((q, lists[q].entries.len() - 1));
        meter.stack_depth(open.len());
        open_count[q] += 1;
    }
    while let Some((oq, oi)) = open.pop() {
        close_entry(pattern, &mut lists, oq, oi, meter);
    }
    enumerate(pattern, &lists, meter)
}

/// Walk the satisfied entries top-down and emit every root-to-leaf
/// combination. Satisfiability flags guarantee every recursive call
/// produces at least one solution, so this is output-sensitive.
fn enumerate<M: Meter>(
    pattern: &TwigPattern,
    lists: &[NodeList],
    meter: &mut M,
) -> Vec<Vec<usize>> {
    let n = pattern.len();
    let mut child_pos = vec![0usize; n];
    for q in 0..n {
        for (k, &c) in pattern.children(q).iter().enumerate() {
            child_pos[c] = k;
        }
    }
    let mut out = Vec::new();
    let mut chosen = vec![0usize; n];
    let mut assignment = vec![0usize; n];
    for (ri, root) in lists[0].entries.iter().enumerate() {
        if !root.satisfied {
            continue;
        }
        chosen[0] = ri;
        assignment[0] = root.payload;
        fill(
            pattern,
            lists,
            &child_pos,
            1,
            &mut chosen,
            &mut assignment,
            &mut out,
            meter,
        );
    }
    // cascade-compatible order: lexicographic by payload in node order
    out.sort_unstable();
    out
}

/// Assign pattern node `j` (nodes are parent-before-child, so `j`'s
/// parent is already chosen) and recurse; at `j == n` one full solution
/// is complete.
#[allow(clippy::too_many_arguments)]
fn fill<M: Meter>(
    pattern: &TwigPattern,
    lists: &[NodeList],
    child_pos: &[usize],
    j: usize,
    chosen: &mut [usize],
    assignment: &mut [usize],
    out: &mut Vec<Vec<usize>>,
    meter: &mut M,
) {
    if j == pattern.len() {
        out.push(assignment.to_vec());
        return;
    }
    let node = pattern.node(j);
    let p = node.parent.expect("non-root node has a parent");
    let psid = lists[p].entries[chosen[p]].sid;
    let kids = pattern.children(p).len();
    let (start, end) = lists[p].window(kids, chosen[p], child_pos[j]);
    meter.comparisons((end - start) as u64);
    for fi in start..end {
        let f = lists[j].entries[fi];
        if f.satisfied && axis_match(psid, f.sid, node.axis) {
            chosen[j] = fi;
            assignment[j] = f.payload;
            fill(
                pattern,
                lists,
                child_pos,
                j + 1,
                chosen,
                assignment,
                out,
                meter,
            );
        }
    }
}

/// Desugar a [`LogicalPlan::TwigJoin`] into the equivalent left-deep
/// cascade of binary `Inner` structural joins — the evaluator's fallback
/// path (`use_twigstack = false`, or shapes the holistic operator does
/// not cover) and the cost model's comparison baseline.
pub fn twig_to_cascade(root: &LogicalPlan, steps: &[TwigStep]) -> LogicalPlan {
    steps.iter().fold(root.clone(), |acc, s| {
        acc.struct_join(
            s.input.clone(),
            s.parent_attr.as_str(),
            s.attr.as_str(),
            s.axis,
            JoinKind::Inner,
        )
    })
}

/// Rewrite every maximal cascade of flat `Inner` structural joins over
/// top-level ID attributes into a single [`LogicalPlan::TwigJoin`],
/// recursing through all other operators. Left-deep chains extend the
/// twig's step list directly; a *right*-nested twig is spliced into the
/// enclosing pattern when the enclosing join keys on the nested twig's
/// root attribute (witnessed by the nested first step hanging off it) —
/// without the splice, a right-deep `a//(b//c)` plan evaluates as two
/// nested twigs and materializes the same multiplying `b//c`
/// intermediate the holistic operator exists to avoid. Joins with
/// nesting, outer/semi flavours or dotted (map-extended) attributes are
/// left untouched — the holistic operator only covers the conjunctive
/// core.
pub fn fuse_struct_joins(plan: &LogicalPlan) -> LogicalPlan {
    use LogicalPlan::*;
    let rec = |p: &LogicalPlan| Box::new(fuse_struct_joins(p));
    match plan {
        StructJoin {
            left,
            right,
            left_attr,
            right_attr,
            axis,
            kind: JoinKind::Inner,
            nest_as: None,
        } if !left_attr.as_str().contains('.') && !right_attr.as_str().contains('.') => {
            let mut step = TwigStep {
                input: fuse_struct_joins(right),
                parent_attr: left_attr.clone(),
                attr: right_attr.clone(),
                axis: *axis,
            };
            // right-deep splice: the nested twig's first step hangs off
            // its root (twig_shape resolves it against the root schema
            // alone), so `attr == first.parent_attr` proves the enclosing
            // join keys on that root and the patterns merge into one tree
            let mut spliced = Vec::new();
            if let TwigJoin { steps, .. } = &step.input {
                if steps.first().is_some_and(|s| s.parent_attr == step.attr) {
                    if let TwigJoin { root, steps } = step.input {
                        step.input = *root;
                        spliced = steps;
                    }
                }
            }
            match fuse_struct_joins(left) {
                TwigJoin { root, mut steps } => {
                    steps.push(step);
                    steps.extend(spliced);
                    TwigJoin { root, steps }
                }
                other => {
                    let mut steps = vec![step];
                    steps.extend(spliced);
                    TwigJoin {
                        root: Box::new(other),
                        steps,
                    }
                }
            }
        }
        Scan { .. } => plan.clone(),
        Select { input, pred } => Select {
            input: rec(input),
            pred: pred.clone(),
        },
        Project {
            input,
            cols,
            distinct,
        } => Project {
            input: rec(input),
            cols: cols.clone(),
            distinct: *distinct,
        },
        Product { left, right } => Product {
            left: rec(left),
            right: rec(right),
        },
        Join {
            left,
            right,
            pred,
            kind,
        } => Join {
            left: rec(left),
            right: rec(right),
            pred: pred.clone(),
            kind: *kind,
        },
        StructJoin {
            left,
            right,
            left_attr,
            right_attr,
            axis,
            kind,
            nest_as,
        } => StructJoin {
            left: rec(left),
            right: rec(right),
            left_attr: left_attr.clone(),
            right_attr: right_attr.clone(),
            axis: *axis,
            kind: *kind,
            nest_as: nest_as.clone(),
        },
        TwigJoin { root, steps } => TwigJoin {
            root: rec(root),
            steps: steps
                .iter()
                .map(|s| TwigStep {
                    input: fuse_struct_joins(&s.input),
                    parent_attr: s.parent_attr.clone(),
                    attr: s.attr.clone(),
                    axis: s.axis,
                })
                .collect(),
        },
        Union { left, right } => Union {
            left: rec(left),
            right: rec(right),
        },
        Difference { left, right } => Difference {
            left: rec(left),
            right: rec(right),
        },
        GroupBy {
            input,
            keys,
            nest_as,
        } => GroupBy {
            input: rec(input),
            keys: keys.clone(),
            nest_as: nest_as.clone(),
        },
        Unnest { input, attr } => Unnest {
            input: rec(input),
            attr: attr.clone(),
        },
        NestAll { input, as_name } => NestAll {
            input: rec(input),
            as_name: as_name.clone(),
        },
        Sort { input, by } => Sort {
            input: rec(input),
            by: by.clone(),
        },
        XmlTemplate { input, templ } => XmlTemplate {
            input: rec(input),
            templ: templ.clone(),
        },
        Navigate {
            input,
            from_attr,
            axis,
            label,
            as_prefix,
            mode,
        } => Navigate {
            input: rec(input),
            from_attr: from_attr.clone(),
            axis: *axis,
            label: label.clone(),
            as_prefix: as_prefix.clone(),
            mode: *mode,
        },
        Fetch {
            input,
            id_attr,
            what,
            as_name,
        } => Fetch {
            input: rec(input),
            id_attr: id_attr.clone(),
            what: *what,
            as_name: as_name.clone(),
        },
        DeriveAncestorId {
            input,
            attr,
            levels,
            as_name,
        } => DeriveAncestorId {
            input: rec(input),
            attr: attr.clone(),
            levels: *levels,
            as_name: as_name.clone(),
        },
        Rename { input, names } => Rename {
            input: rec(input),
            names: names.clone(),
        },
        CastSchema { input, schema } => CastSchema {
            input: rec(input),
            schema: schema.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::{generate, NodeKind};

    fn ids(doc: &xmltree::Document, label: &str) -> Vec<(StructuralId, usize)> {
        doc.nodes_with_label(label, NodeKind::Element)
            .enumerate()
            .map(|(i, n)| (doc.structural_id(n), i))
            .collect()
    }

    /// Obviously-correct reference: backtracking over the full candidate
    /// space, checking every pattern edge with the axis predicate.
    fn reference(pattern: &TwigPattern, streams: &[&[(StructuralId, usize)]]) -> Vec<Vec<usize>> {
        fn go(
            pattern: &TwigPattern,
            streams: &[&[(StructuralId, usize)]],
            j: usize,
            sids: &mut Vec<StructuralId>,
            asg: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if j == pattern.len() {
                out.push(asg.clone());
                return;
            }
            let node = pattern.node(j);
            for &(sid, pay) in streams[j] {
                let ok = match node.parent {
                    None => true,
                    Some(p) => axis_match(sids[p], sid, node.axis),
                };
                if ok {
                    sids[j] = sid;
                    asg[j] = pay;
                    go(pattern, streams, j + 1, sids, asg, out);
                }
            }
        }
        let n = pattern.len();
        let mut out = Vec::new();
        let mut sids = vec![StructuralId::new(0, 0, 0); n];
        let mut asg = vec![0usize; n];
        go(pattern, streams, 0, &mut sids, &mut asg, &mut out);
        out.sort_unstable();
        out
    }

    fn check(pattern: &TwigPattern, streams: &[&[(StructuralId, usize)]]) {
        let got = twig_join(pattern, streams);
        let want = reference(pattern, streams);
        assert_eq!(got, want);
        // the indexed and columnar kernels must agree for every block
        // layout
        for block in [1, 2, 64, 7] {
            let ixs: Vec<SkipIndex> = streams
                .iter()
                .map(|s| SkipIndex::with_block(s, block))
                .collect();
            let refs: Vec<Option<&SkipIndex>> = ixs.iter().map(Some).collect();
            assert_eq!(
                twig_join_indexed(pattern, streams, &refs),
                want,
                "indexed kernel diverged at block={block}"
            );
            let cols: Vec<IdColumns> = streams
                .iter()
                .map(|s| IdColumns::from_pairs(s, block))
                .collect();
            let crefs: Vec<&IdColumns> = cols.iter().collect();
            assert_eq!(
                twig_join_columnar(pattern, &crefs),
                want,
                "columnar kernel diverged at block={block}"
            );
        }
    }

    #[test]
    fn chains_match_reference_on_xmark() {
        let doc = generate::xmark(3, 7);
        use Axis::{Child, Descendant};
        let cases: Vec<(Vec<&str>, Vec<Axis>)> = vec![
            (vec!["site", "item"], vec![Descendant]),
            (
                vec!["item", "parlist", "listitem"],
                vec![Descendant, Descendant],
            ),
            (
                vec!["description", "parlist", "listitem", "text", "keyword"],
                vec![Child, Child, Child, Descendant],
            ),
            (
                vec!["parlist", "listitem", "keyword"],
                vec![Child, Descendant],
            ),
        ];
        for (labels, axes) in cases {
            let streams: Vec<Vec<(StructuralId, usize)>> =
                labels.iter().map(|l| ids(&doc, l)).collect();
            let refs: Vec<&[(StructuralId, usize)]> =
                streams.iter().map(|s| s.as_slice()).collect();
            let pattern = TwigPattern::chain(&axes);
            check(&pattern, &refs);
        }
    }

    #[test]
    fn branching_pattern_matches_reference() {
        let doc = generate::xmark(3, 19);
        // item { /name, /description//keyword, //mail }
        let mut p = TwigPattern::root();
        p.add_child(0, Axis::Child); // name
        let d = p.add_child(0, Axis::Child); // description
        p.add_child(d, Axis::Descendant); // keyword
        p.add_child(0, Axis::Descendant); // mail
        let streams: Vec<Vec<(StructuralId, usize)>> =
            ["item", "name", "description", "keyword", "mail"]
                .iter()
                .map(|l| ids(&doc, l))
                .collect();
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        check(&p, &refs);
    }

    #[test]
    fn recursive_same_label_pattern() {
        // parlist//parlist//listitem: the same stream feeds two pattern
        // nodes; self-pairs must not appear
        let doc = generate::xmark(3, 7);
        let parlists = ids(&doc, "parlist");
        let listitems = ids(&doc, "listitem");
        let p = TwigPattern::chain(&[Axis::Descendant, Axis::Descendant]);
        let refs: Vec<&[(StructuralId, usize)]> = vec![&parlists, &parlists, &listitems];
        let got = twig_join(&p, &refs);
        assert!(!got.is_empty(), "xmark recursion must produce matches");
        assert!(got.iter().all(|s| s[0] != s[1]), "no self pairs");
        check(&p, &refs);
    }

    #[test]
    fn child_axis_filters_non_parents() {
        let doc = generate::xmark(2, 9);
        let anc = ids(&doc, "parlist");
        let desc = ids(&doc, "keyword");
        let child = twig_join(&TwigPattern::chain(&[Axis::Child]), &[&anc, &desc]);
        let descd = twig_join(&TwigPattern::chain(&[Axis::Descendant]), &[&anc, &desc]);
        assert!(
            child.len() < descd.len(),
            "{} vs {}",
            child.len(),
            descd.len()
        );
        check(&TwigPattern::chain(&[Axis::Child]), &[&anc, &desc]);
    }

    #[test]
    fn single_node_and_empty_streams() {
        let doc = generate::xmark(2, 5);
        let items = ids(&doc, "item");
        let sols = twig_join(&TwigPattern::root(), &[&items]);
        assert_eq!(sols.len(), items.len());
        let p = TwigPattern::chain(&[Axis::Descendant]);
        assert!(twig_join(&p, &[&items, &[]]).is_empty());
        assert!(twig_join(&p, &[&[], &items]).is_empty());
    }

    #[test]
    fn metered_variant_counts_and_matches_unmetered() {
        let doc = generate::xmark(3, 7);
        let streams: Vec<Vec<(StructuralId, usize)>> = ["item", "parlist", "listitem"]
            .iter()
            .map(|l| ids(&doc, l))
            .collect();
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        let pattern = TwigPattern::chain(&[Axis::Descendant, Axis::Descendant]);
        let mut metrics = obs::ExecMetrics::default();
        let metered = twig_join_metered(&pattern, &refs, &mut metrics);
        assert_eq!(metered, twig_join(&pattern, &refs));
        assert!(!metered.is_empty());
        assert!(metrics.comparisons > 0, "{metrics:?}");
        assert!(metrics.stack_high_water >= 2, "{metrics:?}");
        assert!(metrics.solutions_high_water >= pattern.len() as u64);
    }

    #[test]
    fn indexed_kernel_skips_elements_on_selective_chains() {
        let doc = generate::xmark(4, 21);
        // mail//keyword: mails are rare and keywords are everywhere (most
        // sit under item descriptions), so most of the keyword stream is
        // prunable between consecutive mail subtrees
        let streams: Vec<Vec<(StructuralId, usize)>> =
            ["mail", "keyword"].iter().map(|l| ids(&doc, l)).collect();
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        let pattern = TwigPattern::chain(&[Axis::Descendant]);
        let ixs: Vec<SkipIndex> = streams.iter().map(|s| SkipIndex::build(s)).collect();
        let opts: Vec<Option<&SkipIndex>> = ixs.iter().map(Some).collect();
        let mut metrics = obs::ExecMetrics::default();
        let indexed = twig_join_indexed_metered(&pattern, &refs, &opts, &mut metrics);
        assert_eq!(indexed, twig_join(&pattern, &refs));
        assert!(
            metrics.elements_skipped > 0,
            "selective chain must skip: {metrics:?}"
        );
        // mixed registration: only the leaf stream indexed
        let mixed: Vec<Option<&SkipIndex>> = vec![None, Some(&ixs[1])];
        assert_eq!(twig_join_indexed(&pattern, &refs, &mixed), indexed);
    }

    #[test]
    fn columnar_kernel_skips_and_batches() {
        let doc = generate::xmark(4, 21);
        // selective chain: the columnar kernel must gallop (skips), and
        // the dense leaf runs must go through the batch path
        let streams: Vec<Vec<(StructuralId, usize)>> =
            ["mail", "keyword"].iter().map(|l| ids(&doc, l)).collect();
        let cols: Vec<IdColumns> = streams
            .iter()
            .map(|s| IdColumns::from_pairs(s, 64))
            .collect();
        let crefs: Vec<&IdColumns> = cols.iter().collect();
        let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
        let pattern = TwigPattern::chain(&[Axis::Descendant]);
        let mut metrics = obs::ExecMetrics::default();
        let got = twig_join_columnar_metered(&pattern, &crefs, &mut metrics);
        assert_eq!(got, twig_join(&pattern, &refs));
        assert!(metrics.elements_skipped > 0, "{metrics:?}");
        assert!(metrics.batches_scanned > 0, "{metrics:?}");
        assert!(metrics.vector_compares > 0, "{metrics:?}");
    }

    #[test]
    fn columnar_kernel_handles_duplicate_ids() {
        // multi-tuple join inputs repeat IDs; bulk appends and seeks
        // must stay exact on non-strictly sorted columns
        let doc = generate::xmark(3, 11);
        let items = ids(&doc, "item");
        let mut keywords: Vec<(StructuralId, usize)> = Vec::new();
        for (i, (sid, _)) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                keywords.push((sid, keywords.len()));
            }
        }
        for axis in [Axis::Child, Axis::Descendant] {
            let pattern = TwigPattern::chain(&[axis]);
            let refs: Vec<&[(StructuralId, usize)]> = vec![&items, &keywords];
            check(&pattern, &refs);
        }
    }

    #[test]
    fn fusion_and_desugaring_roundtrip() {
        use crate::plan::JoinKind;
        let cascade = LogicalPlan::scan("tag_book")
            .rename(&["b_id"])
            .struct_join(
                LogicalPlan::scan("tag_title").rename(&["t_id"]),
                "b_id",
                "t_id",
                Axis::Child,
                JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("tag_author").rename(&["a_id"]),
                "b_id",
                "a_id",
                Axis::Descendant,
                JoinKind::Inner,
            );
        let fused = fuse_struct_joins(&cascade);
        let LogicalPlan::TwigJoin {
            ref root,
            ref steps,
        } = fused
        else {
            panic!("expected TwigJoin, got {fused}");
        };
        assert_eq!(steps.len(), 2);
        assert!(fused.size() < cascade.size());
        assert_eq!(twig_to_cascade(root, steps), cascade);
        assert_eq!(fused.scanned_relations(), cascade.scanned_relations());
        assert!(fused.to_string().starts_with("twig("), "{fused}");
    }

    #[test]
    fn fusion_skips_nest_and_outer_joins() {
        let nested = LogicalPlan::scan("a").struct_nest_join(
            LogicalPlan::scan("b"),
            "ID",
            "ID",
            Axis::Descendant,
            true,
            "bs",
        );
        assert_eq!(fuse_struct_joins(&nested), nested);
    }
}
